from setuptools import setup

# Thin shim so that editable installs work without the 'wheel' package
# (offline environment); all metadata lives in pyproject.toml.
setup()
