"""Crash-recovery smoke: SIGKILL a WAL-backed server, restart, verify.

CI drives the durability contract end to end over the real CLI:

1. start `python -m repro serve --wal-dir W` as a subprocess,
   pre-loading a generated corpus;
2. commit EDITS edit-txns over TCP, recording every acknowledged op;
3. `SIGKILL` the server — no drain, no flush beyond the per-record
   fsync the WAL already did before each ack;
4. restart `serve --wal-dir W` (no --load: recovery must attach the
   repository from the log alone) and assert the recovery banner;
5. compare the restarted server's check document byte-for-byte against
   a local shadow session that applied exactly the acknowledged ops;
6. SIGTERM the restarted server and require the drain banner + exit 0.

Exits non-zero (with a reason on stderr) on any violation.
"""

import re
import signal
import subprocess
import sys
import tempfile

EDITS = 12


def fail(reason):
    print(f"crash_recovery_smoke: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def start_server(args):
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    lines = []
    for _ in range(10):
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return proc, match.group(1), int(match.group(2)), lines
    proc.kill()
    proc.wait()
    fail(f"no listen banner, got: {lines!r}")


def main():
    from repro.cli import load_model
    from repro.mof.txn import transaction
    from repro.server import ModelServer, TcpClient, apply_edit_ops
    from repro.session import Session, canonical_check_document
    from repro.xmi import write_xml

    workdir = tempfile.mkdtemp(prefix="repro-crash-smoke-")
    corpus = f"{workdir}/corpus.xmi"
    wal_dir = f"{workdir}/wal"
    session = Session.generate("demo", size=300, seed=17, repair=True)
    with open(corpus, "w", encoding="utf-8") as handle:
        handle.write(write_xml(session.model))

    proc, host, port, _ = start_server(
        ["--wal-dir", wal_dir, "--load", f"main={corpus}"])
    acked = []
    try:
        # eids are deterministic across XMI load, so a local load names
        # the same elements the server hosts
        eids = []
        for root in session.model.roots:
            for element in [root] + list(root.all_contents()):
                feature = element.meta.all_features().get("name")
                if feature is not None and not feature.many:
                    eids.append(element.eid)
        with TcpClient(host, port) as client:
            for index in range(EDITS):
                ops = [{"op": "set", "element": eids[index],
                        "feature": "name", "value": f"durable-{index}"}]
                result = client.request("edit-txn", repo="main",
                                        base_epoch=index, ops=ops)
                if result["epoch"] != index + 1:
                    fail(f"unexpected epoch {result['epoch']}")
                acked.append(ops)
        print(f"crash_recovery_smoke: {len(acked)} edit-txns "
              f"acknowledged; killing the server (SIGKILL)")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    proc, host, port, banner = start_server(["--wal-dir", wal_dir])
    try:
        if not any("recovered repository 'main'" in line
                   for line in banner):
            fail(f"no recovery banner, got: {banner!r}")
        with TcpClient(host, port) as client:
            # full pass (not the incremental engine) so the document is
            # the same shape Session.check renders for the shadow
            document = client.request("check", repo="main",
                                      incremental=False)
            stats = client.request("stats")["server"]["repos"]["main"]
        if document.pop("epoch") != EDITS:
            fail("recovered epoch != acknowledged txns")
        document.pop("repo")
        if stats["edits_applied"] != EDITS:
            fail(f"edits_applied {stats['edits_applied']} != {EDITS}")

        # the shadow: same corpus, exactly the acknowledged ops, same
        # op applier — must be byte-identical
        shadow = load_model(corpus)
        resolver = ModelServer().resolve_metaclass
        for ops in acked:
            with transaction(shadow):
                apply_edit_ops(resolver, shadow, ops, pin_eids=True)
        want = canonical_check_document(Session(shadow).check().to_json())
        got = canonical_check_document(document)
        if got != want:
            fail("recovered check document differs from the shadow "
                 "session's (acknowledged edits lost or torn)")
        print("crash_recovery_smoke: restarted server byte-identical "
              "to the acknowledged-prefix shadow")

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=30)
        if proc.returncode != 0:
            fail(f"drain exited {proc.returncode}: {output!r}")
        if "draining" not in output or "drained" not in output:
            fail(f"no drain banner: {output!r}")
        print("crash_recovery_smoke: graceful drain — OK")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
