"""Live server smoke: `repro serve` + 4 concurrent editors, clean SIGINT.

CI drives the real CLI surface end to end, the way a team would:

1. start `python -m repro serve` as a subprocess on an ephemeral port,
   pre-loading a generated corpus;
2. race 4 concurrent TCP editors on the same epoch, each committing
   EDITS edit-txns through a RetryPolicy (jittered backoff replaying
   conflicts with a refreshed base_epoch) — assert nothing is lost
   (final epoch == total applied, zero failures);
3. verify over `rpc`-style requests that check/stats still answer;
4. SIGINT the server and require a clean "shutting down" exit 0.

Exits non-zero (with a reason on stderr) on any violation.
"""

import json
import re
import signal
import socket
import subprocess
import sys
import threading
import time

EDITORS = 4
EDITS = 5


def fail(reason):
    print(f"server_smoke: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def main():
    import random

    from repro.server import RetryPolicy, TcpClient
    from repro.session import Session
    from repro.xmi import write_xml

    corpus = "smoke_corpus.xmi"
    session = Session.generate("demo", size=400, seed=7, repair=True)
    with open(corpus, "w", encoding="utf-8") as handle:
        handle.write(write_xml(session.model))

    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--load", f"main={corpus}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        match = None
        for _ in range(10):  # --load progress lines precede the banner
            banner = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            if match or not banner:
                break
        if not match:
            fail(f"no listen banner, got: {banner!r}")
        host, port = match.group(1), int(match.group(2))
        print(f"server_smoke: serving on {host}:{port}")

        with TcpClient(host, port) as probe:
            probe.request("check", repo="main")
            stats = probe.request("stats", repo="main")
        # eids are emitted as XMI doc ids and reassigned on load, so the
        # local corpus scan names the same elements the server hosts
        eids = []
        for root in session.model.roots:
            for element in [root] + list(root.all_contents()):
                feature = element.meta.all_features().get("name")
                if feature is not None and not feature.many:
                    eids.append(element.eid)
        if stats["model"]["elements"] != session.model.size():
            fail("stats element count mismatch")

        failures = []
        replays = []
        barrier = threading.Barrier(EDITORS)

        def editor(tag):
            try:
                policy = RetryPolicy(attempts=32, base_delay=0.01,
                                     max_delay=0.25,
                                     rng=random.Random(hash(tag) & 0xFF))
                with TcpClient(host, port, retry=policy) as client:
                    epoch = client.request("check", repo="main")["epoch"]
                    barrier.wait()
                    for index in range(EDITS):
                        ops = [{"op": "set",
                                "element": eids[(hash(tag) + index)
                                                % len(eids)],
                                "feature": "name",
                                "value": f"{tag}-{index}"}]
                        # conflicts are replayed by the policy, which
                        # refreshes base_epoch from the error itself
                        epoch = client.request(
                            "edit-txn", repo="main",
                            base_epoch=epoch, ops=ops)["epoch"]
                    replays.append(policy.retried)
            except Exception as error:  # noqa: BLE001 — report, don't hang
                failures.append(f"{tag}: {error!r}")

        threads = [threading.Thread(target=editor, args=(f"w{n}",))
                   for n in range(EDITORS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        if failures:
            fail("; ".join(failures))

        with TcpClient(host, port) as probe:
            summary = probe.request("stats")["server"]["repos"]["main"]
        expected = EDITORS * EDITS
        if summary["epoch"] != expected:
            fail(f"epoch {summary['epoch']} != {expected} applied edits")
        if summary["edits_applied"] != expected:
            fail(f"edits_applied {summary['edits_applied']} != {expected}")
        print(f"server_smoke: {expected} edit-txns applied, "
              f"{summary['edits_rejected']} conflicts replayed "
              f"({sum(replays)} client retries), "
              f"epoch {summary['epoch']}")

        proc.send_signal(signal.SIGINT)
        output, _ = proc.communicate(timeout=30)
        if proc.returncode != 0:
            fail(f"server exited {proc.returncode}: {output!r}")
        if "shutting down" not in output:
            fail(f"no clean shutdown banner: {output!r}")
        print("server_smoke: clean shutdown — OK")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
