"""Tests for the command-line interface (driving main() directly)."""

import os

import pytest

from repro.cli import main
from repro.mof import Model
from repro.profiles import SA_SCHEDULABLE
from repro.xmi import write_xml


@pytest.fixture
def model_file(cruise_model, tmp_path):
    model = Model("urn:cruise", "cruise")
    model.add_root(cruise_model.model)
    path = tmp_path / "cruise.xmi"
    path.write_text(write_xml(model))
    return str(path)


@pytest.fixture
def scheduled_model_file(cruise_model, tmp_path):
    for name, period, wcet in (("SpeedSensor", 10.0, 2.0),
                               ("CruiseController", 20.0, 5.0),
                               ("ThrottleActuator", 20.0, 3.0)):
        SA_SCHEDULABLE.apply(cruise_model.model.member(name),
                             sa_period_ms=period, sa_wcet_ms=wcet)
    model = Model("urn:cruise", "cruise")
    model.add_root(cruise_model.model)
    path = tmp_path / "cruise_rt.xmi"
    path.write_text(write_xml(model))
    return str(path)


class TestCheckVerb:
    def test_clean_model(self, model_file, capsys):
        assert main(["check", model_file]) == 0
        out = capsys.readouterr().out
        assert "check: 0 error(s)" in out
        assert "structural" in out and "consistency" in out

    def test_family_subset(self, model_file, capsys):
        assert main(["check", model_file,
                     "--families", "structural,wellformed"]) == 0
        out = capsys.readouterr().out
        assert "[structural, wellformed]" in out

    def test_unknown_family(self, model_file, capsys):
        assert main(["check", model_file, "--families", "nope"]) == 2
        assert "unknown check families" in capsys.readouterr().err

    def test_defective_model(self, factory, tmp_path, capsys):
        factory.clazz("Dup")
        factory.clazz("Dup")
        model = Model("urn:bad")
        model.add_root(factory.model)
        path = tmp_path / "bad.xmi"
        path.write_text(write_xml(model))
        assert main(["check", str(path)]) == 1
        # exit code is the contract; message content covered elsewhere

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.xmi"]) == 2

    def test_validate_alias_warns_and_checks(self, model_file, capsys):
        with pytest.deprecated_call():
            assert main(["validate", model_file]) == 0
        out = capsys.readouterr().out
        # the alias pins the historical validate families
        assert "[structural, invariant, wellformed]" in out


class TestLint:
    def test_clean_model(self, model_file, capsys):
        assert main(["lint", model_file]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_defective_model(self, factory, tmp_path, capsys):
        from repro.uml import StateMachine
        cls = factory.clazz("C")
        machine = StateMachine(name="sm")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")
        region.add_transition(initial, alive)
        model = Model("urn:dead")
        model.add_root(factory.model)
        path = tmp_path / "dead.xmi"
        path.write_text(write_xml(model))
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "SM001" in out and "Limbo" in out

    def test_disable_turns_finding_off(self, factory, tmp_path):
        from repro.uml import StateMachine
        cls = factory.clazz("C")
        machine = StateMachine(name="sm")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")
        region.add_transition(initial, alive)
        model = Model("urn:dead")
        model.add_root(factory.model)
        path = tmp_path / "dead.xmi"
        path.write_text(write_xml(model))
        assert main(["lint", str(path), "--disable", "SM001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SM001", "ACT001", "TR001", "OCL101", "UML100"):
            assert code in out

    def test_missing_file(self, capsys):
        assert main(["lint", "/nonexistent.xmi"]) == 2

    def test_no_model_argument(self, capsys):
        assert main(["lint"]) == 2

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out and "usage/load error" in out


class TestMetrics:
    def test_summary(self, model_file, capsys):
        assert main(["metrics", model_file]) == 0
        assert "coupling_density" in capsys.readouterr().out

    def test_per_class(self, model_file, capsys):
        assert main(["metrics", model_file, "--per-class"]) == 0
        out = capsys.readouterr().out
        assert "CruiseController" in out and "CBO" in out


class TestPurity:
    def test_clean(self, model_file, capsys):
        assert main(["purity", model_file, "--platform", "posix"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_polluted(self, factory, tmp_path, capsys):
        factory.clazz("Worker_thread")
        model = Model("urn:dirty")
        model.add_root(factory.model)
        path = tmp_path / "dirty.xmi"
        path.write_text(write_xml(model))
        assert main(["purity", str(path)]) == 1
        assert "pollution" in capsys.readouterr().out


class TestTransformGenerate:
    def test_transform_then_generate(self, model_file, tmp_path, capsys):
        psm_path = str(tmp_path / "psm.xmi")
        assert main(["transform", model_file, "--platform", "posix",
                     "-o", psm_path]) == 0
        assert os.path.exists(psm_path)
        out_dir = str(tmp_path / "gen")
        assert main(["generate", psm_path, "--lang", "c",
                     "-o", out_dir]) == 0
        out = capsys.readouterr().out
        assert "lines of c" in out
        generated = os.listdir(out_dir)
        assert any(name.endswith(".c") for name in generated)
        text = open(os.path.join(out_dir, generated[0])).read()
        assert "CruiseController" in text

    def test_generate_java(self, model_file, tmp_path):
        psm_path = str(tmp_path / "psm.json")       # json output too
        assert main(["transform", model_file, "--platform", "baremetal",
                     "-o", psm_path]) == 0
        out_dir = str(tmp_path / "gen")
        assert main(["generate", psm_path, "--lang", "java",
                     "-o", out_dir]) == 0
        assert any(name.endswith(".java") for name in os.listdir(out_dir))


class TestSchedule:
    def test_schedulable(self, scheduled_model_file, capsys):
        assert main(["schedule", scheduled_model_file]) == 0
        assert "SCHEDULABLE" in capsys.readouterr().out

    def test_no_annotations(self, model_file, capsys):
        assert main(["schedule", model_file]) == 2


class TestDiffConvert:
    def test_diff_identical(self, model_file, tmp_path, capsys):
        copy_path = str(tmp_path / "copy.xmi")
        assert main(["convert", model_file, "-o", copy_path]) == 0
        assert main(["diff", model_file, copy_path]) == 0
        assert "+0 -0 ~0" in capsys.readouterr().out

    def test_diff_changed(self, model_file, tmp_path, capsys):
        changed = open(model_file).read().replace(
            'name="SpeedSensor"', 'name="WheelSensor"')
        changed_path = tmp_path / "changed.xmi"
        changed_path.write_text(changed)
        assert main(["diff", model_file, str(changed_path)]) == 1
        out = capsys.readouterr().out
        assert "WheelSensor" in out or "SpeedSensor" in out

    def test_convert_roundtrip(self, model_file, tmp_path):
        json_path = str(tmp_path / "m.json")
        back_path = str(tmp_path / "back.xmi")
        assert main(["convert", model_file, "-o", json_path]) == 0
        assert main(["convert", json_path, "-o", back_path]) == 0
        assert main(["diff", model_file, back_path]) == 0


class TestReportFootprint:
    def test_report_command(self, model_file, capsys):
        code = main(["report", model_file, "--platform", "posix"])
        out = capsys.readouterr().out
        assert "model quality report" in out
        assert "domain purity" in out
        assert code in (0, 1)

    def test_footprint_command(self, model_file, tmp_path, capsys):
        psm_path = str(tmp_path / "psm.xmi")
        assert main(["transform", model_file, "--platform", "baremetal",
                     "-o", psm_path]) == 0
        assert main(["footprint", psm_path,
                     "--platform", "baremetal"]) == 0
        out = capsys.readouterr().out
        assert "footprint:" in out and "FITS" in out
        assert "CruiseController" in out


class TestDiagram:
    def test_class_diagram(self, model_file, capsys):
        assert main(["diagram", model_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph") and "CruiseController" in out

    def test_statemachine_diagram(self, model_file, capsys):
        assert main(["diagram", model_file, "--kind", "statemachine",
                     "--name", "CruiseSM"]) == 0
        out = capsys.readouterr().out
        assert "engage" in out

    def test_unknown_machine_name(self, model_file):
        assert main(["diagram", model_file, "--kind", "statemachine",
                     "--name", "Nope"]) == 1


class TestTestgen:
    def test_generates_for_all_machines(self, model_file, capsys):
        assert main(["testgen", model_file]) == 0
        out = capsys.readouterr().out
        assert "CruiseController" in out and "100%" in out

    def test_class_filter(self, model_file, capsys):
        assert main(["testgen", model_file,
                     "--class", "ThrottleActuator"]) == 0
        out = capsys.readouterr().out
        assert "ThrottleActuator" in out
        assert "CruiseController" not in out

    def test_no_match(self, model_file):
        assert main(["testgen", model_file, "--class", "Nope"]) == 1


class TestSharedDiagnosticContract:
    def test_check_json_format(self, model_file, capsys):
        import json
        assert main(["check", model_file, "--format", "json",
                     "--families",
                     "structural,invariant,wellformed"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert set(doc["families"]) == {"structural", "invariant",
                                        "wellformed"}

    def test_lint_json_format(self, model_file, capsys):
        import json
        assert main(["lint", model_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 0 and list(doc["families"]) == ["lint"]

    def test_severity_floor_filters_warnings(self, factory, tmp_path,
                                             capsys):
        import json
        from repro.uml import Clazz
        factory.model.add(Clazz())          # unnamed -> uml-name warning
        path = tmp_path / "warny.xmi"
        model = Model("urn:w", "w")
        model.add_root(factory.model)
        path.write_text(write_xml(model))
        assert main(["check", str(path), "--format", "json"]) == 0
        with_warnings = json.loads(capsys.readouterr().out)
        assert with_warnings["warnings"] > 0
        assert main(["check", str(path), "--format", "json",
                     "--severity", "error"]) == 0
        errors_only = json.loads(capsys.readouterr().out)
        assert errors_only["warnings"] == 0

    def test_watch_json_format(self, model_file, capsys):
        import json
        assert main(["watch", model_file, "--once",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and "families" in doc

    def test_report_json_format(self, model_file, capsys):
        import json
        code = main(["report", model_file, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert doc["passed"] in (True, False)
        titles = [section["title"] for section in doc["sections"]]
        assert "structural validity" in titles
        assert "domain purity" in titles

    def test_trace_writes_jsonl(self, model_file, tmp_path, capsys):
        import json
        trace_path = tmp_path / "trace.jsonl"
        assert main(["check", model_file,
                     "--trace", str(trace_path)]) == 0
        records = [json.loads(line) for line in
                   trace_path.read_text().splitlines()]
        names = {record["name"] for record in records}
        assert "cli.check" in names and "xmi.read" in names
        assert any(record["parent"] is None for record in records)
        from repro.obs import is_enabled
        assert not is_enabled()             # main() tore tracing down


class TestProfile:
    def test_profile_prints_span_tree_and_table(self, model_file, capsys):
        assert main(["profile", model_file]) == 0
        out = capsys.readouterr().out
        assert "cli.profile" in out
        assert "session.check" in out       # validate stage
        assert "transform.run" in out       # transform stage
        assert "codegen.lower" in out       # generate stage
        assert "self ms" in out and "span(s) recorded" in out

    def test_profile_pipeline_subset(self, model_file, capsys):
        assert main(["profile", model_file, "--pipeline", "lint"]) == 0
        out = capsys.readouterr().out
        assert "session.check.lint" in out
        assert "transform.run" not in out

    def test_profile_unknown_stage(self, model_file, capsys):
        assert main(["profile", model_file, "--pipeline", "nope"]) == 2
        assert "unknown pipeline stage" in capsys.readouterr().err

    def test_profile_leaves_tracing_off(self, model_file, capsys):
        from repro.obs import is_enabled
        assert main(["profile", model_file]) == 0
        assert not is_enabled()


class TestStats:
    def test_stats_prometheus(self, model_file, capsys):
        from repro.obs import REGISTRY
        REGISTRY.reset()
        assert main(["stats", model_file]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_mof_reads_total counter" in out
        assert "repro_session_checks_total" in out
        REGISTRY.reset()

    def test_stats_json(self, model_file, capsys):
        import json
        from repro.obs import REGISTRY
        REGISTRY.reset()
        assert main(["stats", model_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # the Session.stats() document: metrics + OCL cache + model block
        assert "mof.reads" in doc["metrics"]
        assert "ocl_cache" in doc
        assert doc["model"]["roots"] == 1
        REGISTRY.reset()

    def test_stats_without_model_prints_current_registry(self, capsys):
        from repro.obs import REGISTRY
        REGISTRY.reset()
        REGISTRY.counter("adhoc.counter", help="x").inc(3)
        assert main(["stats"]) == 0
        assert "repro_adhoc_counter_total 3" in capsys.readouterr().out
        REGISTRY.reset()
