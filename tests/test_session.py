"""The unified Session API: parity with the legacy entry points.

The contract: for every checker family, ``Session.check`` returns a
diagnostic multiset identical to what the legacy entry point produced,
over the generated model corpus (``tests/modelgen.py``).  The corpus
loops below cover 100+ (model, family) cases; the shim tests then pin
every legacy entry point to "importable, warns, same result".
"""

import warnings

import pytest

from repro.generate import demo_generator, uml_generator
from repro.incremental import report_signature
from repro.mof import Model
from repro.mof.validate import ValidationReport
from repro.session import DEFAULT_FAMILIES, FAMILIES, CheckResult, Session
from repro.uml import Clazz

DEMO_SEEDS = range(20)
UML_SEEDS = range(15)


def _legacy(fn, *args, **kwargs):
    """Call a deprecated entry point with its warning muted."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


def _signature(diagnostics):
    return sorted((d.severity.value, d.code, d.path, d.message)
                  for d in diagnostics)


def _as_model(root):
    model = Model("urn:parity")
    model.add_root(root)
    return model


def _constraint_set():
    from repro.ocl import ConstraintSet
    constraints = ConstraintSet("parity")
    constraints.add(Clazz, "has-members",
                    "owned_attributes->notEmpty() or "
                    "owned_operations->notEmpty()")
    return constraints


class TestParity:
    """Session.check vs each legacy entry point, multiset-equal."""

    @pytest.mark.parametrize("seed", DEMO_SEEDS)
    def test_validate_model_demo_corpus(self, seed):
        # 20 models x 2 families (structural, invariant) = 40 cases
        from repro.mof.validate import validate_model
        model = _as_model(demo_generator(seed).generate(30))
        legacy = _legacy(validate_model, model)
        new = Session(model).check(families=("structural", "invariant"))
        assert report_signature(legacy) == \
            report_signature(new.as_validation_report())

    @pytest.mark.parametrize("seed", UML_SEEDS)
    def test_validate_model_uml_corpus(self, seed):
        # 15 models x 2 families = 30 cases
        from repro.mof.validate import validate_model
        model = _as_model(uml_generator(seed).generate(40))
        legacy = _legacy(validate_model, model)
        new = Session(model).check(families=("structural", "invariant"))
        assert report_signature(legacy) == \
            report_signature(new.as_validation_report())

    @pytest.mark.parametrize("seed", UML_SEEDS)
    def test_check_model_uml_corpus(self, seed):
        # 15 models x 1 family (wellformed) = 15 cases
        from repro.uml.wellformed import check_model
        root = uml_generator(seed).generate(40)
        legacy = _legacy(check_model, root)
        new = Session(root).check(families=("wellformed",))
        assert report_signature(legacy) == \
            report_signature(new.as_validation_report())

    @pytest.mark.parametrize("seed", UML_SEEDS)
    def test_lint_model_uml_corpus(self, seed):
        # 15 models x 1 family (lint) = 15 cases
        from repro.analysis import lint_model
        root = uml_generator(seed).generate(40)
        legacy = _legacy(lint_model, root)
        new = Session(root).check(families=("lint",))
        assert _signature(legacy.diagnostics) == \
            _signature(new.diagnostics)

    @pytest.mark.parametrize("seed", range(5))
    def test_constraint_set_uml_corpus(self, seed):
        # 5 models x 1 family (constraint) = 5 cases
        constraints = _constraint_set()
        root = uml_generator(seed).generate(40)
        legacy = _legacy(constraints.check, root)
        new = Session(root, constraint_sets=[constraints]) \
            .check(families=("constraint",))
        assert report_signature(legacy) == \
            report_signature(new.as_validation_report())

    @pytest.mark.parametrize("seed", range(5))
    def test_watch_matches_batch_check(self, seed):
        # the incremental view agrees with the batch view per family
        root = uml_generator(seed).generate(40)
        session = Session(root)
        engine = session.watch()
        try:
            incremental = engine.revalidate()
            batch = session.check()
            assert report_signature(incremental) == \
                report_signature(batch.as_validation_report())
        finally:
            engine.detach()


class TestDeprecatedShims:
    """Every legacy entry point stays importable, warns, and delegates."""

    def test_validate_model_warns(self):
        from repro.mof.validate import validate_model
        model = _as_model(demo_generator(0).generate(20))
        with pytest.warns(DeprecationWarning, match="Session"):
            report = validate_model(model)
        assert isinstance(report, ValidationReport)

    def test_check_model_warns(self):
        from repro.uml.wellformed import check_model, run_wellformed_rules
        root = uml_generator(0).generate(30)
        with pytest.warns(DeprecationWarning, match="Session"):
            report = check_model(root)
        assert report_signature(report) == \
            report_signature(run_wellformed_rules(root))

    def test_watch_model_warns_and_primes(self):
        from repro.uml.wellformed import watch_model
        root = uml_generator(0).generate(30)
        with pytest.warns(DeprecationWarning, match="Session"):
            engine = watch_model(root)
        try:
            assert report_signature(engine.revalidate()) == \
                report_signature(Session(root).check(
                    families=("wellformed",)).as_validation_report())
        finally:
            engine.detach()

    def test_constraint_set_check_warns(self):
        constraints = _constraint_set()
        root = uml_generator(0).generate(30)
        with pytest.warns(DeprecationWarning, match="evaluate"):
            report = constraints.check(root)
        assert report_signature(report) == \
            report_signature(constraints.evaluate(root))

    def test_constraint_set_watch_warns(self):
        constraints = _constraint_set()
        root = uml_generator(0).generate(30)
        with pytest.warns(DeprecationWarning, match="Session"):
            engine = constraints.watch(root)
        try:
            assert report_signature(engine.revalidate()) == \
                report_signature(constraints.evaluate(root))
        finally:
            engine.detach()

    def test_lint_model_warns(self):
        from repro.analysis import ModelLinter, lint_model
        root = uml_generator(0).generate(30)
        with pytest.warns(DeprecationWarning, match="Session"):
            report = lint_model(root)
        assert _signature(report.diagnostics) == \
            _signature(ModelLinter().lint(root).diagnostics)

    def test_model_linter_watch_warns(self):
        from repro.analysis import ModelLinter
        root = uml_generator(0).generate(30)
        linter = ModelLinter()
        with pytest.warns(DeprecationWarning, match="Session"):
            engine = linter.watch(root)
        try:
            assert report_signature(engine.revalidate()) == \
                _wrap_signature(linter.lint(root).diagnostics)
        finally:
            engine.detach()

    def test_quality_report_warns(self):
        from repro.validation import build_quality_report, quality_report
        root = uml_generator(0).generate(30)
        with pytest.warns(DeprecationWarning, match="Session"):
            legacy = quality_report(root)
        assert legacy.render() == build_quality_report(root).render()


def _wrap_signature(diagnostics):
    report = ValidationReport()
    for diagnostic in diagnostics:
        report.diagnostics.append(diagnostic)
    return report_signature(report)


class TestSessionSurface:
    def test_scope_forms(self):
        root = uml_generator(1).generate(30)
        for scope in (root, [root], _as_model(root)):
            assert Session(scope).check(
                families=("structural",)).families == ("structural",)

    def test_default_families(self):
        root = uml_generator(1).generate(20)
        assert Session(root).check().families == DEFAULT_FAMILIES
        with_constraints = Session(
            root, constraint_sets=[_constraint_set()])
        assert with_constraints.check().families == FAMILIES

    def test_unknown_family_rejected(self):
        root = uml_generator(1).generate(20)
        with pytest.raises(ValueError, match="unknown checker"):
            Session(root).check(families=("spelling",))

    def test_family_order_is_canonical(self):
        root = uml_generator(1).generate(20)
        result = Session(root).check(families=("lint", "structural"))
        assert result.families == ("structural", "lint")

    def test_severity_floor(self):
        root = uml_generator(2).generate(40)
        everything = Session(root).check()
        errors_only = Session(root).check(severity="error")
        assert not errors_only.warnings and not errors_only.infos
        assert _signature(errors_only.errors) == \
            _signature(everything.errors)
        with pytest.raises(ValueError, match="unknown severity"):
            everything.filtered("fatal")

    def test_render_and_json(self):
        root = uml_generator(2).generate(40)
        result = Session(root).check()
        text = result.render()
        assert "error(s)" in text and "warning(s)" in text
        doc = result.to_json()
        assert doc["errors"] == len(result.errors)
        assert set(doc["families"]) == set(result.families)
        for family, diagnostics in doc["families"].items():
            for record in diagnostics:
                assert {"severity", "code", "message", "path",
                        "element", "hint"} <= set(record)

    def test_load_from_file(self, tmp_path):
        from repro.uml import ModelFactory
        from repro.xmi import write_xml
        factory = ModelFactory("filed")
        factory.clazz("Thing", attrs={"x": "Integer"})
        model = _as_model(factory.model)
        path = tmp_path / "filed.xmi"
        path.write_text(write_xml(model))
        session = Session.load(str(path))
        assert [r.name for r in session.roots] == ["filed"]
        assert session.check().families == DEFAULT_FAMILIES

    def test_quality_report_delegates(self):
        from repro.uml import ModelFactory
        factory = ModelFactory("qr")
        factory.clazz("Thing", attrs={"x": "Integer"})
        report = Session(factory.model).quality_report()
        assert report.model_name == "qr"
        two_roots = Session([uml_generator(0).generate(10),
                             uml_generator(1).generate(10)])
        with pytest.raises(ValueError, match="roots"):
            two_roots.quality_report()

    def test_stats_document(self):
        root = uml_generator(3).generate(30)
        session = Session(root)
        session.check()
        document = session.stats()
        assert isinstance(document["metrics"], dict)
        assert document["model"]["roots"] == 1
        assert document["model"]["elements"] > 0
        assert document["ocl_cache"]        # compile-cache counters
        # runtime_stats() is the model-free subset the server's global
        # stats verb and `repro stats --format json` also serve
        from repro.session import runtime_stats
        assert "model" not in runtime_stats()
        assert "metrics" in runtime_stats()
