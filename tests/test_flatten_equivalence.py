"""Property test: flattening preserves behaviour.

For randomly generated hierarchical state machines and random event
sequences, simulating the *hierarchical* machine (which the interpreter
flattens internally) and simulating a *pre-flattened* copy must produce
identical attribute values and equivalent states — i.e.
``flatten_state_machine`` is semantics-preserving.
"""

from hypothesis import given, settings, strategies as st

from repro.transform import flatten_state_machine
from repro.uml import ModelFactory, StateMachine
from repro.validation import Event, ObjectInstance, StateMachineInterpreter

EVENTS = ["go", "stop", "toggle"]


@st.composite
def hierarchical_machines(draw):
    """A two-level machine: top states, one of which is composite with
    two inner states; random guarded transitions with counter effects."""
    machine = StateMachine(name="H")
    region = machine.main_region()
    initial = region.add_initial()
    plain = region.add_state(
        "Plain", entry=draw(st.sampled_from(["", "a := a + 1"])))
    composite = region.add_state(
        "Comp",
        entry=draw(st.sampled_from(["", "b := b + 1"])),
        exit=draw(st.sampled_from(["", "b := b + 10"])))
    inner = composite.add_region("inner")
    inner_initial = inner.add_initial()
    low = inner.add_state("Low", entry=draw(
        st.sampled_from(["", "c := c + 1"])))
    high = inner.add_state("High")
    inner.add_transition(inner_initial, low)
    inner.add_transition(low, high, trigger="toggle",
                         effect=draw(st.sampled_from(
                             ["", "a := a + 2"])))
    inner.add_transition(high, low, trigger="toggle")
    region.add_transition(initial, plain)
    region.add_transition(
        plain, composite, trigger="go",
        guard=draw(st.sampled_from(["", "a < 5"])),
        effect=draw(st.sampled_from(["", "a := a + 1"])))
    region.add_transition(composite, plain, trigger="stop",
                          effect=draw(st.sampled_from(["", "c := 0"])))
    return machine


def make_class():
    factory = ModelFactory("eq")
    return factory.clazz("Ctx", attrs={"a": "Integer", "b": "Integer",
                                       "c": "Integer"})


def run_machine(machine, events):
    cls = make_class()
    instance = ObjectInstance("x", cls)
    interpreter = StateMachineInterpreter(instance, machine)
    interpreter.start()
    for event_name in events:
        interpreter.dispatch(Event(event_name))
    return instance


@settings(max_examples=60, deadline=None)
@given(hierarchical_machines(),
       st.lists(st.sampled_from(EVENTS), max_size=10))
def test_flattening_preserves_behaviour(machine, events):
    hierarchical_result = run_machine(machine, events)
    flat_result = run_machine(flatten_state_machine(machine), events)
    assert hierarchical_result.attributes == flat_result.attributes
    assert hierarchical_result.state_name == flat_result.state_name
    assert hierarchical_result.completed == flat_result.completed


@settings(max_examples=40, deadline=None)
@given(hierarchical_machines())
def test_flattening_is_idempotent_on_flat_machines(machine):
    once = flatten_state_machine(machine)
    twice = flatten_state_machine(once)
    names_once = sorted(s.name for s in once.main_region().states())
    names_twice = sorted(s.name for s in twice.main_region().states())
    assert names_once == names_twice
    assert once.events() == twice.events()


@settings(max_examples=30, deadline=None)
@given(hierarchical_machines())
def test_generated_tests_always_pass_on_their_own_model(machine):
    """Oracle consistency: tests derived FROM a machine always pass ON
    that machine (for arbitrary generated machines)."""
    from repro.validation import (generate_transition_tests,
                                  run_generated_tests)
    cls = make_class()
    cls.owned_behaviors.append(machine)
    cls.classifier_behavior = machine
    result = generate_transition_tests(cls, max_depth=8)
    outcomes = run_generated_tests(cls, result)
    assert outcomes, "expected at least one generated test"
    assert all(passed for _test, passed in outcomes)


@settings(max_examples=30, deadline=None)
@given(hierarchical_machines(),
       st.lists(st.sampled_from(EVENTS), max_size=8))
def test_simulator_outcome_is_checker_reachable(machine, events):
    """Every state the deterministic simulator reaches must be reachable
    for the model checker exploring the same stimuli."""
    from repro.validation import Collaboration, ModelChecker
    cls = make_class()
    cls.owned_behaviors.append(machine)
    cls.classifier_behavior = machine

    def build():
        collab = Collaboration("one")
        collab.create_object("x", cls)
        return collab

    simulated = build()
    simulated.start()
    for event_name in events:
        simulated.send("x", event_name)
    simulated.run()
    final = simulated.objects["x"].snapshot()

    checker = ModelChecker(build(), max_states=20_000,
                           queue_bound=max(len(events), 4))
    checker.goal("same-final",
                 lambda c: c.objects["x"].snapshot() == final)
    result = checker.check([("x", e) for e in events])
    assert result.goals_reached["same-final"] is True
