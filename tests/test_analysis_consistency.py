"""The cross-diagram consistency family (``XD001``–``XD007``).

Four layers of coverage:

* **seeded-defect corpora** — for every rule, a model population with a
  known set of planted inconsistencies; the rule must find each planted
  defect (recall = 1.0) and nothing else (precision = 1.0);
* **reachability memoisation** — cache hits, edit-driven invalidation,
  and invalidation by the inverse ops a transaction rollback replays;
* **incremental parity** — a consistency-enabled
  :class:`~repro.incremental.IncrementalEngine` stays multiset-equal to
  the batch checkers over hundreds of fuzzed edits on models that
  include interactions;
* **plumbing** — dual-endpoint diagnostics in text/JSON renderings, the
  ``Session`` family, and the ``--families`` CLI flag.
"""

from __future__ import annotations

import json

import pytest

from repro.generate import (
    EditFuzzer,
    ModelGenerator,
    UML_SAFE_CLASSES,
)
from repro.mof import add_attribute, define_class, define_package
from repro.analysis import (
    LintConfig,
    ModelLinter,
    compute_reachability,
    reachable_triggers,
)
import importlib

reach_mod = importlib.import_module("repro.analysis.reachability")
from repro.incremental import IncrementalEngine, report_signature
from repro.mof import MInteger, transaction
from repro.mof.validate import Severity, validate_tree
from repro.ocl.invariants import Invariant
from repro.session import Session
from repro.uml.factory import ModelFactory
from repro.uml.interactions import Interaction
from repro.uml.statemachines import StateMachine
from repro.uml.wellformed import run_wellformed_rules


def consistency_lint(root):
    return ModelLinter(families=("consistency",)).lint(root)


def codes(report, code):
    return [d for d in report.diagnostics if d.code == code]


# ---------------------------------------------------------------------------
# Corpus builders
# ---------------------------------------------------------------------------


def bank_model(*, defects=()):
    """A small bank PIM: classes, a state machine, one interaction.

    *defects* selects planted inconsistencies by name; with none, the
    model is consistency-clean.
    """
    f = ModelFactory("bank")
    account = f.clazz("Account", attrs={"balance": "Integer"})
    f.operation(account, "deposit", params={"amount": "Integer"})
    f.operation(account, "audit")
    teller = f.clazz("Teller")
    f.associate(teller, account, name="serves", end_b="account")

    machine = StateMachine(name="AccountLife")
    account.owned_behaviors.append(machine)
    region = machine.add_region("main")
    initial = region.add_initial()
    idle = region.add_state("Idle")
    active = region.add_state("Active")
    region.add_transition(initial, idle)
    region.add_transition(idle, active, trigger="open")
    region.add_transition(active, idle, trigger="close",
                          effect="balance := 0")

    scenario = Interaction(name="scenario")
    f.model.add(scenario)
    lt = scenario.add_lifeline("t", teller)
    la = scenario.add_lifeline("a", account)
    scenario.add_message(lt, la, "open")
    scenario.add_message(lt, la, "deposit", arguments=["10"])

    if "unresolved" in defects:
        scenario.add_message(lt, la, "frobnicate")
    if "arity" in defects:
        scenario.add_message(lt, la, "deposit", arguments=["1", "2"])
    if "argtype" in defects:
        scenario.add_message(lt, la, "deposit", arguments=["'cash'"])
    if "unreachable" in defects:
        orphan = region.add_state("Orphan")
        region.add_transition(orphan, idle, trigger="expire")
        scenario.add_message(lt, la, "expire")
    if "effect" in defects:
        region.add_transition(active, active, trigger="poke",
                              effect="self.frob()")
    if "no-association" in defects:
        auditor = f.clazz("Auditor")
        lx = scenario.add_lifeline("x", auditor)
        scenario.add_message(lx, la, "audit")
    return f, scenario


# ---------------------------------------------------------------------------
# Seeded-defect precision/recall, one test per rule
# ---------------------------------------------------------------------------


def assert_exact(report, code, expected_count):
    """precision = recall = 1.0 for *code*: exactly the planted findings,
    and no findings of any other error code."""
    found = codes(report, code)
    assert len(found) == expected_count, \
        f"{code}: expected {expected_count} finding(s), got " \
        f"{[d.render() for d in report.diagnostics]}"
    strays = [d for d in report.diagnostics
              if d.code != code and d.severity is Severity.ERROR]
    assert not strays, f"false positives: {[d.render() for d in strays]}"


def test_clean_model_has_no_findings():
    f, _ = bank_model()
    report = consistency_lint(f.model)
    assert not report.diagnostics, \
        [d.render() for d in report.diagnostics]


def test_xd001_unresolved_message():
    f, _ = bank_model(defects=("unresolved",))
    report = consistency_lint(f.model)
    assert_exact(report, "XD001", 1)
    finding = codes(report, "XD001")[0]
    assert "frobnicate" in finding.message
    assert finding.related is not None           # names the classifier too


def test_xd002_arity_mismatch():
    f, _ = bank_model(defects=("arity",))
    report = consistency_lint(f.model)
    assert_exact(report, "XD002", 1)
    assert "2 argument(s)" in codes(report, "XD002")[0].message


def test_xd002_literal_type_mismatch():
    f, _ = bank_model(defects=("argtype",))
    report = consistency_lint(f.model)
    assert_exact(report, "XD002", 1)
    assert "String literal" in codes(report, "XD002")[0].message


def test_xd003_unreachable_trigger():
    f, _ = bank_model(defects=("unreachable",))
    report = consistency_lint(f.model)
    assert_exact(report, "XD003", 1)
    finding = codes(report, "XD003")[0]
    assert "expire" in finding.message
    assert isinstance(finding.related, StateMachine)


def test_xd003_not_raised_once_state_is_connected():
    f, _ = bank_model(defects=("unreachable",))
    machine = next(e for e in f.model.all_contents()
                   if isinstance(e, StateMachine))
    region = machine.regions[0]
    idle = next(v for v in region.subvertices if v.name == "Idle")
    orphan = next(v for v in region.subvertices if v.name == "Orphan")
    region.add_transition(idle, orphan, trigger="suspend")
    report = consistency_lint(f.model)
    assert not codes(report, "XD003")


def test_xd004_unknown_features_in_actions():
    f, _ = bank_model(defects=("effect",))
    report = consistency_lint(f.model)
    assert_exact(report, "XD004", 1)
    assert "frob" in codes(report, "XD004")[0].message


def test_xd004_assignment_to_undeclared_attribute_is_warning():
    f, _ = bank_model()
    machine = next(e for e in f.model.all_contents()
                   if isinstance(e, StateMachine))
    region = machine.regions[0]
    idle = next(v for v in region.subvertices if v.name == "Idle")
    idle.entry = "ghost := 1"
    report = consistency_lint(f.model)
    found = codes(report, "XD004")
    assert len(found) == 1
    assert found[0].severity is Severity.WARNING


def test_xd004_send_over_known_link_is_clean():
    f = ModelFactory("ring")
    cell = f.clazz("Cell")
    f.associate(cell, cell, name="succ", end_b="next", end_a="prev")
    machine = StateMachine(name="Hop")
    cell.owned_behaviors.append(machine)
    region = machine.add_region("main")
    initial = region.add_initial()
    run = region.add_state("Run")
    region.add_transition(initial, run)
    region.add_transition(run, run, trigger="token",
                          effect="send next.token()")
    report = consistency_lint(f.model)
    assert not codes(report, "XD004")


def test_xd005_unsatisfiable_multiplicities():
    f = ModelFactory("loops")
    cell = f.clazz("Cell")
    # every cell has exactly 2 successors but exactly 1 predecessor over
    # the same association: 2n <= links <= n forces n = 0
    f.associate(cell, cell, name="succ", end_b="next", end_a="prev",
                b_lower=2, b_upper=2, a_lower=1, a_upper=1)
    report = consistency_lint(f.model)
    assert_exact(report, "XD005", 1)
    assert "Cell" in codes(report, "XD005")[0].message


def test_xd005_satisfiable_chain_is_clean():
    f = ModelFactory("ok")
    a = f.clazz("A")
    b = f.clazz("B")
    # each A has exactly 3 B's, each B belongs to exactly 2 A's:
    # feasible at n_A = 2k, n_B = 3k
    f.associate(a, b, name="uses", b_lower=3, b_upper=3,
                a_lower=2, a_upper=2)
    report = consistency_lint(f.model)
    assert not codes(report, "XD005")


def test_xd005_two_association_squeeze():
    f = ModelFactory("squeeze")
    a = f.clazz("A")
    b = f.clazz("B")
    # 3 n_A <= L1 <= 2 n_B and 3 n_B <= L2 <= 2 n_A combine into
    # 9 n_A <= 4 n_A: infeasible for n_A >= 1 (and symmetrically n_B)
    f.associate(a, b, name="r1", b_lower=3, b_upper=-1,
                a_lower=0, a_upper=2)
    f.associate(b, a, name="r2", b_lower=3, b_upper=-1,
                a_lower=0, a_upper=2)
    report = consistency_lint(f.model)
    assert len(codes(report, "XD005")) == 2     # both classes uninstantiable


def test_xd006_unsatisfiable_invariant():
    pkg = define_package("xd6corpus", "urn:test:xd6corpus")
    gauge = define_class(pkg, "XGauge")
    add_attribute(gauge, "v", MInteger, 0)
    Invariant(gauge, "impossible", "self.v > 10 and self.v < 5").register()
    Invariant(gauge, "fine", "self.v >= 0").register()
    instance = gauge.instantiate(v=3)
    report = consistency_lint(instance)
    assert_exact(report, "XD006", 1)
    assert "impossible" in codes(report, "XD006")[0].message


def test_xd007_message_without_association():
    f, _ = bank_model(defects=("no-association",))
    report = consistency_lint(f.model)
    found = codes(report, "XD007")
    assert len(found) == 1
    assert found[0].severity is Severity.WARNING
    assert "Auditor" in found[0].message


def test_xd007_association_through_superclass_counts():
    f = ModelFactory("inherit")
    party = f.clazz("Party")
    person = f.clazz("Person", supers=[party])
    registry = f.clazz("Registry")
    f.associate(registry, party, name="tracks")
    f.operation(person, "notify")
    scenario = Interaction(name="s")
    f.model.add(scenario)
    lr = scenario.add_lifeline("r", registry)
    lp = scenario.add_lifeline("p", person)
    scenario.add_message(lr, lp, "notify")
    report = consistency_lint(f.model)
    assert not codes(report, "XD007")


def test_population_precision_and_recall():
    """Across the whole defect population at once: every planted defect
    found, nothing else flagged as an error."""
    planted = {"XD001": 1, "XD002": 2, "XD003": 1, "XD004": 1}
    f, _ = bank_model(defects=("unresolved", "arity", "argtype",
                               "unreachable", "effect"))
    report = consistency_lint(f.model)
    flagged = [d for d in report.diagnostics
               if d.severity is Severity.ERROR]
    true_positives = sum(
        min(len(codes(report, code)), wanted)
        for code, wanted in planted.items())
    recall = true_positives / sum(planted.values())
    precision = true_positives / max(len(flagged), 1)
    assert recall == 1.0, [d.render() for d in report.diagnostics]
    assert precision == 1.0, [d.render() for d in report.diagnostics]


# ---------------------------------------------------------------------------
# Reachability memoisation
# ---------------------------------------------------------------------------


@pytest.fixture()
def fresh_cache():
    reach_mod.invalidate_cache()
    yield
    reach_mod.invalidate_cache()


def _machine():
    f = ModelFactory("m")
    owner = f.clazz("Owner")
    machine = StateMachine(name="M")
    owner.owned_behaviors.append(machine)
    region = machine.add_region("main")
    initial = region.add_initial()
    a = region.add_state("A")
    b = region.add_state("B")
    region.add_transition(initial, a)
    region.add_transition(a, b, trigger="go")
    region.add_transition(b, a, trigger="back")
    return f, machine, region


def test_reachability_summary(fresh_cache):
    _, machine, region = _machine()
    summary = compute_reachability(machine)
    assert summary.states == {"A", "B"}
    assert summary.triggers == {"go", "back"}
    assert summary.accepts("go") and not summary.accepts("nope")


def test_reachability_cache_hit(fresh_cache):
    _, machine, _ = _machine()
    misses = reach_mod.MISSES
    hits = reach_mod.HITS
    first = reachable_triggers(machine)
    second = reachable_triggers(machine)
    assert first == second == frozenset({"go", "back"})
    assert reach_mod.MISSES == misses + 1
    assert reach_mod.HITS == hits + 1
    assert reach_mod.cache_size() == 1


def test_reachability_cache_invalidated_by_edit(fresh_cache):
    _, machine, region = _machine()
    assert reachable_triggers(machine) == {"go", "back"}
    # removing the B->A transition must drop the cached summary
    gone = next(t for t in region.transitions if t.trigger == "back")
    region.transitions.remove(gone)
    assert reachable_triggers(machine) == {"go"}


def test_reachability_cache_invalidated_by_new_state(fresh_cache):
    _, machine, region = _machine()
    assert reachable_triggers(machine) == {"go", "back"}
    b = next(v for v in region.subvertices if v.name == "B")
    c = region.add_state("C")
    region.add_transition(b, c, trigger="jump")
    assert reachable_triggers(machine) == {"go", "back", "jump"}


def test_reachability_cache_invalidated_by_rollback(fresh_cache):
    """A transaction rollback replays inverse ops; the cache must not
    keep the summary computed from the rolled-back structure."""
    _, machine, region = _machine()
    assert reachable_triggers(machine) == {"go", "back"}
    with pytest.raises(RuntimeError):
        with transaction(machine):
            a = next(v for v in region.subvertices if v.name == "A")
            z = region.add_state("Z")
            region.add_transition(a, z, trigger="zap")
            # cache the mid-transaction structure, then abort
            assert reachable_triggers(machine) == {"go", "back", "zap"}
            raise RuntimeError("abort")
    assert reachable_triggers(machine) == {"go", "back"}


def test_reachability_unanalysable_machines(fresh_cache):
    f = ModelFactory("multi")
    owner = f.clazz("O")
    machine = StateMachine(name="Two")
    owner.owned_behaviors.append(machine)
    machine.add_region("left")
    machine.add_region("right")
    assert compute_reachability(machine) is None
    assert reachable_triggers(machine) is None


def test_reachability_prunes_unsatisfiable_guards(fresh_cache):
    _, machine, region = _machine()
    b = next(v for v in region.subvertices if v.name == "B")
    c = region.add_state("C")
    region.add_transition(b, c, guard="x > 3 and x < 1", trigger="never")
    summary = compute_reachability(machine)
    assert "never" not in summary.triggers
    assert "C" not in summary.states


def test_reachability_lru_bound(fresh_cache):
    machines = []
    for index in range(reach_mod._MAX_ENTRIES + 8):
        f = ModelFactory(f"m{index}")
        owner = f.clazz("O")
        machine = StateMachine(name=f"M{index}")
        owner.owned_behaviors.append(machine)
        region = machine.add_region("main")
        initial = region.add_initial()
        state = region.add_state("S")
        region.add_transition(initial, state)
        machines.append(machine)
        reachable_triggers(machine)
    assert reach_mod.cache_size() == reach_mod._MAX_ENTRIES


# ---------------------------------------------------------------------------
# Dual-endpoint diagnostics
# ---------------------------------------------------------------------------


def test_related_endpoint_in_text_rendering():
    f, _ = bank_model(defects=("unresolved",))
    finding = codes(consistency_lint(f.model), "XD001")[0]
    rendered = finding.render()
    assert "[with " in rendered
    assert finding.related_path in rendered
    assert "Account" in finding.related_path


def test_related_endpoint_in_session_json():
    f, _ = bank_model(defects=("unresolved",))
    session = Session(f.model)
    result = session.check(families=("consistency",))
    doc = json.loads(result.render("json"))
    records = doc["families"]["consistency"]
    assert any("frobnicate" in r["message"] for r in records)
    record = next(r for r in records if "frobnicate" in r["message"])
    assert record["related_path"].endswith("Account")
    # single-endpoint records don't grow the fields
    plain = Session(f.model).check(families=("structural",))
    for rec in json.loads(plain.render("json"))["families"]["structural"]:
        assert "related" not in rec


# ---------------------------------------------------------------------------
# Session and CLI plumbing
# ---------------------------------------------------------------------------


def test_session_consistency_family():
    f, _ = bank_model(defects=("unresolved",))
    result = Session(f.model).check(families=["consistency"])
    assert result.families == ("consistency",)
    assert any(d.code == "XD001" for d in result.diagnostics)
    # default family set includes consistency
    default = Session(f.model).check()
    assert "consistency" in default.families
    assert any(d.code == "XD001" for d in default.diagnostics)


def test_session_lint_family_excludes_xd_rules():
    f, _ = bank_model(defects=("unresolved",))
    result = Session(f.model).check(families=["lint"])
    assert not any(d.code.startswith("XD") for d in result.diagnostics)


def test_cli_lint_families_flag(tmp_path, capsys):
    from repro.cli import main, save_model

    # unsatisfiable multiplicities are invisible to the lint family;
    # only consistency (XD005) proves the contradiction
    f = ModelFactory("loops")
    cell = f.clazz("Cell")
    f.associate(cell, cell, name="succ", end_b="next", end_a="prev",
                b_lower=2, b_upper=2, a_lower=1, a_upper=1)
    path = str(tmp_path / "loops.json")
    save_model(f.model, path)

    assert main(["lint", path]) == 0            # default: lint only
    capsys.readouterr()
    assert main(["lint", path, "--families", "consistency"]) == 1
    out = capsys.readouterr().out
    assert "XD005" in out
    assert main(["lint", path, "--families", "lint,consistency",
                 "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert list(doc["families"]) == ["lint", "consistency"]
    assert main(["lint", path, "--families", "bogus"]) == 2


def test_cli_list_rules_shows_family_column(capsys):
    from repro.cli import main

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "XD001" in out and "consistency" in out


def test_quality_report_has_consistency_section():
    f, _ = bank_model(defects=("unresolved",))
    report = Session(f.model).quality_report()
    section = report.section("cross-diagram consistency")
    assert not section.passed
    assert any("XD001" in line for line in section.lines)
    clean_f, _ = bank_model()
    clean = Session(clean_f.model).quality_report()
    assert clean.section("cross-diagram consistency").passed


# ---------------------------------------------------------------------------
# Incremental parity under fuzzed edits
# ---------------------------------------------------------------------------

#: UML slice for consistency fuzzing: the safe core plus interactions
#: and associations, so cross-diagram units exist and churn
XD_FUZZ_CLASSES = UML_SAFE_CLASSES + (
    "Interaction", "Lifeline", "Message", "Association")

PARITY_SEEDS = 34
EDITS_PER_SEED = 6


def xd_generator(seed):
    from repro.uml import UML
    return ModelGenerator(UML, seed=seed, classes=XD_FUZZ_CLASSES,
                          root_class="UmlModel")


def _batch_signature(root):
    linter = ModelLinter(config=LintConfig(disabled={"uml-wellformed"}))
    consistency = ModelLinter(families=("consistency",))
    return (report_signature(validate_tree(root))
            + report_signature(run_wellformed_rules(root))
            + report_signature(linter.lint(root))
            + report_signature(consistency.lint(root)))


@pytest.mark.parametrize("seed", range(PARITY_SEEDS))
def test_incremental_parity_with_consistency(seed):
    """Engine with consistency=True stays multiset-equal to the batch
    stack over fuzzed edits of interaction-bearing models."""
    generator = xd_generator(seed)
    root = generator.generate(30 + (seed % 4) * 8)
    engine = IncrementalEngine(root, consistency=True)
    fuzzer = EditFuzzer(root, seed=seed + 31_000, generator=generator)
    history = []
    for step in range(EDITS_PER_SEED + 1):
        actual = report_signature(engine.revalidate())
        expected = _batch_signature(root)
        if actual != expected:
            pytest.fail(
                f"divergence at seed={seed} step={step}\n"
                f"  edits: {history}\n"
                f"  extra: {dict(actual - expected)}\n"
                f"  missing: {dict(expected - actual)}")
        history.append(fuzzer.random_edit() or "(none)")
    engine.detach()


def test_parity_edit_budget():
    """The parity suite covers the promised >= 200 fuzzed edits."""
    assert PARITY_SEEDS * EDITS_PER_SEED >= 200


def test_hand_built_model_parity_over_targeted_edits():
    """Deterministic end-to-end: plant and heal defects on the bank
    model under a consistency-enabled engine; every state agrees with
    batch."""
    f, scenario = bank_model()
    root = f.model
    engine = IncrementalEngine(f.model, consistency=True)

    def check():
        assert report_signature(engine.revalidate()) \
            == _batch_signature(root)

    check()
    lt = scenario.lifeline("t")
    la = scenario.lifeline("a")
    bad = scenario.add_message(lt, la, "frobnicate")
    check()
    engine.revalidate()
    assert any(d.code == "XD001" for d in engine.report().diagnostics)
    scenario.messages.remove(bad)
    check()
    assert not any(d.code == "XD001"
                   for d in engine.report().diagnostics)
    # grow an unreachable state + message: XD003 appears incrementally
    machine = next(e for e in root.all_contents()
                   if isinstance(e, StateMachine))
    region = machine.regions[0]
    idle = next(v for v in region.subvertices if v.name == "Idle")
    orphan = region.add_state("Orphan")
    region.add_transition(orphan, idle, trigger="expire")
    scenario.add_message(lt, la, "expire")
    check()
    assert any(d.code == "XD003" for d in engine.report().diagnostics)
    # connect the orphan: the finding heals
    region.add_transition(idle, orphan, trigger="suspend")
    check()
    assert not any(d.code == "XD003"
                   for d in engine.report().diagnostics)
    engine.detach()


def test_single_edit_reruns_few_units():
    """A message rename re-runs only the interaction-scoped units, not
    the whole model's worth."""
    f, scenario = bank_model()
    engine = IncrementalEngine(f.model, consistency=True)
    engine.revalidate()
    total = engine.unit_count()
    scenario.messages[0].name = "open"          # no-op value, real write
    engine.revalidate()
    assert engine.stats.last_rerun < total / 4
    engine.detach()


def test_report_by_kind_splits_families():
    f, _ = bank_model(defects=("unresolved",))
    engine = IncrementalEngine(f.model, consistency=True)
    engine.revalidate()
    kinds = engine.report_by_kind()
    assert "consistency" in kinds
    assert any(d.code == "XD001"
               for d in kinds["consistency"].diagnostics)
    assert not any(d.code.startswith("XD")
                   for d in kinds.get("lint",
                                      type(kinds["consistency"])()).diagnostics)
    engine.detach()
