"""Durability and resilience: WAL, crash recovery, deadlines,
backpressure, drain, and the client retry policy.

The headline property (``TestCrashSchedules``) is the issue's
acceptance criterion: across 50 seeded crash schedules — the log cut
after any acknowledged prefix, with or without a torn partial record of
the next transaction — the recovered server is byte-identical (canonical
check document) to a shadow session that applied exactly that
acknowledged prefix.  fsync-before-ack means those are the only states
a real ``kill -9`` can leave behind.
"""

import json
import os
import random
import shutil
import socket
import threading
import time

import pytest

from repro import faults
from repro.server import (
    InProcessClient,
    ModelServer,
    RemoteError,
    RetryPolicy,
    TcpClient,
    TcpServer,
    TransportError,
    WalCorruptError,
    WriteAheadLog,
    apply_edit_ops,
)
from repro.server import durability
from repro.server.dispatch import DEFAULT_DEADLINE
from repro.session import Session, canonical_check_document


def host_corpus(server, name="main", size=60, seed=3):
    session = Session.generate("demo", size=size, seed=seed, repair=True)
    server.attach(name, session)
    return server.repo(name)


def named_eids(state, limit=None):
    out = []
    for root in state.model.roots:
        for element in [root] + list(root.all_contents()):
            feature = element.meta.all_features().get("name")
            if feature is not None and not feature.many:
                out.append(element.eid)
    return out[:limit] if limit else out


def rename_op(eid, new_name):
    return {"op": "set", "element": eid, "feature": "name",
            "value": new_name}


def create_op(name, alias=None):
    op = {"op": "create", "metaclass": "Component",
          "attrs": {"name": name}}
    if alias:
        op["as"] = alias
    return op


# ---------------------------------------------------------------------------
# WAL record format
# ---------------------------------------------------------------------------

class TestWalRecords:
    def test_encode_decode_round_trip(self):
        record = {"type": "txn", "epoch": 7, "ops": [create_op("X")]}
        line = durability.encode_record(record)
        assert durability.decode_record(line.rstrip(b"\n")) == record

    def test_bit_flip_fails_the_checksum(self):
        line = durability.encode_record({"type": "txn", "epoch": 1,
                                         "ops": []}).rstrip(b"\n")
        flipped = line.replace(b'"epoch":1', b'"epoch":2')
        assert flipped != line
        assert durability.decode_record(flipped) is None

    def test_garbage_is_not_a_record(self):
        assert durability.decode_record(b"not json at all") is None
        assert durability.decode_record(b'{"no": "crc"}') is None

    def test_torn_final_record_is_truncated(self, tmp_path):
        path = str(tmp_path / "x.wal")
        good = durability.encode_record({"type": "origin", "epoch": 0,
                                         "repo": "x", "snapshot": "s"})
        partial = durability.encode_record(
            {"type": "txn", "epoch": 1, "ops": []})[:10]
        with open(path, "wb") as handle:
            handle.write(good + partial)
        records, valid = durability.read_records(path)
        assert len(records) == 1
        assert valid == len(good)

    def test_torn_final_line_with_newline_is_truncated(self, tmp_path):
        path = str(tmp_path / "x.wal")
        good = durability.encode_record({"type": "origin", "epoch": 0,
                                         "repo": "x", "snapshot": "s"})
        with open(path, "wb") as handle:
            handle.write(good + b'{"half": tru\n')
        records, valid = durability.read_records(path)
        assert len(records) == 1
        assert valid == len(good)

    def test_mid_log_corruption_is_typed(self, tmp_path):
        path = str(tmp_path / "x.wal")
        a = durability.encode_record({"type": "origin", "epoch": 0,
                                      "repo": "x", "snapshot": "s"})
        b = durability.encode_record({"type": "txn", "epoch": 1,
                                      "ops": []})
        with open(path, "wb") as handle:
            handle.write(a + b"garbage line\n" + b)
        with pytest.raises(WalCorruptError):
            durability.read_records(path)


# ---------------------------------------------------------------------------
# Recovery basics
# ---------------------------------------------------------------------------

def seeded_server(wal_dir, *, txns=4):
    """A WAL-backed server with *txns* committed edits on repo main."""
    server = ModelServer(wal_dir=str(wal_dir))
    state = host_corpus(server)
    with InProcessClient(server) as client:
        eids = named_eids(state, limit=txns)
        for i, eid in enumerate(eids):
            client.request("edit-txn", repo="main", base_epoch=i,
                           ops=[rename_op(eid, f"Renamed{i}"),
                                create_op(f"Extra{i}", alias="x"),
                                {"op": "set", "element": "$x",
                                 "feature": "name",
                                 "value": f"ExtraRenamed{i}"}])
    return server, state


class TestRecovery:
    def test_kill_and_restart_is_byte_identical(self, tmp_path):
        server, state = seeded_server(tmp_path)
        live = canonical_check_document(state.session.check().to_json())
        # no clean shutdown: simply abandon the first server (kill -9)
        recovered = ModelServer(wal_dir=str(tmp_path))
        assert recovered.recovered == ["main"]
        st = recovered.repo("main")
        assert st.epoch == 4
        assert st.edits_applied == 4
        doc = canonical_check_document(st.session.check().to_json())
        assert doc == live

    def test_edits_continue_after_recovery(self, tmp_path):
        seeded_server(tmp_path)
        recovered = ModelServer(wal_dir=str(tmp_path))
        with InProcessClient(recovered) as client:
            result = client.request(
                "edit-txn", repo="main", base_epoch=4,
                ops=[create_op("PostRecovery")])
            assert result["epoch"] == 5
        # and a second recovery sees the post-recovery edit too
        third = ModelServer(wal_dir=str(tmp_path))
        assert third.repo("main").epoch == 5

    def test_recovery_is_idempotent(self, tmp_path):
        server, state = seeded_server(tmp_path)
        want = canonical_check_document(state.session.check().to_json())
        for _ in range(3):
            again = ModelServer(wal_dir=str(tmp_path))
            st = again.repo("main")
            got = canonical_check_document(st.session.check().to_json())
            assert got == want

    def test_compaction_preserves_state(self, tmp_path):
        server = ModelServer(wal_dir=str(tmp_path), wal_compact_every=3)
        state = host_corpus(server)
        with InProcessClient(server) as client:
            for i, eid in enumerate(named_eids(state, limit=7)):
                client.request("edit-txn", repo="main", base_epoch=i,
                               ops=[rename_op(eid, f"R{i}")])
        assert state.wal.compactions >= 2
        live = canonical_check_document(state.session.check().to_json())
        recovered = ModelServer(wal_dir=str(tmp_path))
        st = recovered.repo("main")
        assert st.epoch == 7
        doc = canonical_check_document(st.session.check().to_json())
        assert doc == live
        # compaction cleaned up superseded snapshot generations
        snapshots = [n for n in os.listdir(str(tmp_path))
                     if durability.SNAPSHOT_MARKER in n]
        assert len(snapshots) == 1

    def test_load_verb_is_wal_backed_too(self, tmp_path):
        from repro.cli import save_model

        model_path = str(tmp_path / "m.json")
        wal_dir = tmp_path / "wal"
        session = Session.generate("demo", size=40, seed=5, repair=True)
        save_model(session.model, model_path)
        server = ModelServer(wal_dir=str(wal_dir))
        with InProcessClient(server) as client:
            client.request("load", repo="disk", path=model_path)
            state = server.repo("disk")
            eid = named_eids(state, limit=1)[0]
            client.request("edit-txn", repo="disk", base_epoch=0,
                           ops=[rename_op(eid, "FromDisk")])
        recovered = ModelServer(wal_dir=str(wal_dir))
        assert recovered.recovered == ["disk"]
        assert recovered.repo("disk").epoch == 1

    def test_wal_stats_surface_in_summary(self, tmp_path):
        server, state = seeded_server(tmp_path)
        summary = state.summary()
        assert summary["wal"]["appended"] == 4
        assert summary["wal"]["broken"] is None


# ---------------------------------------------------------------------------
# The 50-schedule crash property
# ---------------------------------------------------------------------------

TXNS = 8
SCHEDULES = 50


@pytest.fixture(scope="class")
def crash_fixture(tmp_path_factory):
    """One live run's WAL directory plus its parsed record offsets."""
    base = tmp_path_factory.mktemp("walbase")
    seeded_server(base, txns=TXNS)
    wal_path = os.path.join(str(base), "main.wal")
    with open(wal_path, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    records = [durability.decode_record(line.rstrip(b"\n"))
               for line in lines]
    assert all(records), "live WAL must be fully valid"
    assert records[0]["type"] == "origin"
    return {"base": str(base), "lines": lines, "records": records}


class TestCrashSchedules:
    _shadow_cache = {}

    def _shadow_document(self, crash, acked):
        """Check document of a shadow session applying exactly the
        acknowledged prefix, through the same op applier."""
        from repro.cli import load_model
        from repro.mof.txn import transaction

        cached = self._shadow_cache.get(acked)
        if cached is not None:
            return cached
        origin = crash["records"][0]
        snapshot = os.path.join(crash["base"], origin["snapshot"])
        model = load_model(snapshot)
        resolver = ModelServer().resolve_metaclass
        for record in crash["records"][1:1 + acked]:
            with transaction(model):
                apply_edit_ops(resolver, model, record["ops"],
                               pin_eids=True)
        document = canonical_check_document(
            Session(model).check().to_json())
        self._shadow_cache[acked] = document
        return document

    def test_any_crash_point_recovers_the_acked_prefix(
            self, crash_fixture, tmp_path):
        crash = crash_fixture
        failures = []
        for schedule in range(SCHEDULES):
            rng = random.Random(9000 + schedule)
            acked = rng.randint(0, TXNS)
            # k acknowledged txns survive intact; the (k+1)-th may be
            # torn anywhere short of its newline (fsync-before-ack
            # makes these the only reachable crash states)
            tail = b""
            if acked < TXNS and rng.random() < 0.5:
                nxt = crash["lines"][1 + acked]
                tail = nxt[:rng.randrange(1, len(nxt))]
                if tail.endswith(b"\n"):
                    tail = tail[:-1]
            crashed = tmp_path / f"s{schedule}"
            shutil.copytree(crash["base"], str(crashed))
            with open(str(crashed / "main.wal"), "wb") as handle:
                handle.write(b"".join(crash["lines"][:1 + acked]) + tail)
            recovered = ModelServer(wal_dir=str(crashed))
            state = recovered.repo("main")
            doc = canonical_check_document(
                state.session.check().to_json())
            want = self._shadow_document(crash, acked)
            if doc != want or state.epoch != acked:
                failures.append((schedule, acked, len(tail)))
            shutil.rmtree(str(crashed))
        assert not failures, (
            f"{len(failures)} crash schedules diverged from the "
            f"acknowledged prefix: {failures}")


# ---------------------------------------------------------------------------
# WAL failure semantics
# ---------------------------------------------------------------------------

class TestWalFaults:
    def test_failed_append_rolls_back_and_stays_consistent(self,
                                                           tmp_path):
        server = ModelServer(wal_dir=str(tmp_path))
        state = host_corpus(server)
        eid = named_eids(state, limit=1)[0]
        before = state.model.index().resolve_eid(eid).eget("name")
        size_before = state.model.size()
        wal_size = os.path.getsize(state.wal.path)
        with InProcessClient(server) as client:
            plan = faults.FaultPlan(seed=0, rate=1.0,
                                    sites=["wal.append"],
                                    max_faults=1)
            with faults.injected(plan):
                with pytest.raises(RemoteError) as info:
                    client.request("edit-txn", repo="main", base_epoch=0,
                                   ops=[rename_op(eid, "Lost"),
                                        create_op("AlsoLost")])
            assert info.value.code == "txn-failed"
            assert info.value.data["replayable"] is True
            # memory rolled back ...
            assert state.epoch == 0
            assert state.model.size() == size_before
            element = state.model.index().resolve_eid(eid)
            assert element.eget("name") == before
            # ... and disk agrees (no partial record)
            assert os.path.getsize(state.wal.path) == wal_size
            # the replay then succeeds and is durable
            result = client.request("edit-txn", repo="main",
                                    base_epoch=0,
                                    ops=[rename_op(eid, "Kept")])
            assert result["epoch"] == 1
        recovered = ModelServer(wal_dir=str(tmp_path))
        st = recovered.repo("main")
        assert st.epoch == 1
        assert st.model.index().resolve_eid(eid).eget("name") == "Kept"

    def test_failed_replay_is_retryable(self, tmp_path):
        seeded_server(tmp_path)
        plan = faults.FaultPlan(seed=0, at={"wal.replay": [2]})
        with faults.injected(plan):
            with pytest.raises(faults.InjectedFault):
                ModelServer(wal_dir=str(tmp_path))
        # nothing was consumed or damaged: the retry fully recovers
        recovered = ModelServer(wal_dir=str(tmp_path))
        assert recovered.repo("main").epoch == 4

    def test_log_without_origin_is_corrupt(self, tmp_path):
        with open(str(tmp_path / "bad.wal"), "wb") as handle:
            handle.write(durability.encode_record(
                {"type": "txn", "epoch": 1, "ops": []}))
        with pytest.raises(WalCorruptError):
            ModelServer(wal_dir=str(tmp_path))


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_expired_budget_sheds_before_running(self):
        server = ModelServer(deadlines={"ping": -1.0})
        with InProcessClient(server) as client:
            with pytest.raises(RemoteError) as info:
                client.request("ping")
            assert info.value.code == "deadline-exceeded"
            assert info.value.data["replayable"] is True

    def test_unknown_verbs_use_the_default_budget(self):
        server = ModelServer()
        assert server.deadlines.get("nonexistent") is None
        assert DEFAULT_DEADLINE > 0

    def test_mid_batch_expiry_rolls_back(self, monkeypatch, tmp_path):
        from repro.server import dispatch

        server = ModelServer(wal_dir=str(tmp_path),
                             deadlines={"edit-txn": 0.05})
        state = host_corpus(server)
        eids = named_eids(state, limit=6)
        names = [state.model.index().resolve_eid(e).eget("name")
                 for e in eids]
        wal_size = os.path.getsize(state.wal.path)

        clock = {"now": 1000.0}

        def fake_monotonic():
            clock["now"] += 0.02       # every look at the clock ticks
            return clock["now"]

        monkeypatch.setattr(dispatch.time, "monotonic", fake_monotonic)
        with InProcessClient(server) as client:
            with pytest.raises(RemoteError) as info:
                client.request("edit-txn", repo="main", base_epoch=0,
                               ops=[rename_op(e, f"Doomed{i}")
                                    for i, e in enumerate(eids)])
        assert info.value.code == "deadline-exceeded"
        # the partially applied batch was rolled back, nothing logged
        assert state.epoch == 0
        got = [state.model.index().resolve_eid(e).eget("name")
               for e in eids]
        assert got == names
        assert os.path.getsize(state.wal.path) == wal_size


# ---------------------------------------------------------------------------
# Backpressure, eviction, drain (TCP level)
# ---------------------------------------------------------------------------

@pytest.fixture
def slow_check(monkeypatch):
    """Make every check verb sleep, so inflight queues actually fill."""
    original = Session.check

    def slow(self, *args, **kwargs):
        time.sleep(0.25)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Session, "check", slow)
    return slow


def _raw_frames(sock, count, verb="check", repo="main"):
    payload = b"".join(
        (json.dumps({"id": i + 1, "verb": verb,
                     "params": {"repo": repo, "incremental": False}})
         + "\n").encode()
        for i in range(count))
    sock.sendall(payload)


class TestTcpResilience:
    def test_overloaded_shedding(self, slow_check):
        server = ModelServer()
        host_corpus(server, size=30)
        tcp = TcpServer(server, max_inflight=1).start()
        try:
            sock = socket.create_connection(tcp.address, timeout=10)
            _raw_frames(sock, 8)
            reader = sock.makefile("rb")
            codes = []
            for _ in range(8):
                frame = json.loads(reader.readline())
                codes.append("ok" if frame.get("ok")
                             else frame["error"]["code"])
            assert "overloaded" in codes
            assert codes.count("ok") >= 1
            sock.close()
        finally:
            tcp.shutdown()

    def test_slowloris_eviction(self):
        server = ModelServer()
        tcp = TcpServer(server, partial_frame_timeout=0.3).start()
        try:
            sock = socket.create_connection(tcp.address, timeout=10)
            sock.sendall(b'{"id": 1, "verb": "ping"')   # never finishes
            sock.settimeout(5.0)
            assert sock.recv(1024) == b""     # server hung up on us
            sock.close()
            # the server still serves new, honest connections
            with TcpClient(*tcp.address) as client:
                assert client.request("ping")["pong"] is True
        finally:
            tcp.shutdown()

    def test_idle_watcher_is_not_evicted(self):
        server = ModelServer()
        host_corpus(server, size=30)
        tcp = TcpServer(server, partial_frame_timeout=0.3).start()
        try:
            with TcpClient(*tcp.address) as client:
                client.request("watch", repo="main")
                time.sleep(1.0)               # idle well past the limit
                assert client.request("ping")["pong"] is True
        finally:
            tcp.shutdown()

    def test_drain_rejects_new_work_and_flushes(self, tmp_path):
        server = ModelServer(wal_dir=str(tmp_path))
        state = host_corpus(server)
        tcp = TcpServer(server).start()
        client = TcpClient(*tcp.address)
        eid = named_eids(state, limit=1)[0]
        client.request("edit-txn", repo="main", base_epoch=0,
                       ops=[rename_op(eid, "BeforeDrain")])
        stats = tcp.drain(timeout=2.0)
        assert stats["drained"] is True
        # listener is gone
        with pytest.raises((TransportError, OSError)):
            TcpClient(*tcp.address, timeout=0.5).request("ping")
        # the acknowledged edit survived the drain
        recovered = ModelServer(wal_dir=str(tmp_path))
        st = recovered.repo("main")
        assert st.model.index().resolve_eid(eid).eget("name") \
            == "BeforeDrain"

    def test_shutdown_with_hung_client_is_fast(self):
        server = ModelServer()
        tcp = TcpServer(server).start()
        sock = socket.create_connection(tcp.address, timeout=10)
        sock.sendall(b'{"id": 1, ')          # half a frame, then stall
        time.sleep(0.1)
        started = time.monotonic()
        tcp.shutdown()
        assert time.monotonic() - started < 3.0
        sock.close()


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_bounded_full_jitter(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0,
                             rng=random.Random(7))
        for attempt in range(10):
            cap = min(1.0, 0.1 * (2 ** attempt))
            for _ in range(50):
                delay = policy.backoff(attempt)
                assert 0.0 <= delay <= cap

    def test_transient_errors_are_replayed(self):
        sleeps = []
        policy = RetryPolicy(attempts=5, rng=random.Random(1),
                             sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RemoteError("overloaded", "busy", {})
            return "done"

        assert policy.run(flaky) == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert policy.retried == 2

    def test_fatal_errors_propagate_immediately(self):
        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise RemoteError("bad-params", "nope", {})

        with pytest.raises(RemoteError):
            policy.run(fatal)
        assert calls["n"] == 1

    def test_attempt_cap(self):
        policy = RetryPolicy(attempts=3, rng=random.Random(1),
                             sleep=lambda _s: None)

        def always():
            raise TransportError("down")

        with pytest.raises(TransportError):
            policy.run(always)

    def test_conflict_refreshes_base_epoch(self):
        server = ModelServer()
        state = host_corpus(server)
        eid = named_eids(state, limit=1)[0]
        tcp = TcpServer(server).start()
        try:
            a = TcpClient(*tcp.address)
            b = TcpClient(*tcp.address,
                          retry=RetryPolicy(rng=random.Random(2),
                                            sleep=lambda _s: None))
            a.request("edit-txn", repo="main", base_epoch=0,
                      ops=[rename_op(eid, "ByA")])
            # b's base_epoch=0 is now stale: the policy replays it
            result = b.request("edit-txn", repo="main", base_epoch=0,
                               ops=[rename_op(eid, "ByB")])
            assert result["epoch"] == 2
            assert b.retry.retried == 1
            a.close()
            b.close()
        finally:
            tcp.shutdown()

    def test_reconnect_after_server_restart(self):
        server = ModelServer()
        tcp = TcpServer(server).start()
        client = TcpClient(*tcp.address,
                           retry=RetryPolicy(attempts=8,
                                             base_delay=0.01,
                                             rng=random.Random(3)))
        assert client.request("ping")["pong"] is True
        host, port = tcp.address
        tcp.shutdown()
        # restart on the same port; the client reconnects mid-retry
        server2 = ModelServer()
        tcp2 = TcpServer(server2, host=host, port=port).start()
        try:
            assert client.request("ping")["pong"] is True
            assert client.retry.retried >= 1
        finally:
            client.close()
            tcp2.shutdown()


class TestTransportErrors:
    def test_connect_failure_is_typed(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(TransportError):
            TcpClient("127.0.0.1", free_port, timeout=0.5)

    def test_request_on_dead_server_is_typed(self):
        server = ModelServer()
        tcp = TcpServer(server).start()
        client = TcpClient(*tcp.address)
        tcp.shutdown()
        with pytest.raises(TransportError) as info:
            client.request("ping")
        assert info.value.transient is True

    def test_drain_events_restores_socket_timeout(self):
        server = ModelServer()
        tcp = TcpServer(server).start()
        try:
            client = TcpClient(*tcp.address, timeout=17.0)
            assert client._sock.gettimeout() == 17.0
            client.drain_events(timeout=0.1)
            assert client._sock.gettimeout() == 17.0
            client.close()
        finally:
            tcp.shutdown()
