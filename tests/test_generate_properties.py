"""Property tests for :mod:`repro.generate` — the corpus contracts.

Four pillars, each over many seeds:

* **determinism** — the same ``(package, size, seed)`` serializes
  byte-identically, including twice within one process (the stable-id
  pass defeats the kernel's process-global id counter);
* **repair convergence** — repaired corpora report *zero* error
  diagnostics from the default :meth:`Session.check` families,
  cross-diagram consistency included;
* **coverage** — coverage accumulates monotonically, and
  coverage-directed generation reaches full structural (metaclass +
  association-end) coverage on the UML slice in fewer elements than
  blind random generation;
* **persistence** — generated corpora survive the crash-safe
  save → load → check roundtrip of :mod:`repro.xmi.persist`.
"""

from __future__ import annotations

import pytest

from repro.generate import (
    CoverageMap,
    demo_package,
    generate_model,
    make_generator,
)
from repro.mof import compare
from repro.session import Session
from repro.uml import UML
from repro.xmi import load_model, save_model, serialize_model
from repro.xmi.writer import write_xml

N_CONVERGENCE_SEEDS = 50


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("package,size", [("demo", 400), ("uml", 300)])
def test_same_seed_same_bytes_within_one_process(package, size):
    first = generate_model(package, size=size, seed=11, repair=True)
    second = generate_model(package, size=size, seed=11, repair=True)
    assert write_xml(first.model) == write_xml(second.model)
    assert serialize_model(first.model) == serialize_model(second.model)


def test_different_seeds_differ():
    a = generate_model("demo", size=300, seed=0)
    b = generate_model("demo", size=300, seed=1)
    assert write_xml(a.model) != write_xml(b.model)


def test_repair_replay_is_deterministic():
    a = generate_model("demo", size=500, seed=9, repair=True)
    b = generate_model("demo", size=500, seed=9, repair=True)
    assert [(e.action, e.code, e.path, e.detail) for e in a.repair.edits] \
        == [(e.action, e.code, e.path, e.detail) for e in b.repair.edits]


# ---------------------------------------------------------------------------
# repair convergence, many seeds, consistency included
# ---------------------------------------------------------------------------

def test_repair_converges_on_many_seeded_demo_corpora():
    failures = []
    for seed in range(N_CONVERGENCE_SEEDS):
        result = generate_model("demo", size=120, seed=seed, repair=True)
        if not result.repair.converged:
            failures.append((seed, result.repair.render()))
            continue
        errors = result.session().check().errors   # default families:
        if errors:                                 # consistency included
            failures.append((seed, [d.render() for d in errors[:3]]))
    assert not failures, failures


def test_repair_converges_on_seeded_uml_corpora():
    for seed in range(8):
        result = generate_model("uml", size=250, seed=seed, repair=True)
        assert result.repair.converged, (seed, result.repair.render())
        assert not result.session().check().errors, seed


def test_unrepaired_corpora_do_violate_sometimes():
    # the repair loop must have real work across the seed range —
    # otherwise the convergence property above is vacuous
    dirty = sum(
        1 for seed in range(10)
        if Session(generate_model("demo", size=120, seed=seed).model)
        .check().errors)
    assert dirty >= 5, dirty


# ---------------------------------------------------------------------------
# coverage
# ---------------------------------------------------------------------------

def test_coverage_accumulates_monotonically():
    generator = make_generator("demo", seed=5)
    coverage = CoverageMap(generator)
    fractions = []
    for size in (10, 40, 160, 640):
        root = make_generator("demo", seed=5).generate(size)
        coverage.measure(root)
        report = coverage.report()
        fractions.append((report.metaclass_fraction, report.end_fraction,
                          report.branch_fraction))
    for before, after in zip(fractions, fractions[1:]):
        assert all(b <= a for b, a in zip(before, after)), fractions
    assert fractions[-1][0] == 1.0


def _elements_to_full_structural_coverage(directed: bool, seed: int,
                                          cap: int = 4096) -> int:
    size = 16
    while size <= cap:
        generator = make_generator("uml", seed=seed, directed=directed)
        root = generator.generate(size)
        coverage = generator.coverage or CoverageMap(generator)
        coverage.measure(root)
        if coverage.structural_complete:
            return size
        size *= 2
    return cap * 2


@pytest.mark.parametrize("seed", [3, 7])
def test_directed_reaches_full_coverage_with_fewer_elements(seed):
    directed = _elements_to_full_structural_coverage(True, seed)
    random_ = _elements_to_full_structural_coverage(False, seed)
    assert directed < random_, (directed, random_)
    assert directed <= 512, directed


# ---------------------------------------------------------------------------
# persistence roundtrip
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("suffix", ["xmi", "json"])
def test_save_load_check_roundtrip(tmp_path, suffix):
    result = generate_model("demo", size=300, seed=13, repair=True)
    path = tmp_path / f"corpus.{suffix}"
    save_model(result.model, path)
    loaded = load_model(path, [demo_package()])
    assert not Session(loaded).check().errors
    diff = compare(result.model.roots[0], loaded.roots[0])
    assert diff.identical, diff.summary()


def test_uml_corpus_roundtrips_through_the_cli_loader(tmp_path):
    result = generate_model("uml", size=200, seed=2, repair=True)
    path = tmp_path / "corpus.xmi"
    save_model(result.model, path)
    loaded = load_model(path, [UML])
    assert not Session(loaded).check().errors
    assert compare(result.model.roots[0], loaded.roots[0]).identical
