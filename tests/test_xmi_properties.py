"""Property-based round-trip tests: randomly generated models survive
XML and JSON serialization bit-for-bit (structure, attributes, refs)."""

from hypothesis import given, settings, strategies as st

from repro.xmi import read_json, read_xml, write_json, write_xml
from kernel_fixture import TEST_PKG, TBook, TChapter, TLibrary

names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8)


@st.composite
def library_models(draw):
    lib = TLibrary(name=draw(names))
    n_books = draw(st.integers(0, 5))
    books = []
    for i in range(n_books):
        book = TBook(name=draw(names), pages=draw(st.integers(1, 999)))
        for _ in range(draw(st.integers(0, 3))):
            book.tags.append(draw(names))
        for _ in range(draw(st.integers(0, 2))):
            book.chapters.append(TChapter(name=draw(names)))
        books.append(book)
        lib.books.append(book)
    # random sequel links (non-containment refs)
    if len(books) >= 2:
        for _ in range(draw(st.integers(0, 2))):
            a = draw(st.sampled_from(books))
            b = draw(st.sampled_from(books))
            if a is not b:
                a.sequel = b
    if books and draw(st.booleans()):
        lib.featured = draw(st.sampled_from(books))
    return lib


def structure_signature(root):
    """A deep comparable signature of a containment tree."""
    def sig(element):
        attrs = {}
        for name, feature in element.meta.all_features().items():
            if feature.is_reference:
                continue
            value = element.eget(name)
            attrs[name] = list(value) if feature.many else value
        refs = {}
        for name, feature in element.meta.all_features().items():
            if not feature.is_reference or feature.containment:
                continue
            if feature.opposite is not None and \
                    feature.opposite.containment:
                continue
            value = element.eget(name)
            targets = list(value) if feature.many else (
                [value] if value is not None else [])
            refs[name] = [getattr(t, "name", None) for t in targets]
        children = [sig(child) for child in element.contents()]
        return (element.meta.name, tuple(sorted(attrs.items(),
                                                key=lambda kv: kv[0],
                                                )), tuple(
            sorted((k, tuple(v)) for k, v in refs.items())), tuple(children))

    def hashable(value):
        if isinstance(value, list):
            return tuple(value)
        return value

    def norm(signature):
        kind, attrs, refs, children = signature
        attrs = tuple((k, hashable(v)) for k, v in attrs)
        return (kind, attrs, refs, tuple(norm(c) for c in children))
    return norm(sig(root))


@settings(max_examples=60, deadline=None)
@given(library_models())
def test_xml_roundtrip_preserves_structure(lib):
    loaded = read_xml(write_xml(lib, uri="urn:prop"), [TEST_PKG])
    assert structure_signature(loaded.roots[0]) == structure_signature(lib)


@settings(max_examples=60, deadline=None)
@given(library_models())
def test_json_roundtrip_preserves_structure(lib):
    loaded = read_json(write_json(lib, uri="urn:prop"), [TEST_PKG])
    assert structure_signature(loaded.roots[0]) == structure_signature(lib)


@settings(max_examples=30, deadline=None)
@given(library_models())
def test_double_roundtrip_is_identity(lib):
    text1 = write_xml(lib, uri="urn:prop")
    text2 = write_xml(read_xml(text1, [TEST_PKG]))
    assert text1 == text2
