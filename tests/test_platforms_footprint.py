"""Tests for static memory-footprint estimation."""

import pytest

from repro.platforms import (
    PIM_TO_PSM,
    baremetal_platform,
    class_footprint,
    estimate_footprint,
    posix_platform,
)


@pytest.fixture
def psm(cruise_model, baremetal):
    return PIM_TO_PSM.run(cruise_model.model, baremetal).primary_root


class TestClassFootprint:
    def test_attribute_bits_summed(self, psm, baremetal):
        controller = [e for e in psm.packaged_elements
                      if e.name == "CruiseController"][0]
        footprint = class_footprint(controller, baremetal)
        # int16 target (16) + bit enabled (8 min) + ptr actuator (32)
        # + ptr sensor (32) + state byte (8) = 96 bits = 12 bytes
        assert footprint.instance_bytes == 12
        assert footprint.stack_bytes == 0

    def test_wrapper_counts_stack(self, psm, baremetal):
        wrapper = [e for e in psm.packaged_elements
                   if e.name == "CruiseController_task"][0]
        footprint = class_footprint(wrapper, baremetal)
        assert footprint.stack_bytes == 512       # task engine stack

    def test_channel_counts_queue(self, psm, baremetal):
        channel = [e for e in psm.packaged_elements
                   if e.name.endswith("_queue")
                   or e.name.endswith("_signal")][0]
        footprint = class_footprint(channel, baremetal)
        assert footprint.queue_bytes > 0


class TestModelFootprint:
    def test_fits_baremetal_budget(self, psm, baremetal):
        report = estimate_footprint(psm, baremetal)
        assert report.budget_bytes == 64 * 1024
        assert report.fits
        assert 0 < report.utilization < 1
        assert "FITS" in report.summary()

    def test_instance_counts_scale(self, psm, baremetal):
        single = estimate_footprint(psm, baremetal)
        many = estimate_footprint(
            psm, baremetal,
            instances={name: 50 for name in single.classes})
        assert many.total_bytes == pytest.approx(
            50 * single.total_bytes, rel=0.01)

    def test_over_budget_detected(self, psm, baremetal):
        report = estimate_footprint(
            psm, baremetal,
            instances={name: 100_000 for name in
                       estimate_footprint(psm, baremetal).classes})
        assert not report.fits
        assert "OVER BUDGET" in report.summary()

    def test_posix_types_are_wider(self, cruise_model, posix, baremetal):
        posix_psm = PIM_TO_PSM.run(cruise_model.model, posix).primary_root
        bm_psm = PIM_TO_PSM.run(cruise_model.model,
                                baremetal).primary_root
        posix_ctl = class_footprint(
            [e for e in posix_psm.packaged_elements
             if e.name == "CruiseController"][0], posix)
        bm_ctl = class_footprint(
            [e for e in bm_psm.packaged_elements
             if e.name == "CruiseController"][0], baremetal)
        assert posix_ctl.instance_bytes > bm_ctl.instance_bytes
