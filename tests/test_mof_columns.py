"""Tests for the columnar extent store (repro.mof.columns).

The store is an opt-in struct-of-arrays mirror of each exact-metaclass
extent, maintained off the same notification protocol as the
ModelIndex.  Everything here pivots on two properties:

* **freshness** — after any edit sequence, a rebuilt block agrees with
  per-object reads cell by cell (``ColumnStore.verify`` is the oracle);
* **output invariance** — a columnar :meth:`Session.check` produces a
  byte-identical diagnostic document to the object-backed run, because
  the bulk scans only ever *narrow* which elements get the exact
  per-object checker, never change what it reports.
"""

import json
from array import array

import pytest

from repro.generate import EditFuzzer, demo_generator, demo_package
from repro.mof import (
    M_0N,
    M_11,
    M_1N,
    Model,
    add_reference,
    define_class,
    define_package,
    set_read_hook,
)
from repro.mof.validate import validate_element
from repro.session import Session


@pytest.fixture
def library_model():
    root = demo_generator(5).generate(40)
    model = Model("urn:columns")
    model.add_root(root)
    return model


class TestColumnStoreReads:
    def test_conforming_values_match_object_reads(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        values = store.conforming_values(book, "pages")
        expected = [e.eget("pages")
                    for e in library_model.instances_of(book)]
        assert list(values) == expected

    def test_pure_int_attribute_compacts_to_typed_array(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        block = store.block(book)
        if all(isinstance(v, int) for v in block.columns["pages"]):
            assert isinstance(block.columns["pages"], array)

    def test_inapplicable_features_return_none(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        assert store.conforming_values(book, "tags") is None      # many
        assert store.conforming_values(book, "sequel") is None    # reference
        assert store.conforming_values(book, "nope") is None      # unknown

    def test_superclass_read_spans_subclass_extents(self, library_model):
        store = library_model.enable_columns()
        named = demo_package().classifier("GNamed")
        values = store.conforming_values(named, "name")
        assert values is not None
        assert len(values) == len(library_model.instances_of(named))

    def test_read_hook_gates_bulk_reads(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        assert store.conforming_values(book, "pages") is not None
        previous = set_read_hook(lambda element, key: None)
        try:
            # dependency tracking must see per-element reads; the bulk
            # path would hide them, so it refuses
            assert store.conforming_values(book, "pages") is None
        finally:
            set_read_hook(previous)
        assert store.conforming_values(book, "pages") is not None


class TestColumnStoreMaintenance:
    def test_write_invalidates_and_rebuild_reflects_it(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        some_book = library_model.instances_of(book)[0]
        before = store.conforming_values(book, "pages")
        invalidations = store.invalidations
        some_book.eset("pages", 123456)
        assert store.invalidations > invalidations
        after = store.conforming_values(book, "pages")
        assert 123456 in after
        assert before != after

    def test_verify_reports_injected_divergence(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        block = store.block(book)
        assert store.verify() == []
        # simulate a missed notification by corrupting one cell; the
        # column must be a boxed list for in-place corruption
        block.columns["color"] = list(block.columns["color"])
        block.columns["color"][0] = "not-a-color"
        assert any("color[0]" in problem for problem in store.verify())

    def test_detach_stops_maintenance(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        store.block(book)
        library_model.disable_columns()
        assert library_model.column_store() is None
        invalidations = store.invalidations
        library_model.instances_of(book)[0].eset("pages", 7)
        assert store.invalidations == invalidations

    def test_stats_shape(self, library_model):
        store = library_model.enable_columns()
        book = demo_package().classifier("GBook")
        store.conforming_values(book, "pages")
        stats = store.stats()
        assert stats["enabled"] is True
        assert stats["bulk_reads"] >= 1
        assert stats["rebuilds"] >= 1
        assert stats["bytes"] > 0
        assert stats["per_extent"]["GBook"]["rows"] == len(
            library_model.instances_of(book, exact=True))


class TestStructuralScan:
    def _strict_package(self):
        pkg = define_package("colstruct", "urn:test:colstruct")
        box = define_class(pkg, "CBox")
        item = define_class(pkg, "CItem")
        add_reference(box, "items", item, containment=True,
                      multiplicity=M_1N)
        add_reference(box, "lid", item, multiplicity=M_11)
        add_reference(box, "subboxes", box, containment=True,
                      multiplicity=M_0N)
        return pkg, box, item

    def test_scan_flags_every_structural_violator(self):
        _pkg, box_class, item_class = self._strict_package()
        root = box_class.instantiate()
        model = Model("urn:strict")
        model.add_root(root)
        good = item_class.instantiate()
        root.eget("items").append(good)
        root.eset("lid", good)                   # root is clean
        bad = box_class.instantiate()            # items empty under 1..*,
        root.eget("subboxes").append(bad)        # lid unset under 1..1

        store = model.enable_columns()
        suspects = store.scan_structural()
        violators = {
            id(e) for e in model.all_elements()
            if validate_element(e, check_invariants=False).diagnostics}
        # completeness: the bulk scan may over-approximate but must
        # never miss an element the per-object validator would flag
        assert id(bad) in violators
        assert violators <= set(suspects)
        # ...and after a repair, a rebuilt scan clears the suspect
        bad.eget("items").append(item_class.instantiate())
        bad.eset("lid", bad.eget("items")[0])
        assert id(bad) not in store.scan_structural()

    def test_clean_model_scan_bounds_revalidation(self, library_model):
        store = library_model.enable_columns()
        suspects = store.scan_structural()
        model_elements = {id(e) for e in library_model.all_elements()}
        # over-approximation is allowed, but suspects must still be
        # elements of this model
        assert set(suspects) <= model_elements


class TestColumnarSessionParity:
    """Columnar on/off must not change a single output byte."""

    @pytest.mark.parametrize("seed", range(50))
    def test_check_documents_byte_identical(self, seed):
        plain = Session(self._fresh_root(seed))
        columnar = Session(self._fresh_root(seed), columnar=True)
        assert self._doc(plain) == self._doc(columnar)
        # ...and still after an identically seeded fuzz of both models
        EditFuzzer(plain.roots[0], seed=seed).apply_random_edits(20)
        EditFuzzer(columnar.roots[0], seed=seed).apply_random_edits(20)
        assert self._doc(plain) == self._doc(columnar)

    @staticmethod
    def _fresh_root(seed):
        root = demo_generator(seed).generate(25)
        model = Model(f"urn:parity{seed}")
        model.add_root(root)
        return model

    @staticmethod
    def _doc(session):
        return json.dumps(session.check().to_json(), sort_keys=True)

    def test_session_stats_reports_columns(self, library_model):
        plain = Session(library_model)
        assert plain.stats()["model"]["columns"] == {"enabled": False}
        columnar = Session(library_model, columnar=True)
        columnar.check(["structural", "invariant"])
        stats = columnar.stats()["model"]["columns"]
        assert stats["enabled"] is True
        assert stats["extents"] > 0
