"""Shared fixtures: reference models, platforms, collaborations."""

from __future__ import annotations

import pytest

from repro.mof import (
    Attribute,
    Element,
    M_0N,
    MetaPackage,
    MInteger,
    MString,
    Reference,
)
from repro.platforms import (
    baremetal_platform,
    middleware_platform,
    posix_platform,
)
from repro.uml import ModelFactory, StateMachine
from repro.validation import Collaboration

# ---------------------------------------------------------------------------
# A tiny static metamodel used by kernel-level tests (module-level so the
# classes are created exactly once).
# ---------------------------------------------------------------------------

from kernel_fixture import (   # noqa: F401  (re-exported for fixtures)
    TEST_PKG,
    TBook,
    TChapter,
    TLibrary,
    TNamed,
)


@pytest.fixture
def library():
    lib = TLibrary(name="lib")
    b1 = TBook(name="b1", pages=10)
    b2 = TBook(name="b2", pages=20)
    lib.books.extend([b1, b2])
    return lib, b1, b2


# ---------------------------------------------------------------------------
# UML-level fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def factory():
    return ModelFactory("m")


@pytest.fixture
def cruise_model():
    """A small realistic PIM: sensor -> controller -> actuator."""
    f = ModelFactory("cruise")
    sensor = f.clazz("SpeedSensor", attrs={"speed": "Integer"},
                     is_active=True)
    controller = f.clazz("CruiseController",
                         attrs={"target": "Integer", "enabled": "Boolean"},
                         is_active=True)
    actuator = f.clazz("ThrottleActuator", attrs={"level": "Integer"},
                       is_active=True)
    f.associate(sensor, controller, name="measures", end_b="controller",
                navigable_b_to_a=True, end_a="sensor")
    f.associate(controller, actuator, name="drives", end_b="actuator",
                navigable_b_to_a=True, end_a="controller")

    sm = StateMachine(name="CruiseSM")
    controller.owned_behaviors.append(sm)
    controller.classifier_behavior = sm
    region = sm.main_region()
    initial = region.add_initial()
    off = region.add_state("Off")
    on = region.add_state("On")
    region.add_transition(initial, off)
    region.add_transition(off, on, trigger="engage",
                          effect="enabled := true; send actuator.apply()")
    region.add_transition(on, off, trigger="disengage",
                          effect="enabled := false; send actuator.release()")
    region.add_transition(on, on, trigger="tick",
                          guard="enabled = true",
                          effect="send actuator.apply()")

    act_sm = StateMachine(name="ThrottleSM")
    actuator.owned_behaviors.append(act_sm)
    actuator.classifier_behavior = act_sm
    act_region = act_sm.main_region()
    act_initial = act_region.add_initial()
    idle = act_region.add_state("Idle")
    applied = act_region.add_state("Applied")
    act_region.add_transition(act_initial, idle)
    act_region.add_transition(idle, applied, trigger="apply",
                              effect="level := level + 1")
    act_region.add_transition(applied, applied, trigger="apply",
                              effect="level := level + 1")
    act_region.add_transition(applied, idle, trigger="release",
                              effect="level := 0")
    return f


@pytest.fixture
def cruise_collaboration(cruise_model):
    """An executable configuration of the cruise PIM."""
    model = cruise_model.model
    classes = {c.name: c for c in model.all_members()
               if hasattr(c, "owned_attributes")}

    def build():
        collab = Collaboration("cruise")
        collab.create_object("ctl", classes["CruiseController"])
        collab.create_object("act", classes["ThrottleActuator"])
        collab.link("ctl", "actuator", "act")
        collab.link("act", "controller", "ctl")
        return collab
    return build


@pytest.fixture(scope="session")
def posix():
    return posix_platform()


@pytest.fixture(scope="session")
def baremetal():
    return baremetal_platform()


@pytest.fixture(scope="session")
def middleware():
    return middleware_platform()
