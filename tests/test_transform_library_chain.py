"""Tests for the transformation library (clone, flattening), chains,
gates and refinement checking."""

import pytest

from repro.mof import validate_tree
from repro.transform import (
    GateClosedError,
    GateVerdict,
    TransformationChain,
    TransformError,
    check_refinement,
    clone_transformation,
    flatten_state_machine,
    refinement_completeness_ratio,
    state_machine_to_table,
)
from repro.uml import Clazz, StateMachine, UmlElement


class TestClone:
    def test_clone_is_deep_and_detached(self, cruise_model):
        transformation = clone_transformation(UmlElement)
        result = transformation.run(cruise_model.model)
        copy = result.primary_root
        assert copy is not cruise_model.model
        assert copy.name == cruise_model.model.name
        original_size = 1 + sum(1 for _ in cruise_model.model.all_contents())
        copy_size = 1 + sum(1 for _ in copy.all_contents())
        assert copy_size == original_size
        assert validate_tree(copy).ok

    def test_clone_remaps_cross_references(self, cruise_model):
        result = clone_transformation(UmlElement).run(cruise_model.model)
        copy = result.primary_root
        controller = [c for c in copy.all_contents()
                      if getattr(c, "name", "") == "CruiseController"][0]
        target_type = controller.attribute("actuator").type
        assert target_type.name == "ThrottleActuator"
        assert target_type.root() is copy       # not the original model

    def test_clone_is_syntactic(self):
        transformation = clone_transformation(UmlElement)
        assert transformation.is_syntactic
        assert transformation.abstraction_delta == 0

    def test_mutating_clone_leaves_original(self, cruise_model):
        result = clone_transformation(UmlElement).run(cruise_model.model)
        copy = result.primary_root
        copy.name = "changed"
        assert cruise_model.model.name == "cruise"


class TestFlattening:
    @pytest.fixture
    def hierarchical(self):
        machine = StateMachine(name="hsm")
        region = machine.main_region()
        initial = region.add_initial()
        off = region.add_state("Off")
        on = region.add_state("On", entry="p := 1", exit="p := 0")
        inner = on.add_region("inner")
        inner_initial = inner.add_initial()
        low = inner.add_state("Low", entry="v := 1")
        high = inner.add_state("High", entry="v := 2", exit="cool()")
        inner.add_transition(inner_initial, low)
        inner.add_transition(low, high, trigger="up")
        inner.add_transition(high, low, trigger="down")
        region.add_transition(initial, off)
        region.add_transition(off, on, trigger="power")
        region.add_transition(on, off, trigger="kill", effect="log()")
        return machine

    def test_flat_state_names(self, hierarchical):
        flat = flatten_state_machine(hierarchical)
        names = {s.name for s in flat.main_region().states()}
        assert names == {"Off", "On_Low", "On_High"}

    def test_composite_exit_replicated_to_leaves(self, hierarchical):
        flat = flatten_state_machine(hierarchical)
        rows = state_machine_to_table(flat)
        kills = [r for r in rows if r.trigger == "kill"]
        assert {r.source for r in kills} == {"On_Low", "On_High"}
        assert all(r.target == "Off" for r in kills)
        # leaving On from High runs High's exit then On's exit then effect
        high_kill = [r for r in kills if r.source == "On_High"][0]
        assert high_kill.effect.index("cool()") \
            < high_kill.effect.index("p := 0") \
            < high_kill.effect.index("log()")

    def test_entering_composite_descends_to_initial_leaf(self,
                                                         hierarchical):
        flat = flatten_state_machine(hierarchical)
        rows = state_machine_to_table(flat)
        power = [r for r in rows if r.trigger == "power"][0]
        assert power.target == "On_Low"
        assert power.effect.index("p := 1") < power.effect.index("v := 1")

    def test_inner_transitions_keep_local_actions(self, hierarchical):
        flat = flatten_state_machine(hierarchical)
        rows = state_machine_to_table(flat)
        up = [r for r in rows if r.trigger == "up"][0]
        assert up.source == "On_Low" and up.target == "On_High"
        assert "v := 2" in up.effect
        assert "p := 1" not in up.effect        # On boundary not crossed

    def test_events_preserved(self, hierarchical):
        flat = flatten_state_machine(hierarchical)
        assert flat.events() == hierarchical.events()

    def test_flat_machine_passthrough(self):
        machine = StateMachine(name="flat")
        region = machine.main_region()
        initial = region.add_initial()
        a = region.add_state("A")
        region.add_transition(initial, a)
        flat = flatten_state_machine(machine)
        assert {s.name for s in flat.main_region().states()} == {"A"}

    def test_missing_initial_rejected(self):
        machine = StateMachine(name="broken")
        machine.main_region().add_state("A")
        with pytest.raises(TransformError):
            flatten_state_machine(machine)

    def test_final_state_lifted(self):
        machine = StateMachine(name="fin")
        region = machine.main_region()
        initial = region.add_initial()
        a = region.add_state("A")
        final = region.add_final()
        region.add_transition(initial, a)
        region.add_transition(a, final, trigger="done")
        flat = flatten_state_machine(machine)
        rows = state_machine_to_table(flat)
        assert any(r.trigger == "done" and r.target == "final"
                   for r in rows)


class TestChainsAndGates:
    def test_chain_runs_in_order(self, cruise_model):
        chain = TransformationChain("two-copies")
        chain.add_step(clone_transformation(UmlElement, "copy1"))
        chain.add_step(clone_transformation(UmlElement, "copy2"))
        outcome = chain.run(cruise_model.model)
        assert outcome.completed
        assert len(outcome.records) == 2
        assert outcome.final_roots[0].name == "cruise"

    def test_gate_blocks_when_enforced(self, cruise_model):
        chain = TransformationChain("gated")
        chain.add_step(clone_transformation(UmlElement),
                       gate=lambda roots: GateVerdict(False, ["nope"]))
        with pytest.raises(GateClosedError):
            chain.run(cruise_model.model)

    def test_gate_recorded_when_unenforced(self, cruise_model):
        chain = TransformationChain("gated")
        chain.add_step(clone_transformation(UmlElement),
                       gate=lambda roots: GateVerdict(False, ["nope"]))
        outcome = chain.run(cruise_model.model, enforce_gates=False)
        assert outcome.completed
        assert outcome.records[0].gate_verdict is not None
        assert not outcome.records[0].gate_verdict.passed

    def test_abstraction_delta_sums(self):
        chain = TransformationChain("c")
        chain.add_step(clone_transformation(UmlElement))     # delta 0
        from repro.transform import Transformation
        chain.add_step(Transformation("down", [], abstraction_delta=-1))
        assert chain.total_abstraction_delta() == -1


class TestRefinement:
    def test_clone_is_complete_refinement(self, cruise_model):
        result = clone_transformation(UmlElement).run(cruise_model.model)
        report = check_refinement(cruise_model.model, result,
                                  required_types=[Clazz])
        assert report.ok, str(report)
        assert refinement_completeness_ratio(
            cruise_model.model, result.trace, [Clazz]) == 1.0

    def test_incomplete_refinement_detected(self, cruise_model):
        from repro.transform import Transformation, rule

        @rule(Clazz, guard="name = 'SpeedSensor'")
        def partial(source, ctx):
            return Clazz(name=source.name)
        result = Transformation("partial", [partial]).run(
            cruise_model.model)
        report = check_refinement(cruise_model.model, result,
                                  required_types=[Clazz])
        assert not report.ok
        ratio = refinement_completeness_ratio(
            cruise_model.model, result.trace, [Clazz])
        assert 0 < ratio < 1

    def test_name_preservation_warning(self, cruise_model):
        from repro.transform import Transformation, rule

        @rule(Clazz)
        def rename(source, ctx):
            return Clazz(name="xyz")
        result = Transformation("rename", [rename]).run(cruise_model.model)
        report = check_refinement(cruise_model.model, result)
        assert any(d.code == "refine-name" for d in report.warnings)
