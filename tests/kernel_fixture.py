"""Shared static test metamodel (kernel-level tests).

Lives outside conftest so that test modules can import it by name even
when several test roots (tests/, benchmarks/) are collected together.
"""

from repro.mof import (
    Attribute,
    Element,
    M_0N,
    MetaPackage,
    MInteger,
    MString,
    Reference,
)

TEST_PKG = MetaPackage("testmm", uri="urn:test:mm")


class TNamed(Element):
    _mof_package = TEST_PKG
    _mof_abstract = True
    name = Attribute(MString)


class TLibrary(TNamed):
    books = Reference("TBook", containment=True, multiplicity=M_0N,
                      opposite="library")
    featured = Reference("TBook")


class TBook(TNamed):
    library = Reference(TLibrary)
    pages = Attribute(MInteger, 100)
    tags = Attribute(MString, multiplicity=M_0N)
    sequel = Reference("TBook", opposite="prequel")
    prequel = Reference("TBook")
    chapters = Reference("TChapter", containment=True, multiplicity=M_0N,
                         opposite="book")


class TChapter(TNamed):
    book = Reference(TBook)


