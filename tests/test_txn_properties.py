"""Property tests: rollback restores deep equality on generated models.

The property — for ANY model and ANY legal edit sequence, a rolled-back
transaction leaves the model ``repro.mof.compare``-identical to its
pre-transaction snapshot — is checked across 200 seeded random models
(demo metamodel and the curated UML slice) and three fuzz profiles,
including the delete/move-heavy ``destructive`` profile whose inverses
(subtree resurrection, position restoration in ordered lists) are the
hardest to replay.  Snapshots are JSON round-trip clones, so equality is
structural, not aliasing.  Everything is seeded: a failure message names
the (metamodel, profile, seed) triple that replays it.
"""

from __future__ import annotations

import pytest

from repro.generate import EditFuzzer, demo_generator, demo_package, \
    uml_generator
from repro.mof import compare, transaction
from repro.mof.repository import Model
from repro.xmi import read_json, write_json


class Abort(RuntimeError):
    """The deliberate failure that forces the rollback under test."""


def _uml_packages():
    from repro.uml import UML
    return [UML]


CONFIGS = []
# 200 models total: 160 demo-metamodel cases across the three profiles
# (the demo package's opposite pairs + ordered containments are where
# inverse replay can go wrong), 40 over the curated UML slice.
for profile, demo_count in (("default", 60), ("destructive", 60),
                            ("shuffle", 40)):
    CONFIGS += [("demo", profile, seed) for seed in range(demo_count)]
CONFIGS += [("uml", "destructive", seed) for seed in range(20)]
CONFIGS += [("uml", "default", seed) for seed in range(20)]


def _build(metamodel: str, seed: int):
    if metamodel == "demo":
        generator = demo_generator(seed)
        packages = [demo_package()]
    else:
        generator = uml_generator(seed)
        packages = _uml_packages()
    root = generator.generate(12 + (seed % 25))
    return generator, packages, root


def _snapshot(root, packages):
    model = Model("urn:test:snapshot")
    model.add_root(root)
    try:
        return read_json(write_json(model), packages).roots[0]
    finally:
        model.remove_root(root)


@pytest.mark.parametrize("metamodel,profile,seed", CONFIGS)
def test_rollback_restores_snapshot(metamodel, profile, seed):
    generator, packages, root = _build(metamodel, seed)
    snapshot = _snapshot(root, packages)
    fuzzer = EditFuzzer(root, seed=seed * 31 + 7, generator=generator,
                        profile=profile)
    edits = []
    with pytest.raises(Abort):
        with transaction():
            edits = fuzzer.apply_random_edits(30)
            raise Abort
    result = compare(snapshot, root)
    assert result.identical, (
        f"rollback failed to restore model "
        f"({metamodel}/{profile}/seed={seed}) after edits:\n  "
        + "\n  ".join(edits) + f"\n{result}")


@pytest.mark.parametrize("seed", range(10))
def test_commit_then_rollback_only_undoes_second_transaction(seed):
    """Rollback unwinds to the latest transaction boundary, not to the
    beginning of time: a committed burst survives a later abort.

    The committed mid-state may contain things JSON serialization cannot
    express (explicitly nulled attributes, references dangling at
    deleted elements), so both sides of the equality go through the same
    round-trip lens rather than comparing a clone against the live tree.
    """
    generator, packages, root = _build("demo", seed)
    fuzzer = EditFuzzer(root, seed=seed, generator=generator,
                        profile="destructive")
    with transaction():
        fuzzer.apply_random_edits(15)
    committed = _snapshot(root, packages)
    with pytest.raises(Abort):
        with transaction():
            fuzzer.apply_random_edits(15)
            raise Abort
    restored = _snapshot(root, packages)
    result = compare(committed, restored)
    assert result.identical, str(result)


@pytest.mark.parametrize("seed", range(10))
def test_savepoint_fuzz(seed):
    """Partial rollback to a mid-sequence savepoint restores the state
    at the savepoint, while keeping everything before it."""
    generator, packages, root = _build("demo", seed + 100)
    fuzzer = EditFuzzer(root, seed=seed, generator=generator,
                        profile="shuffle")
    with transaction() as txn:
        fuzzer.apply_random_edits(10)
        at_savepoint = _snapshot(root, packages)
        sp = txn.savepoint()
        fuzzer.apply_random_edits(20)
        txn.rollback_to(sp)
        restored = _snapshot(root, packages)
        result = compare(at_savepoint, restored)
        assert result.identical, str(result)
