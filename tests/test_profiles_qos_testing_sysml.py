"""Tests for the QoS/FT, Testing, SysML-lite and ETSI profiles."""

import pytest

from repro.profiles import (
    FT_REPLICATED,
    PROTOCOL_LAYER,
    QOS_OFFERED,
    QOS_REQUIRED,
    QoSContract,
    TestCase,
    TestContext,
    Verdict,
    add_requirement,
    availability_with_replication,
    build_pdu,
    build_protocol_stack,
    check_contracts,
    derive,
    effective_availability,
    estimate_path_latency_ms,
    satisfy,
    stack_layers,
    traceability_matrix,
    verify,
    worst,
)
from repro.uml import ModelFactory
from repro.validation import Collaboration, Scenario


class TestQoSContracts:
    def test_satisfaction(self):
        offered = QoSContract(latency_ms=5, availability=0.999)
        required = QoSContract(latency_ms=10, availability=0.99)
        assert offered.satisfies(required)

    def test_violations_listed(self):
        offered = QoSContract(latency_ms=20, reliability=0.8)
        required = QoSContract(latency_ms=10, reliability=0.9,
                               throughput_ops=100)
        problems = offered.violations(required)
        assert len(problems) == 3        # latency, reliability, throughput

    def test_unconstrained_always_ok(self):
        assert QoSContract().satisfies(QoSContract())

    def test_contract_checks_over_associations(self, factory):
        client = factory.clazz("Client")
        server = factory.clazz("Server")
        QOS_REQUIRED.apply(client, latency_ms=10.0)
        QOS_OFFERED.apply(server, latency_ms=50.0)     # too slow
        factory.associate(client, server, end_b="server")
        checks = check_contracts(factory.model)
        assert len(checks) == 1
        assert not checks[0].passed
        assert "latency" in checks[0].problems[0]

    def test_availability_hot_replication(self):
        assert availability_with_replication(0.9, 1) == pytest.approx(0.9)
        assert availability_with_replication(0.9, 3, "hot") == \
            pytest.approx(1 - 0.1 ** 3)

    def test_availability_styles_ordered(self):
        hot = availability_with_replication(0.9, 2, "hot")
        warm = availability_with_replication(0.9, 2, "warm")
        cold = availability_with_replication(0.9, 2, "cold")
        assert hot > warm > cold > 0.9

    def test_availability_validation(self):
        with pytest.raises(ValueError):
            availability_with_replication(1.5, 2)
        with pytest.raises(ValueError):
            availability_with_replication(0.9, 0)
        with pytest.raises(ValueError):
            availability_with_replication(0.9, 2, "lukewarm")

    def test_effective_availability_via_stereotypes(self, factory):
        service = factory.clazz("Svc")
        QOS_OFFERED.apply(service, availability=0.9)
        FT_REPLICATED.apply(service, replicas=2, style="hot")
        assert effective_availability(service) == pytest.approx(0.99)

    def test_path_latency_estimate(self, posix):
        latency = estimate_path_latency_ms(posix, hops=4,
                                           per_hop_processing_ms=0.1)
        assert latency == pytest.approx(4 * (0.015 + 0.1))


class TestTestingProfile:
    def test_verdict_lattice(self):
        assert worst([Verdict.PASS, Verdict.FAIL]) is Verdict.FAIL
        assert worst([Verdict.PASS, Verdict.ERROR]) is Verdict.ERROR
        assert worst([Verdict.PASS]) is Verdict.PASS
        assert worst([]) is Verdict.INCONCLUSIVE

    def test_context_runs_fresh_suts(self, cruise_collaboration):
        context = TestContext("CruiseTests", cruise_collaboration)
        ok = Scenario("ok", [("ctl", "act", "apply")],
                      stimuli=[("ctl", "engage")])
        context.add_scenario("engage-works", ok)
        context.add_scenario(
            "engage-works-again", ok,
            post_condition=lambda c: c.attribute("act", "level") == 1)
        report = context.run_all()
        assert report.verdict is Verdict.PASS
        assert report.counts() == {"pass": 2}
        assert "PASS" in report.summary()

    def test_failed_scenario_gives_fail(self, cruise_collaboration):
        context = TestContext("T", cruise_collaboration)
        context.add_scenario("bad", Scenario(
            "bad", [("ctl", "act", "explode")],
            stimuli=[("ctl", "engage")]))
        report = context.run_all()
        assert report.verdict is Verdict.FAIL

    def test_post_condition_fail(self, cruise_collaboration):
        context = TestContext("T", cruise_collaboration)
        context.add_scenario(
            "post", Scenario("s", [], stimuli=[("ctl", "engage")]),
            post_condition=lambda c: c.attribute("act", "level") == 99)
        assert context.run_all().verdict is Verdict.FAIL

    def test_crashing_post_condition_gives_error(self,
                                                 cruise_collaboration):
        context = TestContext("T", cruise_collaboration)
        context.add_scenario(
            "boom", Scenario("s", []),
            post_condition=lambda c: 1 / 0)
        assert context.run_all().verdict is Verdict.ERROR


class TestSysml:
    def test_traceability_full_coverage(self, factory):
        pkg = factory.package("reqs")
        requirement = add_requirement(pkg, "FastBoot", "R1",
                                      "boots in 2s", risk="high")
        impl = factory.clazz("BootLoader")
        test = factory.clazz("BootTest")
        satisfy(pkg, impl, requirement)
        verify(pkg, test, requirement)
        matrix = traceability_matrix(factory.model)
        assert matrix.satisfaction_coverage == 1.0
        assert matrix.verification_coverage == 1.0
        row = matrix.row("R1")
        assert row.satisfied_by == ["BootLoader"]
        assert row.verified_by == ["BootTest"]

    def test_uncovered_requirements_reported(self, factory):
        pkg = factory.package("reqs")
        add_requirement(pkg, "Orphan", "R9", "nobody implements this")
        matrix = traceability_matrix(factory.model)
        assert matrix.satisfaction_coverage == 0.0
        assert matrix.unsatisfied()[0].req_id == "R9"
        assert "satisfied=0%" in matrix.summary()

    def test_derive_links(self, factory):
        pkg = factory.package("reqs")
        parent = add_requirement(pkg, "System", "R1", "top level")
        child = add_requirement(pkg, "Subsystem", "R1.1", "derived")
        derive(pkg, child, parent)
        matrix = traceability_matrix(factory.model)
        assert matrix.row("R1.1").derived_from == ["System"]


class TestEtsiStack:
    def test_stack_construction(self):
        factory = ModelFactory("proto")
        layers = build_protocol_stack(factory, ["App", "Tp", "Mac"])
        assert [l.name for l in layers] == ["App", "Tp", "Mac"]
        assert [l.name for l in stack_layers(factory.model)] == \
            ["App", "Tp", "Mac"]
        assert PROTOCOL_LAYER.value_on(layers[0], "layer_index") == 3
        # adjacent layers are linked both ways
        assert layers[0].attribute("lower").type is layers[1]
        assert layers[1].attribute("upper").type is layers[0]

    def test_stack_needs_layers(self):
        factory = ModelFactory("proto")
        with pytest.raises(ValueError):
            build_protocol_stack(factory, [])

    def test_stack_executes_handshake(self):
        factory = ModelFactory("proto")
        layers = build_protocol_stack(factory, ["App", "Tp", "Mac"])
        collab = Collaboration("stack")
        collab.create_object("app", layers[0])
        collab.create_object("tp", layers[1])
        collab.create_object("mac", layers[2])
        collab.link("app", "lower", "tp")
        collab.link("tp", "upper", "app")
        collab.link("tp", "lower", "mac")
        collab.link("mac", "upper", "tp")
        collab.start()
        collab.send("app", "tx_request")
        collab.run()
        assert collab.attribute("mac", "tx_count") == 1
        assert collab.attribute("app", "rx_count") == 1
        messages = collab.messages()
        assert ("tp", "mac", "tx_request") in messages
        assert ("tp", "app", "tx_confirm") in messages

    def test_pdu_builder(self):
        factory = ModelFactory("proto")
        pdu = build_pdu(factory, "DataFrame", header_bytes=8,
                        fields=[("seq", "Integer"), ("payload", "String")])
        assert pdu.attribute("seq").type.name == "Integer"
        from repro.profiles import PDU
        assert PDU.value_on(pdu, "header_bytes") == 8
