"""Deprecated shim — the generators are now :mod:`repro.generate`.

``tests/modelgen.py`` began life as shared test infrastructure; the
generators were promoted to the first-class subsystem
:mod:`repro.generate` (random generation, constraint-guided repair,
coverage-directed corpora).  This module re-exports the migrated names
so external imports keep working, with a :class:`DeprecationWarning` —
in-repo suites import :mod:`repro.generate` directly.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "importing 'modelgen' from tests/ is deprecated; the generators "
    "moved to repro.generate (e.g. `from repro.generate import "
    "ModelGenerator, EditFuzzer, demo_generator`)",
    DeprecationWarning, stacklevel=2)

from repro.generate.random import (  # noqa: E402,F401
    _MUTATION_ERRORS,
    _resolve_metaclass,
    UML_SAFE_CLASSES,
    EditFuzzer,
    ModelGenerator,
    demo_generator,
    demo_package,
    uml_generator,
)
