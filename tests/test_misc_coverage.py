"""Edge-case tests for corners the feature-level suites don't reach:
notifications, builders, the code writer, features, environments."""

import pytest

from repro.codegen import CodeWriter
from repro.mof import (
    ChangeKind,
    ChangeRecorder,
    MetamodelError,
    MString,
    PackageBuilder,
)
from repro.ocl import Environment, evaluate
from repro.uml import (
    Comment,
    Interaction,
    Message,
    ModelFactory,
    Operation,
    Parameter,
    Property,
)
from kernel_fixture import TBook, TLibrary


class TestNotifications:
    def test_move_notification(self, library):
        lib, b1, b2 = library
        recorder = ChangeRecorder()
        lib.observe(recorder)
        lib.books.move(0, b2)
        kinds = [n.kind for n in recorder.notifications]
        assert ChangeKind.MOVE in kinds
        move = [n for n in recorder.notifications
                if n.kind is ChangeKind.MOVE][0]
        assert move.position == 0

    def test_recorder_clear_and_len(self):
        book = TBook()
        recorder = ChangeRecorder()
        book.observe(recorder)
        book.pages = 5
        assert len(recorder) == 1
        recorder.clear()
        assert len(recorder) == 0

    def test_notification_str(self):
        book = TBook()
        recorder = ChangeRecorder()
        book.observe(recorder)
        book.pages = 5
        assert "pages" in str(recorder.notifications[0])


class TestBuilderEdges:
    def test_unknown_superclass_string(self):
        builder = PackageBuilder("b1")
        with pytest.raises(MetamodelError):
            builder.clazz("Child", superclasses=["Missing"])

    def test_contains_shortcut(self):
        pkg = (PackageBuilder("b2")
               .clazz("Box").attr("name", MString)
               .contains("parts", "Part")
               .clazz("Part").attr("name", MString)
               .build())
        box = pkg.classifier("Box")()
        part = pkg.classifier("Part")(name="p")
        box.parts.append(part)
        assert part.container is box

    def test_chained_without_done(self):
        pkg = (PackageBuilder("b3")
               .clazz("A").attr("name", MString)
               .clazz("B", superclasses=["A"])
               .build())
        assert pkg.classifier("B").conforms_to(pkg.classifier("A"))

    def test_enum_from_class_builder(self):
        pkg = (PackageBuilder("b4")
               .clazz("X").enum("E", ["a", "b"])
               .build())
        assert pkg.classifier("E").literals == ("a", "b")


class TestCodeWriter:
    def test_blocks_and_indent(self):
        writer = CodeWriter()
        with writer.block("if (x) {"):
            writer.line("y = 1;")
            with writer.block("while (z) {"):
                writer.line("z--;")
        text = writer.text()
        assert "    y = 1;" in text
        assert "        z--;" in text
        assert text.count("}") == 2

    def test_dedent_below_zero(self):
        writer = CodeWriter()
        with pytest.raises(ValueError):
            writer.dedent()

    def test_blank_collapses(self):
        writer = CodeWriter()
        writer.line("a")
        writer.blank()
        writer.blank()
        writer.line("b")
        assert writer.text() == "a\n\nb\n"

    def test_lines_helper(self):
        writer = CodeWriter()
        writer.lines(["a", "b"])
        assert len(writer) == 2


class TestUmlFeatureDetails:
    def test_parameter_directions(self, factory):
        cls = factory.clazz("S")
        op = Operation(name="f")
        cls.owned_operations.append(op)
        op.add_parameter("x", factory.integer, direction="in")
        op.add_parameter("y", factory.integer, direction="out")
        op.add_parameter("r", factory.integer, direction="return")
        assert [p.name for p in op.in_parameters()] == ["x"]
        assert op.return_parameter().name == "r"

    def test_multiplicity_strings(self):
        prop = Property(name="p", lower=0, upper=-1)
        assert prop.multiplicity_str() == "0..*"
        assert prop.is_many
        prop2 = Property(name="q", lower=1, upper=1)
        assert prop2.multiplicity_str() == "1"
        assert not prop2.is_many

    def test_visibility_enum(self):
        prop = Property(name="p")
        assert prop.visibility == "private"
        prop.visibility = "public"
        from repro.mof import TypeConformanceError
        with pytest.raises(TypeConformanceError):
            prop.visibility = "secret"

    def test_comments_owned(self, factory):
        cls = factory.clazz("C")
        note = Comment(body="important")
        cls.comments.append(note)
        assert note.container is cls

    def test_message_label(self):
        message = Message(name="ping")
        message.arguments = ["1", "x"]
        assert message.label() == "ping(1, x)"

    def test_interaction_lifeline_lookup(self, factory):
        interaction = Interaction(name="ix")
        cls = factory.clazz("C")
        interaction.add_lifeline("a", cls)
        assert interaction.lifeline("a").represents is cls
        assert interaction.lifeline("zz") is None


class TestOclEnvironment:
    def test_register_type_explicit(self):
        env = Environment()
        env.register_type("Book", TBook._meta)
        env.define("self", TBook(name="t"))
        assert evaluate("self.oclIsKindOf(Book)", env) is True

    def test_child_sees_parent_bindings(self):
        env = Environment()
        env.define("x", 41)
        child = env.child()
        child.define("y", 1)
        assert evaluate("x + y", child) == 42

    def test_shadowing_in_child(self):
        env = Environment()
        env.define("x", 1)
        child = env.child()
        child.define("x", 2)
        assert evaluate("x", child) == 2
        assert evaluate("x", env) == 1


class TestReprs:
    def test_metaclass_and_feature_reprs(self):
        assert "TBook" in repr(TBook._meta)
        assert "pages" in repr(TBook._meta.feature("pages"))

    def test_featurelist_repr(self):
        lib = TLibrary()
        assert "books" in repr(lib.books)

    def test_multiplicity_in_feature_repr(self):
        feature = TLibrary._meta.feature("books")
        assert "0..*" in repr(feature)
