"""Tests for the state machine metamodel."""

import pytest

from repro.uml import FinalState, Pseudostate, Region, State, StateMachine


@pytest.fixture
def traffic_light():
    machine = StateMachine(name="Light")
    region = machine.main_region()
    initial = region.add_initial()
    red = region.add_state("Red", entry="stop := true")
    green = region.add_state("Green", exit="log()")
    yellow = region.add_state("Yellow")
    region.add_transition(initial, red)
    region.add_transition(red, green, trigger="go")
    region.add_transition(green, yellow, trigger="caution")
    region.add_transition(yellow, red, trigger="stop")
    return machine, region, red, green, yellow


class TestStructure:
    def test_main_region_created_on_demand(self):
        machine = StateMachine(name="m")
        region = machine.main_region()
        assert machine.regions[0] is region
        assert machine.main_region() is region      # idempotent

    def test_vertices_and_transitions(self, traffic_light):
        machine, region, red, green, yellow = traffic_light
        names = {v.name for v in machine.all_vertices()}
        assert {"Red", "Green", "Yellow", "initial"} <= names
        assert len(machine.all_transitions()) == 4

    def test_outgoing_incoming(self, traffic_light):
        _, _, red, green, _ = traffic_light
        assert [t.target.name for t in red.outgoing()] == ["Green"]
        assert [t.source.name for t in red.incoming()] == ["initial",
                                                           "Yellow"]

    def test_events_sorted_unique(self, traffic_light):
        machine, *_ = traffic_light
        assert machine.events() == ["caution", "go", "stop"]

    def test_find_state(self, traffic_light):
        machine, _, red, *_ = traffic_light
        assert machine.find_state("Red") is red
        assert machine.find_state("Blue") is None

    def test_initial_pseudostate(self, traffic_light):
        _, region, *_ = traffic_light
        initial = region.initial_pseudostate()
        assert initial is not None and initial.kind == "initial"

    def test_transition_label(self, traffic_light):
        _, region, red, *_ = traffic_light
        transition = red.outgoing()[0]
        transition.guard = "x > 0"
        transition.effect = "y := 1"
        assert transition.label() == "go[x > 0]/y := 1"

    def test_completion_transition(self):
        machine = StateMachine(name="m")
        region = machine.main_region()
        a = region.add_state("A")
        b = region.add_state("B")
        t = region.add_transition(a, b)
        assert t.is_completion


class TestHierarchy:
    def test_composite_states(self):
        machine = StateMachine(name="hsm")
        region = machine.main_region()
        on = region.add_state("On")
        inner = on.add_region("inner")
        slow = inner.add_state("Slow")
        fast = inner.add_state("Fast")
        assert on.is_composite
        assert {s.name for s in on.all_substates()} == {"Slow", "Fast"}
        assert {v.name for v in machine.all_vertices()} >= {"On", "Slow",
                                                            "Fast"}

    def test_nested_transitions_collected(self):
        machine = StateMachine(name="hsm")
        region = machine.main_region()
        on = region.add_state("On")
        inner = on.add_region("inner")
        s1, s2 = inner.add_state("S1"), inner.add_state("S2")
        inner.add_transition(s1, s2, trigger="x")
        assert len(machine.all_transitions()) == 1

    def test_vertex_lookup_in_region(self):
        region = Region(name="r")
        s = region.add_state("S")
        assert region.vertex("S") is s
        assert region.vertex("T") is None

    def test_states_excludes_pseudostates(self):
        region = Region(name="r")
        region.add_initial()
        region.add_state("A")
        region.add_final()
        assert [s.name for s in region.states()] == ["A"]

    def test_choice_pseudostate(self):
        region = Region(name="r")
        choice = region.add_choice("c")
        assert choice.kind == "choice"
