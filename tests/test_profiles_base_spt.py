"""Tests for the profile machinery and the SPT schedulability profile."""

import math

import pytest

from repro.mof import MInteger, MString
from repro.profiles import (
    Profile,
    ProfileError,
    SA_SCHEDULABLE,
    SchedulabilityReport,
    Stereotype,
    Task,
    analyze_model,
    analyze_tasks,
    applications_of,
    has_stereotype,
    liu_layland_bound,
    rate_monotonic_priorities,
    response_time_analysis,
    stereotypes_of,
    tasks_from_model,
    total_utilization,
    utilization_test,
)
from repro.uml import Clazz, Package


class TestProfileMachinery:
    def test_apply_and_query(self, factory):
        profile = Profile("P")
        marker = profile.define("Marker", Clazz).tag("weight", MInteger, 1)
        cls = factory.clazz("C")
        application = marker.apply(cls, weight=5)
        assert marker.is_applied_to(cls)
        assert marker.value_on(cls, "weight") == 5
        assert application["weight"] == 5
        assert has_stereotype(cls, "Marker")
        assert stereotypes_of(cls) == [marker]

    def test_default_tag_values(self, factory):
        profile = Profile("P2")
        st = profile.define("S", Clazz).tag("mode", MString, "auto")
        cls = factory.clazz("C")
        st.apply(cls)
        assert st.value_on(cls, "mode") == "auto"

    def test_wrong_metaclass_rejected(self, factory):
        profile = Profile("P3")
        st = profile.define("OnlyPackages", Package)
        cls = factory.clazz("C")
        with pytest.raises(ProfileError):
            st.apply(cls)

    def test_bad_tag_type_rejected(self, factory):
        profile = Profile("P4")
        st = profile.define("S", Clazz).tag("n", MInteger)
        with pytest.raises(ProfileError):
            st.apply(factory.clazz("C"), n="many")

    def test_unknown_tag_rejected(self, factory):
        profile = Profile("P5")
        st = profile.define("S", Clazz)
        with pytest.raises(ProfileError):
            st.apply(factory.clazz("C"), bogus=1)

    def test_required_tag_enforced(self, factory):
        profile = Profile("P6")
        st = profile.define("S", Clazz).tag("must", MInteger,
                                            required=True)
        with pytest.raises(ProfileError):
            st.apply(factory.clazz("C"))

    def test_duplicate_stereotype_name_rejected(self):
        profile = Profile("P7")
        profile.define("S", Clazz)
        with pytest.raises(ProfileError):
            profile.define("S", Clazz)

    def test_applied_elements_scan(self, factory):
        profile = Profile("P8")
        st = profile.define("S", Clazz)
        one = factory.clazz("One")
        factory.clazz("Two")
        st.apply(one)
        found = profile.applied_elements(factory.model, "S")
        assert found == [one]

    def test_application_set_validates(self, factory):
        profile = Profile("P9")
        st = profile.define("S", Clazz).tag("n", MInteger, 0)
        application = st.apply(factory.clazz("C"))
        application.set("n", 9)
        assert application.get("n") == 9
        with pytest.raises(ProfileError):
            application.set("n", "x")
        with pytest.raises(ProfileError):
            application.set("zz", 1)


class TestTaskModel:
    def test_defaults_and_validation(self):
        task = Task("t", period_ms=10, wcet_ms=2)
        assert task.deadline_ms == 10
        assert task.utilization == 0.2
        with pytest.raises(ValueError):
            Task("bad", period_ms=0, wcet_ms=1)
        with pytest.raises(ValueError):
            Task("bad", period_ms=10, wcet_ms=-1)

    def test_rate_monotonic_priorities(self):
        tasks = [Task("slow", 100, 1), Task("fast", 10, 1),
                 Task("mid", 50, 1)]
        rate_monotonic_priorities(tasks)
        by_name = {t.name: t.priority for t in tasks}
        assert by_name["fast"] > by_name["mid"] > by_name["slow"]

    def test_explicit_priorities_kept(self):
        tasks = [Task("a", 10, 1, priority=1), Task("b", 100, 1)]
        rate_monotonic_priorities(tasks)
        assert tasks[0].priority == 1       # untouched

    def test_liu_layland_bound(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(0) == 0.0
        # monotonically decreasing toward ln 2
        assert liu_layland_bound(100) > math.log(2) - 1e-9

    def test_utilization_test_trichotomy(self):
        assert utilization_test([Task("a", 10, 1)]) is True
        assert utilization_test([Task("a", 10, 9),
                                 Task("b", 10, 2)]) is False
        # between bound and 1.0: inconclusive
        assert utilization_test([Task("a", 10, 4.5),
                                 Task("b", 10, 4.5)]) is None


class TestResponseTimeAnalysis:
    def test_classic_example(self):
        """Buttazzo-style example with known response times."""
        tasks = [Task("t1", period_ms=4, wcet_ms=1),
                 Task("t2", period_ms=6, wcet_ms=2),
                 Task("t3", period_ms=12, wcet_ms=3)]
        analyses = {a.task.name: a for a in response_time_analysis(tasks)}
        assert analyses["t1"].response_ms == 1
        assert analyses["t2"].response_ms == 3
        # t3: 3 + ceil(R/4)*1 + ceil(R/6)*2 -> fixed point 10
        assert analyses["t3"].response_ms == 10
        assert all(a.schedulable for a in analyses.values())

    def test_unschedulable_detected(self):
        tasks = [Task("a", 10, 6), Task("b", 10, 6)]
        report = analyze_tasks(tasks)
        assert not report.schedulable
        assert report.total_utilization == pytest.approx(1.2)

    def test_blocking_term_increases_response(self):
        free = response_time_analysis(
            [Task("a", 10, 2), Task("b", 20, 3)])
        blocked = response_time_analysis(
            [Task("a", 10, 2, blocking_ms=4), Task("b", 20, 3)])
        assert blocked[0].response_ms == free[0].response_ms + 4

    def test_deadline_shorter_than_period(self):
        task = Task("a", period_ms=10, wcet_ms=3, deadline_ms=2)
        report = analyze_tasks([task])
        assert not report.schedulable       # R=3 > D=2

    def test_report_accessors(self):
        report = analyze_tasks([Task("a", 10, 1)])
        assert report.row("a").schedulable
        with pytest.raises(KeyError):
            report.row("zz")
        assert "SCHEDULABLE" in report.summary()


class TestModelIntegration:
    def test_tasks_from_stereotypes(self, factory):
        cls = factory.clazz("Pump", is_active=True)
        SA_SCHEDULABLE.apply(cls, sa_period_ms=50.0, sa_wcet_ms=5.0,
                             sa_blocking_ms=1.0)
        tasks = tasks_from_model(factory.model)
        assert len(tasks) == 1
        assert tasks[0].name == "Pump"
        assert tasks[0].blocking_ms == 1.0

    def test_analyze_model_end_to_end(self, factory):
        for name, period, wcet in (("Fast", 10.0, 2.0),
                                   ("Slow", 100.0, 30.0)):
            cls = factory.clazz(name, is_active=True)
            SA_SCHEDULABLE.apply(cls, sa_period_ms=period,
                                 sa_wcet_ms=wcet)
        report = analyze_model(factory.model)
        assert isinstance(report, SchedulabilityReport)
        assert report.schedulable

    def test_analyze_model_requires_annotations(self, factory):
        factory.clazz("Plain")
        with pytest.raises(ProfileError):
            analyze_model(factory.model)
