"""Tests for the discrete-event (timed) simulator."""

import pytest

from repro.platforms import middleware_platform, posix_platform
from repro.profiles import build_protocol_stack
from repro.uml import ModelFactory
from repro.validation import TimedCollaboration, measure_offered_latency


def build_timed_stack(platform):
    factory = ModelFactory("proto")
    layers = build_protocol_stack(factory, ["App", "Tp", "Mac"])
    collab = TimedCollaboration("stack", platform=platform,
                                processing_ms=0.01)
    names = ["app", "tp", "mac"]
    for name, layer in zip(names, layers):
        collab.create_object(name, layer)
    for upper, lower in zip(names, names[1:]):
        collab.link(upper, "lower", lower)
        collab.link(lower, "upper", upper)
    return collab


class TestClockAndDelivery:
    def test_clock_advances_with_latency(self, posix):
        collab = build_timed_stack(posix)
        collab.start()
        collab.send("app", "tx_request")
        collab.run()
        assert collab.now_ms > 0
        assert collab.attribute("mac", "tx_count") == 1
        assert collab.attribute("app", "rx_count") == 1

    def test_timings_recorded(self, posix):
        collab = build_timed_stack(posix)
        collab.start()
        collab.send("app", "tx_request")
        collab.run()
        stats = collab.latency_stats()
        assert stats["count"] >= 4
        # posix mqueue latency 15us=0.015ms + processing 0.01
        assert stats["min_ms"] == pytest.approx(0.025, abs=1e-6)

    def test_path_latency_end_to_end(self, posix):
        collab = build_timed_stack(posix)
        latency = measure_offered_latency(
            collab, ("app", "tx_request"), "tx_request", "rx_indication")
        assert latency is not None
        # request descends two hops, confirm+indication come back up
        assert latency >= 3 * collab.latency_between("app", "tp")

    def test_platforms_differ_in_latency(self, posix, middleware):
        fast = measure_offered_latency(
            build_timed_stack(posix),
            ("app", "tx_request"), "tx_request", "rx_indication")
        slow = measure_offered_latency(
            build_timed_stack(middleware),
            ("app", "tx_request"), "tx_request", "rx_indication")
        assert slow > 10 * fast       # topic bus 0.5ms vs mqueue 0.015ms

    def test_link_override(self, posix):
        collab = build_timed_stack(posix)
        collab.set_link_latency("app", "tp", 100.0)
        collab.start()
        collab.send("app", "tx_request")
        collab.run()
        first_hop = [t for t in collab.timings
                     if t.sender == "app" and t.receiver == "tp"][0]
        assert first_hop.latency_ms == pytest.approx(100.01)

    def test_scheduled_stimuli_ordered(self, posix):
        collab = build_timed_stack(posix)
        collab.start()
        collab.send_at(5.0, "app", "tx_request")
        collab.send_at(1.0, "app", "tx_request")
        collab.run()
        assert collab.attribute("app", "tx_count") == 2
        assert collab.now_ms >= 5.0

    def test_until_horizon(self, posix):
        collab = build_timed_stack(posix)
        collab.start()
        collab.send_at(50.0, "app", "tx_request")
        collab.run(until_ms=10.0)
        assert collab.attribute("app", "tx_count") == 0
        collab.run()
        assert collab.attribute("app", "tx_count") == 1

    def test_no_timings_empty_stats(self, posix):
        collab = build_timed_stack(posix)
        assert collab.latency_stats()["count"] == 0
        assert collab.path_latency_ms("a", "b") is None
