"""Fault injection: deliberately broken models and configurations must be
*caught by some layer of the test stack* — never silently accepted.

Each injection targets one layer the paper says must exist (structure,
well-formedness, scenarios, model checking, refinement), and the test
asserts that exactly that safety net fires.
"""

import pytest

from repro.mof import validate_tree
from repro.platforms import PIM_TO_PSM
from repro.transform import check_refinement
from repro.uml import Clazz, run_wellformed_rules
from repro.validation import Scenario, check_collaboration

ENGAGE_SCENARIO = Scenario(
    "engage", [("ctl", "act", "apply")], stimuli=[("ctl", "engage")])


class TestBehaviouralFaults:
    def test_dropped_link_caught_by_scenario(self, cruise_collaboration):
        collab = cruise_collaboration()
        del collab.objects["ctl"].links["actuator"]
        result = ENGAGE_SCENARIO.run(collab)
        assert not result.passed
        lost = [e for e in collab.trace if e.kind == "send-lost"]
        assert lost

    def test_removed_transition_caught_by_scenario(self, cruise_model,
                                                   cruise_collaboration):
        controller = cruise_model.model.member("CruiseController")
        machine = controller.state_machine()
        engage = [t for t in machine.all_transitions()
                  if t.trigger == "engage"][0]
        engage.delete()
        result = ENGAGE_SCENARIO.run(cruise_collaboration())
        assert not result.passed

    def test_forgotten_release_caught_by_model_checker(
            self, cruise_model, cruise_collaboration):
        controller = cruise_model.model.member("CruiseController")
        machine = controller.state_machine()
        disengage = [t for t in machine.all_transitions()
                     if t.trigger == "disengage"][0]
        disengage.effect = "enabled := false"   # fault: throttle left on
        collab = cruise_collaboration()
        result = check_collaboration(
            collab, [("ctl", "engage"), ("ctl", "disengage")],
            invariants={
                "no-throttle-while-disengaged":
                    lambda c: not (c.attribute("ctl", "enabled") is False
                                   and c.attribute("act", "level") > 0)})
        assert not result.ok
        violation = result.violations[0]
        assert violation.kind == "invariant"
        assert violation.trace            # counterexample provided

    def test_corrupted_effect_caught_at_dispatch(self, cruise_model,
                                                 cruise_collaboration):
        from repro.validation import SimulationError
        controller = cruise_model.model.member("CruiseController")
        machine = controller.state_machine()
        engage = [t for t in machine.all_transitions()
                  if t.trigger == "engage"][0]
        engage.effect = "enabled := undefined_name + 1"
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        with pytest.raises(SimulationError):
            collab.run()


class TestStructuralFaults:
    def test_broken_opposite_caught_by_validator(self, cruise_model):
        controller = cruise_model.model.member("CruiseController")
        prop = controller.attribute("actuator")
        # sabotage the inverse pairing behind the kernel's back
        prop._slots["association"] = None
        report = validate_tree(cruise_model.model)
        assert not report.ok
        assert any(d.code == "opposite" for d in report.errors)

    def test_dangling_transition_caught_by_wellformedness(self,
                                                          cruise_model):
        controller = cruise_model.model.member("CruiseController")
        machine = controller.state_machine()
        transition = machine.all_transitions()[1]
        transition.source = None
        report = run_wellformed_rules(cruise_model.model)
        assert any(d.code == "uml-sm-dangling" for d in report.errors)

    def test_lost_class_caught_by_refinement(self, cruise_model, posix):
        result = PIM_TO_PSM.run(cruise_model.model, posix)
        # fault: drop one trace link as if a rule had forgotten a class
        sensor = cruise_model.model.member("SpeedSensor")
        result.trace._by_source.pop(id(sensor))
        report = check_refinement(cruise_model.model, result,
                                  required_types=[Clazz])
        assert not report.ok
        assert any(d.code == "refine-incomplete" for d in report.errors)


class TestEverySafetyNetIsIndependent:
    def test_faults_invisible_to_other_layers(self, cruise_model,
                                              cruise_collaboration):
        """A behavioural fault passes the structural layers (and vice
        versa) — the paper's point that each kind of model test is
        necessary."""
        controller = cruise_model.model.member("CruiseController")
        machine = controller.state_machine()
        engage = [t for t in machine.all_transitions()
                  if t.trigger == "engage"][0]
        engage.delete()          # behavioural fault
        # structure and well-formedness cannot see it
        assert validate_tree(cruise_model.model).ok
        assert run_wellformed_rules(cruise_model.model).ok
        # only the scenario does
        assert not ENGAGE_SCENARIO.run(cruise_collaboration()).passed
