"""Tests for primitive types and multiplicities."""

import pytest

from repro.mof import (
    M_01,
    M_0N,
    M_11,
    M_1N,
    MBoolean,
    MInteger,
    MReal,
    MString,
    Multiplicity,
    UNBOUNDED,
    primitive_by_name,
)


class TestMultiplicity:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Multiplicity(-1, 1)
        with pytest.raises(ValueError):
            Multiplicity(2, 1)
        with pytest.raises(ValueError):
            Multiplicity(0, 0)

    def test_is_many(self):
        assert M_0N.is_many and M_1N.is_many
        assert not M_01.is_many and not M_11.is_many
        assert Multiplicity(0, 5).is_many

    def test_is_required(self):
        assert M_11.is_required and M_1N.is_required
        assert not M_01.is_required

    def test_accepts_count(self):
        assert M_01.accepts_count(0) and M_01.accepts_count(1)
        assert not M_01.accepts_count(2)
        assert M_1N.accepts_count(99)
        assert not M_1N.accepts_count(0)
        bounded = Multiplicity(2, 4)
        assert not bounded.accepts_count(1)
        assert bounded.accepts_count(3)
        assert not bounded.accepts_count(5)

    def test_str(self):
        assert str(M_0N) == "0..*"
        assert str(M_11) == "1"
        assert str(Multiplicity(0, 1)) == "0..1"
        assert str(Multiplicity(3, 3)) == "3"


class TestPrimitives:
    def test_conformance(self):
        assert MString.conforms("x") and not MString.conforms(1)
        assert MInteger.conforms(3) and not MInteger.conforms(3.5)
        assert MReal.conforms(3) and MReal.conforms(3.5)
        assert MBoolean.conforms(True)

    def test_bool_not_a_number(self):
        assert not MInteger.conforms(True)
        assert not MReal.conforms(False)

    def test_none_conforms_everywhere(self):
        for prim in (MString, MInteger, MReal, MBoolean):
            assert prim.conforms(None)

    def test_coerce_from_strings(self):
        assert MInteger.coerce("42") == 42
        assert MReal.coerce("2.5") == 2.5
        assert MBoolean.coerce("true") is True
        assert MBoolean.coerce("0") is False
        with pytest.raises(ValueError):
            MBoolean.coerce("maybe")

    def test_coerce_identity(self):
        assert MString.coerce("x") == "x"
        assert MInteger.coerce(None) is None

    def test_lookup_by_name(self):
        assert primitive_by_name("Integer") is MInteger
        with pytest.raises(KeyError):
            primitive_by_name("Complex")

    def test_defaults(self):
        assert MString.default == ""
        assert MInteger.default == 0
        assert MBoolean.default is False
