"""The model lint engine: seeded defects are flagged with their stable
codes, clean models stay clean (zero false positives), and the CLI /
report / process integrations behave."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

from repro.analysis import (
    DEFAULT_REGISTRY,
    LintConfig,
    ModelLinter,
    Severity,
    guard_unsatisfiable,
    guards_overlap,
    lint_transformation,
)
from repro.transform import Transformation
from repro.transform.rule import rule
from repro.uml import Clazz, ModelFactory, Package, StateMachine
from repro.uml.activities import Activity

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def codes(report):
    return {d.code for d in report.diagnostics}


def make_class(attrs=("balance",)):
    factory = ModelFactory("m")
    return factory, factory.clazz(
        "Account", attrs={name: "Integer" for name in attrs})


def machine_on(cls, name="sm"):
    machine = StateMachine(name=name)
    cls.owned_behaviors.append(machine)
    return machine, machine.main_region()


# ---------------------------------------------------------------------------
# Seeded state-machine defects
# ---------------------------------------------------------------------------


class TestStateMachineRules:
    def test_dead_state_flagged_sm001(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")                 # never targeted
        region.add_transition(initial, alive)
        report = ModelLinter().lint(factory.model)
        assert "SM001" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "SM001"]
        assert "Limbo" in diag.message
        assert diag.severity is Severity.ERROR
        assert "Limbo" in diag.path               # containment path filled

    def test_unsatisfiable_guard_flagged_sm002(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(initial, a)
        region.add_transition(a, b, trigger="go",
                              guard="balance > 2 and balance < 1")
        assert "SM002" in codes(ModelLinter().lint(factory.model))

    def test_overlapping_guards_flagged_sm003(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(initial, a)
        region.add_transition(a, b, trigger="go", guard="balance >= 100")
        region.add_transition(a, a, trigger="go", guard="balance >= 50")
        report = ModelLinter().lint(factory.model)
        assert "SM003" in codes(report)

    def test_disjoint_guards_not_flagged(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(initial, a)
        region.add_transition(a, b, trigger="go", guard="balance >= 100")
        region.add_transition(a, a, trigger="go", guard="balance < 100")
        assert "SM003" not in codes(ModelLinter().lint(factory.model))

    def test_different_triggers_not_flagged(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        a = region.add_state("A")
        region.add_transition(initial, a)
        region.add_transition(a, a, trigger="tick")
        region.add_transition(a, a, trigger="tock")
        assert "SM003" not in codes(ModelLinter().lint(factory.model))

    def test_guard_typo_flagged_with_suggestion(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        a = region.add_state("A")
        region.add_transition(initial, a)
        region.add_transition(a, a, trigger="go", guard="balanc > 3")
        report = ModelLinter().lint(factory.model)
        assert "OCL001" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "OCL001"]
        assert "balance" in diag.hint

    def test_action_created_variables_not_flagged(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        a = region.add_state("A", entry="gear := 1")
        region.add_transition(initial, a)
        region.add_transition(a, a, trigger="shift", guard="gear < 5",
                              effect="gear := gear + 1")
        assert ModelLinter().lint(factory.model).ok

    def test_guard_prover_primitives(self):
        assert guards_overlap("x >= 100", "x >= 50") is True
        assert guards_overlap("x >= 100", "x < 100") is False
        assert guards_overlap("x = 1", "x = 2") is False
        assert guards_overlap("", "x > 0") is True
        assert guards_overlap("f(x) > 0", "x > 0") is None  # undecidable
        assert guard_unsatisfiable("x > 2 and x < 1")
        assert guard_unsatisfiable("false")
        assert not guard_unsatisfiable("x > 1")


# ---------------------------------------------------------------------------
# Seeded activity defects
# ---------------------------------------------------------------------------


def activity_on(cls, name="act"):
    activity = Activity(name=name)
    cls.owned_behaviors.append(activity)
    return activity


class TestActivityRules:
    def test_sequential_join_starves_act001(self):
        factory, cls = make_class()
        act = activity_on(cls)
        initial = act.add_initial()
        first = act.add_action("first")
        second = act.add_action("second")
        join = act.add_join()
        final = act.add_final()
        act.flow(initial, first)
        act.flow(first, second)
        act.flow(first, join)
        act.flow(second, join)
        act.flow(join, final)
        report = ModelLinter().lint(factory.model)
        assert "ACT001" in codes(report)

    def test_balanced_fork_join_clean(self):
        factory, cls = make_class()
        act = activity_on(cls)
        initial = act.add_initial()
        fork = act.add_fork()
        a = act.add_action("a")
        b = act.add_action("b")
        join = act.add_join()
        final = act.add_final()
        act.flow(initial, fork)
        act.flow(fork, a)
        act.flow(fork, b)
        act.flow(a, join)
        act.flow(b, join)
        act.flow(join, final)
        assert ModelLinter().lint(factory.model).ok

    def test_fork_overfeeding_join_act002(self):
        factory, cls = make_class()
        act = activity_on(cls)
        initial = act.add_initial()
        fork = act.add_fork()
        a = act.add_action("a")
        b = act.add_action("b")
        c = act.add_action("c")
        join = act.add_join()
        act.flow(initial, fork)
        act.flow(fork, a)
        act.flow(fork, b)
        act.flow(fork, c)
        act.flow(a, join)
        act.flow(b, join)
        act.flow(c, b)             # third branch converges into b's path
        act.add_final()
        report = ModelLinter().lint(factory.model)
        assert "ACT002" in codes(report)

    def test_degenerate_fork_act003(self):
        factory, cls = make_class()
        act = activity_on(cls)
        initial = act.add_initial()
        fork = act.add_fork()
        a = act.add_action("a")
        final = act.add_final()
        act.flow(initial, fork)
        act.flow(fork, a)
        act.flow(a, final)
        assert "ACT003" in codes(ModelLinter().lint(factory.model))


# ---------------------------------------------------------------------------
# Seeded transformation conflicts
# ---------------------------------------------------------------------------


class TestTransformationRules:
    def test_shadowed_rule_tr001(self):
        @rule(Clazz, name="first")
        def first(source, ctx):
            return None

        @rule(Clazz, name="second")
        def second(source, ctx):
            return None

        report = lint_transformation(Transformation("t", [first, second]))
        assert "TR001" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "TR001"]
        assert "second" in diag.message

    def test_guarded_exclusive_rules_tr002(self):
        @rule(Clazz, name="active", guard="self.is_active")
        def active(source, ctx):
            return None

        @rule(Clazz, name="abstract", guard="self.is_abstract")
        def abstract(source, ctx):
            return None

        report = lint_transformation(
            Transformation("t", [active, abstract]))
        assert "TR002" in codes(report)
        assert "TR001" not in codes(report)

    def test_lazy_eager_duplicate_tr003(self):
        @rule(Clazz, name="eager")
        def eager(source, ctx):
            return None

        @rule(Clazz, name="ondemand", lazy=True)
        def ondemand(source, ctx):
            return None

        report = lint_transformation(
            Transformation("t", [eager, ondemand]))
        assert "TR003" in codes(report)

    def test_guarded_then_total_is_clean(self):
        @rule(Clazz, name="special", guard="self.is_active")
        def special(source, ctx):
            return None

        @rule(Package, name="unrelated")
        def unrelated(source, ctx):
            return None

        report = lint_transformation(
            Transformation("t", [special, unrelated]))
        assert report.ok and not report.warnings


# ---------------------------------------------------------------------------
# Config: disable / severity overrides / opt-in
# ---------------------------------------------------------------------------


class TestConfig:
    def seeded(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")
        region.add_transition(initial, alive)
        return factory.model

    def test_disable_by_code(self):
        model = self.seeded()
        report = ModelLinter(
            config=LintConfig(disabled={"SM001"})).lint(model)
        assert "SM001" not in codes(report)

    def test_disable_by_name(self):
        model = self.seeded()
        report = ModelLinter(
            config=LintConfig(disabled={"dead-state"})).lint(model)
        assert "SM001" not in codes(report)

    def test_severity_override_downgrades(self):
        model = self.seeded()
        report = ModelLinter(config=LintConfig(
            severity_overrides={"SM001": Severity.WARNING})).lint(model)
        assert report.ok
        assert any(d.code == "SM001" for d in report.warnings)

    def test_registry_knows_all_families(self):
        for code in ("SM001", "SM002", "SM003", "ACT001", "ACT002",
                     "ACT003", "TR001", "TR002", "TR003", "OCL101",
                     "OCL102", "OCL103", "UML100"):
            assert code in DEFAULT_REGISTRY

    def test_duplicate_code_rejected(self):
        from repro.analysis.registry import LintRule, RuleRegistry
        registry = RuleRegistry()
        registry.register(LintRule("X001", "one", "model", lambda t, c: []))
        with pytest.raises(ValueError):
            registry.register(
                LintRule("X001", "two", "model", lambda t, c: []))


# ---------------------------------------------------------------------------
# Zero false positives on every bundled example model
# ---------------------------------------------------------------------------


def _load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


EXAMPLE_BUILDS = [
    ("quickstart", "build_pim"),
    ("embedded_controller", "build_pim"),
    ("protocol_stack", "build_pim"),
    ("usecases_as_tests", "build_oo_design"),
    ("model_evolution", "build_revision_1"),
    ("information_model", "build_pim"),
]


class TestCleanExamples:
    @pytest.mark.parametrize("name,builder", EXAMPLE_BUILDS,
                             ids=[n for n, _ in EXAMPLE_BUILDS])
    def test_example_lints_clean(self, name, builder):
        module = _load_example(name)
        built = getattr(module, builder)()
        factory = built[0] if isinstance(built, tuple) else built
        report = ModelLinter().lint(factory.model)
        assert report.ok, report.render()

    def test_cruise_fixture_lints_clean(self, cruise_model):
        report = ModelLinter().lint(cruise_model.model)
        assert report.ok, report.render()
        assert report.elements_scanned > 0
        assert report.rules_run > 0


# ---------------------------------------------------------------------------
# Integrations: report section, suite test, process gate
# ---------------------------------------------------------------------------


class TestIntegrations:
    def test_quality_report_has_lint_section(self, cruise_model):
        from repro.validation import build_quality_report
        report = build_quality_report(cruise_model.model)
        section = report.section("static analysis (lint)")
        assert section.passed

    def test_suite_add_lint_gates(self):
        from repro.method.testing import ModelTestSuite
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")
        region.add_transition(initial, alive)
        suite = ModelTestSuite("level-0").add_lint()
        outcome = suite.run(factory.model)
        assert not outcome.passed
        clean_suite = ModelTestSuite("level-0").add_lint(
            disable=["SM001"])
        assert clean_suite.run(factory.model).passed

    def test_process_lint_gate_stops_run(self):
        from repro.method.process import DevelopmentProcess
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")
        region.add_transition(initial, alive)
        process = DevelopmentProcess("p")
        process.add_phase("analysis", lint=True)
        run = process.run(factory.model)
        assert run.stopped_at == "analysis"
        record = run.record("analysis")
        assert not record.gate_passed
        assert record.lint_report is not None
        relaxed = process.run(factory.model, enforce_gates=False)
        assert relaxed.completed

    def test_lint_report_adapts_to_validation_report(self):
        factory, cls = make_class()
        machine, region = machine_on(cls)
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_state("Limbo")
        region.add_transition(initial, alive)
        adapted = ModelLinter().lint(factory.model).as_validation_report()
        assert not adapted.ok
        assert any(d.code == "SM001" for d in adapted.errors)
