"""Tests for the classic UML→relational MDA transformation."""

import pytest

from repro.mof import validate_tree
from repro.transform import schema_to_sql, uml_to_relational


@pytest.fixture
def shop(factory):
    customer = factory.clazz("Customer", attrs={"name": "String",
                                                "age": "Integer"})
    order = factory.clazz("Order", attrs={"total": "Real",
                                          "paid": "Boolean"})
    item = factory.clazz("Item", attrs={"sku": "String"})
    factory.associate(customer, order, end_b="orders", b_upper=-1)
    factory.associate(order, customer, end_b="buyer",
                      b_lower=1, b_upper=1)
    factory.associate(order, item, end_b="items", b_upper=-1)
    vip = factory.clazz("VipCustomer", supers=[customer])
    return factory


@pytest.fixture
def schema(shop):
    result = uml_to_relational().run(shop.model)
    return result.primary_root


class TestMapping:
    def test_schema_root(self, schema):
        assert schema.meta.name == "Schema"
        assert schema.name == "m"
        assert validate_tree(schema).ok

    def test_class_to_table_with_pk(self, schema):
        names = {t.name for t in schema.tables}
        assert {"customer", "order", "item", "vipcustomer"} <= names
        customer = [t for t in schema.tables if t.name == "customer"][0]
        pk = [c for c in customer.columns if c.is_primary]
        assert len(pk) == 1 and pk[0].name == "id"

    def test_attribute_types_mapped(self, schema):
        customer = [t for t in schema.tables if t.name == "customer"][0]
        types = {c.name: c.sql_type for c in customer.columns}
        assert types["name"] == "VARCHAR(255)"
        assert types["age"] == "INTEGER"
        order = [t for t in schema.tables if t.name == "order"][0]
        types = {c.name: c.sql_type for c in order.columns}
        assert types["total"] == "DOUBLE PRECISION"
        assert types["paid"] == "BOOLEAN"

    def test_single_end_becomes_fk(self, schema):
        order = [t for t in schema.tables if t.name == "order"][0]
        fk = [f for f in order.foreign_keys
              if f.name == "fk_order_buyer"]
        assert len(fk) == 1
        assert fk[0].references.name == "customer"
        assert fk[0].column.name == "buyer_id"
        assert not fk[0].column.is_nullable     # lower bound 1

    def test_many_end_becomes_join_table(self, schema):
        join = [t for t in schema.tables
                if t.name == "customer_orders"]
        assert len(join) == 1
        referenced = {f.references.name for f in join[0].foreign_keys}
        assert referenced == {"customer", "order"}

    def test_inheritance_becomes_parent_fk(self, schema):
        vip = [t for t in schema.tables if t.name == "vipcustomer"][0]
        fk = [f for f in vip.foreign_keys
              if f.references.name == "customer"]
        assert len(fk) == 1

    def test_transformation_is_semantic(self):
        transformation = uml_to_relational()
        assert transformation.is_semantic


class TestSqlPrinter:
    def test_ddl_shape(self, schema):
        sql = schema_to_sql(schema)
        assert "CREATE TABLE customer (" in sql
        assert "id INTEGER NOT NULL PRIMARY KEY" in sql
        assert ("CONSTRAINT fk_order_buyer FOREIGN KEY (buyer_id) "
                "REFERENCES customer(id)") in sql
        assert sql.count("CREATE TABLE") == len(schema.tables)

    def test_nullability_follows_lower_bound(self, shop):
        # factory attributes default to lower=1 -> NOT NULL
        nickname_owner = shop.model.member("Customer")
        shop.attribute(nickname_owner, "nickname", "String", lower=0)
        schema = uml_to_relational().run(shop.model).primary_root
        sql = schema_to_sql(schema)
        assert "name VARCHAR(255) NOT NULL" in sql
        lines = [l.strip().rstrip(",") for l in sql.splitlines()]
        assert "nickname VARCHAR(255)" in lines
