"""Tests for the traversal and query helpers."""

import pytest

from repro.mof import (
    all_contents,
    closure,
    cross_references,
    find_by_name,
    instances_of,
    navigate,
    path,
    referenced_elements,
    select,
)
from kernel_fixture import TBook, TChapter, TLibrary


@pytest.fixture
def deep_library():
    lib = TLibrary(name="lib")
    b1 = TBook(name="alpha", pages=10)
    b2 = TBook(name="beta", pages=20)
    c1 = TChapter(name="c1")
    c2 = TChapter(name="c2")
    b1.chapters.extend([c1, c2])
    lib.books.extend([b1, b2])
    b1.sequel = b2
    lib.featured = b2
    return lib, b1, b2, c1, c2


def test_all_contents_preorder(deep_library):
    lib, b1, b2, c1, c2 = deep_library
    assert list(all_contents(lib)) == [b1, c1, c2, b2]
    assert list(all_contents(lib, include_self=True))[0] is lib


def test_instances_of(deep_library):
    lib, b1, b2, c1, c2 = deep_library
    assert instances_of(lib, TBook) == [b1, b2]
    assert instances_of(lib, TChapter) == [c1, c2]


def test_find_by_name(deep_library):
    lib, b1, *_ = deep_library
    assert find_by_name(lib, "alpha") is b1
    assert find_by_name(lib, "alpha", TChapter) is None
    assert find_by_name(lib, "missing") is None


def test_select(deep_library):
    lib, *_ = deep_library
    heavy = select(lib, lambda e: isinstance(e, TBook) and e.pages > 15)
    assert [b.name for b in heavy] == ["beta"]


def test_closure(deep_library):
    lib, b1, b2, *_ = deep_library
    out = closure([b1], lambda b: [b.sequel] if b.sequel else [])
    assert out == [b2]


def test_referenced_elements(deep_library):
    lib, b1, b2, *_ = deep_library
    refs = referenced_elements(lib)
    assert refs == [b2]                       # featured only (non-containment)
    refs_with = referenced_elements(lib, include_containment=True)
    assert b1 in refs_with and b2 in refs_with


def test_cross_references(deep_library):
    lib, b1, b2, *_ = deep_library
    links = cross_references(lib)
    pairs = {(s.name or "", f.name, t.name or "") for s, f, t in links}
    assert ("lib", "featured", "beta") in pairs
    assert ("alpha", "sequel", "beta") in pairs


def test_path(deep_library):
    lib, b1, _, c1, _ = deep_library
    assert path(c1) == "lib/alpha/c1"


def test_navigate_dotted(deep_library):
    lib, b1, b2, *_ = deep_library
    assert navigate(b1, "library.name") == "lib"
    names = navigate(lib, "books.name")
    assert names == ["alpha", "beta"]
    chapter_names = navigate(lib, "books.chapters.name")
    assert chapter_names == ["c1", "c2"]
    assert navigate(b2, "sequel") is None
