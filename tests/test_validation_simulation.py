"""Tests for the state-machine interpreter and collaboration simulator."""

import pytest

from repro.uml import StateMachine
from repro.validation import (
    Collaboration,
    Event,
    ObjectInstance,
    SimulationError,
    StateMachineInterpreter,
    attribute_series,
    sequence_diagram,
    state_history,
    timeline,
)


@pytest.fixture
def counter_class(factory):
    cls = factory.clazz("Counter", attrs={"count": "Integer",
                                          "limit": "Integer"})
    factory.attribute(cls, "label", "String", default="c")
    machine = StateMachine(name="CounterSM")
    cls.owned_behaviors.append(machine)
    cls.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    counting = region.add_state("Counting", entry="count := 0")
    done = region.add_state("Done")
    region.add_transition(initial, counting)
    region.add_transition(counting, counting, trigger="inc",
                          guard="count < limit",
                          effect="count := count + 1", kind="internal")
    region.add_transition(counting, done, trigger="inc",
                          guard="count >= limit")
    return cls


class TestInterpreter:
    def test_start_enters_initial_state(self, counter_class):
        instance = ObjectInstance("c", counter_class, {"limit": 2})
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        assert instance.state_name == "Counting"
        assert instance.attributes["count"] == 0    # entry action ran

    def test_guarded_transitions(self, counter_class):
        instance = ObjectInstance("c", counter_class, {"limit": 2})
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        interpreter.dispatch(Event("inc"))
        interpreter.dispatch(Event("inc"))
        assert instance.attributes["count"] == 2
        assert instance.state_name == "Counting"
        interpreter.dispatch(Event("inc"))
        assert instance.state_name == "Done"

    def test_unknown_event_dropped(self, counter_class):
        instance = ObjectInstance("c", counter_class, {"limit": 1})
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        assert interpreter.dispatch(Event("bogus")) is False
        assert instance.state_name == "Counting"

    def test_default_attribute_values(self, counter_class):
        instance = ObjectInstance("c", counter_class)
        assert instance.attributes["count"] == 0
        assert instance.attributes["label"] == "c"

    def test_queue_stepping(self, counter_class):
        instance = ObjectInstance("c", counter_class, {"limit": 5})
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        instance.queue.extend([Event("inc")] * 3)
        steps = interpreter.run_to_quiescence()
        assert steps == 3 and instance.attributes["count"] == 3

    def test_class_without_machine_rejected(self, factory):
        plain = factory.clazz("Plain")
        with pytest.raises(SimulationError):
            StateMachineInterpreter(ObjectInstance("p", plain))

    def test_bad_guard_raises_simulation_error(self, factory):
        cls = factory.clazz("Bad", attrs={"x": "Integer"})
        machine = StateMachine(name="BadSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        state = region.add_state("S")
        region.add_transition(initial, state)
        region.add_transition(state, state, trigger="go",
                              guard="nonexistent > 1")
        instance = ObjectInstance("b", cls)
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        with pytest.raises(SimulationError):
            interpreter.dispatch(Event("go"))

    def test_completion_livelock_detected(self, factory):
        cls = factory.clazz("Loop")
        machine = StateMachine(name="LoopSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(initial, a)
        region.add_transition(a, b)       # completion
        region.add_transition(b, a)       # completion: livelock
        instance = ObjectInstance("l", cls)
        interpreter = StateMachineInterpreter(instance)
        with pytest.raises(SimulationError):
            interpreter.start()

    def test_hierarchical_machine_flattened_automatically(self, factory):
        cls = factory.clazz("H", attrs={"v": "Integer"})
        machine = StateMachine(name="HSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        outer = region.add_state("Outer")
        inner_region = outer.add_region("in")
        inner_initial = inner_region.add_initial()
        inner_state = inner_region.add_state("Inner", entry="v := 7")
        inner_region.add_transition(inner_initial, inner_state)
        region.add_transition(initial, outer)
        instance = ObjectInstance("h", cls)
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        assert instance.state_name == "Outer_Inner"
        assert instance.attributes["v"] == 7

    def test_event_arguments_bound(self, factory):
        cls = factory.clazz("Arg", attrs={"x": "Integer"})
        machine = StateMachine(name="ArgSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        state = region.add_state("S")
        region.add_transition(initial, state)
        region.add_transition(state, state, trigger="set",
                              effect="x := arg0")
        instance = ObjectInstance("a", cls)
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        interpreter.dispatch(Event("set", (42,)))
        assert instance.attributes["x"] == 42

    def test_external_self_transition_reruns_entry(self, factory):
        cls = factory.clazz("Ext", attrs={"n": "Integer"})
        machine = StateMachine(name="ExtSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        state = region.add_state("S", entry="n := n + 1")
        region.add_transition(initial, state)
        region.add_transition(state, state, trigger="again")
        instance = ObjectInstance("e", cls)
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        assert instance.attributes["n"] == 1
        interpreter.dispatch(Event("again"))
        assert instance.attributes["n"] == 2     # entry ran again

    def test_internal_transition_skips_entry(self, factory):
        cls = factory.clazz("Int", attrs={"n": "Integer"})
        machine = StateMachine(name="IntSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        state = region.add_state("S", entry="n := n + 1")
        region.add_transition(initial, state)
        region.add_transition(state, state, trigger="again",
                              kind="internal")
        instance = ObjectInstance("i", cls)
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        interpreter.dispatch(Event("again"))
        assert instance.attributes["n"] == 1     # entry did NOT rerun

    def test_operation_call_executes_body(self, factory):
        cls = factory.clazz("WithOp", attrs={"y": "Integer"})
        factory.operation(cls, "bump", body="y := y + 10")
        machine = StateMachine(name="OpSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        state = region.add_state("S")
        region.add_transition(initial, state)
        region.add_transition(state, state, trigger="go",
                              effect="self.bump()")
        instance = ObjectInstance("w", cls)
        interpreter = StateMachineInterpreter(instance)
        interpreter.start()
        interpreter.dispatch(Event("go"))
        assert instance.attributes["y"] == 10


class TestCollaboration:
    def test_cruise_scenario(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.send("ctl", "tick")
        collab.send("ctl", "tick")
        collab.run()
        assert collab.attribute("ctl", "enabled") is True
        assert collab.attribute("act", "level") == 3
        assert collab.configuration()["act"] == "Applied"

    def test_disengage_resets(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.run()
        collab.send("ctl", "disengage")
        collab.run()
        assert collab.attribute("act", "level") == 0
        assert collab.configuration()["act"] == "Idle"

    def test_messages_recorded(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.run()
        assert ("ctl", "act", "apply") in collab.messages()

    def test_duplicate_object_name_rejected(self, cruise_collaboration,
                                            cruise_model):
        collab = cruise_collaboration()
        controller = cruise_model.model.member("CruiseController")
        with pytest.raises(SimulationError):
            collab.create_object("ctl", controller)

    def test_send_to_unlinked_target_is_lost_not_fatal(self, cruise_model):
        controller = cruise_model.model.member("CruiseController")
        collab = Collaboration()
        collab.create_object("ctl", controller)      # no actuator link
        collab.start()
        collab.send("ctl", "engage")
        collab.run()
        lost = [e for e in collab.trace if e.kind == "send-lost"]
        assert lost and lost[0].detail["to"] == "actuator"

    def test_wire_from_model(self, cruise_model):
        collab = Collaboration()
        classes = {c.name: c for c in cruise_model.model.all_members()
                   if hasattr(c, "owned_attributes")}
        collab.create_object("ctl", classes["CruiseController"])
        collab.create_object("act", classes["ThrottleActuator"])
        collab.wire_from_model({"ctl": "CruiseController",
                                "act": "ThrottleActuator"},
                               cruise_model.model)
        assert collab.objects["ctl"].links["actuator"] is \
            collab.objects["act"]
        assert collab.objects["act"].links["controller"] is \
            collab.objects["ctl"]

    def test_run_respects_step_bound(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        steps = collab.run(max_steps=1)
        assert steps == 1

    def test_save_and_load_state(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        saved = collab.save_state()
        collab.send("ctl", "engage")
        collab.run()
        assert collab.attribute("ctl", "enabled") is True
        collab.load_state(saved)
        assert collab.attribute("ctl", "enabled") is False
        assert collab.quiescent

    def test_snapshot_equality(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        snap1 = collab.snapshot()
        saved = collab.save_state()
        collab.send("ctl", "engage")
        collab.run()
        assert collab.snapshot() != snap1
        collab.load_state(saved)
        assert collab.snapshot() == snap1


class TestAnimation:
    @pytest.fixture
    def ran(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.send("ctl", "disengage")
        collab.run()
        return collab

    def test_timeline(self, ran):
        text = timeline(ran)
        assert "engage" in text and "ctl" in text

    def test_timeline_filtered(self, ran):
        text = timeline(ran, kinds=["send"])
        assert "apply" in text
        assert "inject" not in text

    def test_state_history(self, ran):
        assert state_history(ran, "ctl") == ["Off", "On", "Off"]

    def test_sequence_diagram(self, ran):
        diagram = sequence_diagram(ran)
        lines = diagram.splitlines()
        assert "ctl" in lines[0] and "act" in lines[0]
        assert any("apply" in line for line in lines[1:])

    def test_attribute_series(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.send("ctl", "tick")
        collab.run()
        series = attribute_series(collab, "act", "level")
        assert [value for _, value in series] == [1, 2]
