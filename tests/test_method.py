"""Tests for methodology support: abstraction levels, pollution checking,
test suites, gated processes."""

import pytest

from repro.method import (
    DevelopmentProcess,
    ModelStack,
    ModelTestSuite,
    abstraction_delta,
    check_domain_purity,
    check_psm_grounding,
    platform_content_ratio,
    platform_vocabulary,
)
from repro.ocl import ConstraintSet
from repro.platforms import PIM_TO_PSM, make_pim_to_psm
from repro.transform import clone_transformation
from repro.uml import Clazz, ModelFactory, UmlElement


class TestAbstraction:
    def test_stack_levels_ordered(self):
        stack = ModelStack("s")
        pim = stack.add_level("PIM")
        psm = stack.add_level("PSM")
        assert pim.index == 0 and psm.index == 1
        assert stack.distance(pim, psm) == 1
        assert stack.is_platform_independent_wrt(pim, psm)
        assert not stack.is_platform_independent_wrt(psm, pim)

    def test_refine_places_result_below(self, cruise_model, posix):
        stack = ModelStack("s")
        pim = stack.add_level("PIM")
        psm = stack.add_level("PSM")
        stack.place(pim, cruise_model.model)
        result = stack.refine(pim, make_pim_to_psm(posix), platform=posix)
        assert stack.slot(psm).roots == result.target_roots
        assert stack.slot(psm).produced_by is result

    def test_refine_needs_lower_level(self, cruise_model, posix):
        stack = ModelStack("s")
        pim = stack.add_level("PIM")
        stack.place(pim, cruise_model.model)
        with pytest.raises(IndexError):
            stack.refine(pim, make_pim_to_psm(posix), platform=posix)

    def test_refine_needs_model(self, posix):
        stack = ModelStack("s")
        pim = stack.add_level("PIM")
        stack.add_level("PSM")
        with pytest.raises(ValueError):
            stack.refine(pim, make_pim_to_psm(posix), platform=posix)

    def test_platform_vocabulary(self, posix):
        vocabulary = platform_vocabulary(posix)
        assert "int32_t" in vocabulary
        assert "mqueue" in vocabulary
        assert "thread" in vocabulary

    def test_platform_content_ratio_distinguishes(self, cruise_model,
                                                  posix):
        pim_ratio = platform_content_ratio(cruise_model.model, posix)
        psm = PIM_TO_PSM.run(cruise_model.model, posix).primary_root
        psm_ratio = platform_content_ratio(psm, posix)
        assert pim_ratio == 0.0
        assert psm_ratio > 0.1

    def test_abstraction_delta_semantic_vs_syntactic(self, cruise_model,
                                                     posix):
        semantic = PIM_TO_PSM.run(cruise_model.model, posix).primary_root
        syntactic = clone_transformation(UmlElement).run(
            cruise_model.model).primary_root
        assert abstraction_delta(cruise_model.model, semantic, posix) > 0
        assert abstraction_delta(cruise_model.model, syntactic,
                                 posix) == 0.0


class TestPollution:
    def test_clean_pim(self, cruise_model, posix):
        report = check_domain_purity(cruise_model.model, [posix])
        assert report.clean
        assert report.pollution_ratio == 0.0

    def test_platform_type_leak_detected(self, posix):
        factory = ModelFactory("dirty")
        cls = factory.clazz("Order")
        native = factory.clazz("int32_t")    # platform type as a class!
        factory.attribute(cls, "total", native)
        report = check_domain_purity(factory.model, [posix])
        assert not report.clean
        reasons = {f.reason for f in report.findings}
        assert "platform word in name" in reasons
        assert "platform-native type" in reasons

    def test_suffix_heuristics(self):
        factory = ModelFactory("dirty")
        factory.clazz("Worker_thread")
        factory.clazz("Event_queue")
        report = check_domain_purity(factory.model)
        assert len(report.polluted_elements()) == 2

    def test_heuristics_can_be_disabled(self):
        factory = ModelFactory("dirty")
        factory.clazz("Worker_thread")
        report = check_domain_purity(factory.model,
                                     use_generic_heuristics=False)
        assert report.clean

    def test_extra_vocabulary(self):
        factory = ModelFactory("dirty")
        factory.clazz("CorbaOrb")
        report = check_domain_purity(factory.model,
                                     extra_vocabulary=["CorbaOrb"])
        assert not report.clean

    def test_as_validation_report(self):
        factory = ModelFactory("dirty")
        factory.clazz("Worker_thread")
        report = check_domain_purity(factory.model).as_validation_report()
        assert not report.ok

    def test_psm_grounding_check(self, cruise_model, posix):
        psm = PIM_TO_PSM.run(cruise_model.model, posix).primary_root
        assert check_psm_grounding(psm, posix).ok
        # a clone of the PIM is NOT grounded in the platform
        fake_psm = clone_transformation(UmlElement).run(
            cruise_model.model).primary_root
        report = check_psm_grounding(fake_psm, posix)
        assert report.warnings


class TestSuites:
    def test_structural_and_wellformedness(self, cruise_model):
        suite = (ModelTestSuite("L0").add_structural()
                 .add_wellformedness())
        result = suite.run(cruise_model.model)
        assert result.passed
        assert len(result.results) == 2
        assert "PASS" in result.summary()

    def test_constraint_suite(self, cruise_model):
        constraints = ConstraintSet("naming")
        constraints.add(Clazz, "capitalised",
                        "name.substring(1,1) = "
                        "name.substring(1,1).toUpperCase()")
        suite = ModelTestSuite("L0").add_constraints(constraints)
        assert suite.run(cruise_model.model).passed

    def test_metric_threshold(self, cruise_model):
        from repro.validation import compute_model_metrics
        suite = ModelTestSuite("L0").add_metric_threshold(
            "coupling",
            lambda root: compute_model_metrics(root).coupling_density,
            maximum=0.9)
        assert suite.run(cruise_model.model).passed
        strict = ModelTestSuite("L0").add_metric_threshold(
            "coupling",
            lambda root: compute_model_metrics(root).coupling_density,
            maximum=0.0)
        assert not strict.run(cruise_model.model).passed

    def test_crashing_test_fails(self, cruise_model):
        suite = ModelTestSuite("L0").add(
            "boom", lambda roots: 1 / 0)
        result = suite.run(cruise_model.model)
        assert not result.passed
        assert "raised" in result.failures()[0].messages[0]

    def test_as_gate(self, cruise_model):
        suite = ModelTestSuite("L0").add_wellformedness()
        gate = suite.as_gate()
        verdict = gate([cruise_model.model])
        assert verdict.passed


class TestProcess:
    def make_process(self, posix):
        suite = (ModelTestSuite("pim-tests").add_structural()
                 .add_wellformedness())
        process = DevelopmentProcess("dev")
        process.add_phase("pim", suite=suite,
                          transformation=make_pim_to_psm(posix),
                          platform=posix)
        process.add_phase("psm",
                          suite=ModelTestSuite("psm-tests")
                          .add_structural())
        return process

    def test_process_completes(self, cruise_model, posix):
        process = self.make_process(posix)
        run = process.run(cruise_model.model)
        assert run.completed
        assert run.final_roots[0].name == "cruise_posix_rtos"
        assert run.record("pim").transformed
        assert not run.record("psm").transformed

    def test_gate_stops_defective_model(self, posix):
        factory = ModelFactory("bad")
        factory.clazz("Dup")
        factory.clazz("Dup")      # well-formedness violation
        process = self.make_process(posix)
        run = process.run(factory.model)
        assert not run.completed
        assert run.stopped_at == "pim"
        assert run.final_roots[0] is factory.model    # nothing produced

    def test_ungated_process_propagates_defects(self, posix):
        factory = ModelFactory("bad")
        factory.clazz("Dup")
        factory.clazz("Dup")
        process = self.make_process(posix)
        run = process.run(factory.model, enforce_gates=False)
        assert run.completed
        # the defect is now IN the PSM: two classes named Dup
        psm = run.final_roots[0]
        dups = [e for e in psm.packaged_elements if e.name == "Dup"]
        assert len(dups) == 2

    def test_as_stack(self, posix):
        process = self.make_process(posix)
        stack = process.as_stack()
        assert [l.name for l in stack.levels()] == ["pim", "psm"]
