"""Tests for UML activities and their token-flow interpreter."""

import pytest

from repro.uml import Activity
from repro.validation import SimulationError, run_activity


def linear_activity():
    activity = Activity(name="linear")
    start = activity.add_initial()
    a = activity.add_action("a", body="x := x + 1")
    b = activity.add_action("b", body="x := x * 2")
    end = activity.add_final()
    activity.flow(start, a)
    activity.flow(a, b)
    activity.flow(b, end)
    return activity


class TestBasics:
    def test_linear_flow(self):
        run = run_activity(linear_activity(), {"x": 1})
        assert run.completed and not run.deadlocked
        assert run.visited_actions()[:2] == ["a", "b"]
        assert run.variables["x"] == 4        # (1+1)*2

    def test_missing_initial_rejected(self):
        activity = Activity(name="broken")
        activity.add_action("a")
        with pytest.raises(SimulationError):
            run_activity(activity)

    def test_token_dies_at_sink(self):
        activity = Activity(name="sink")
        start = activity.add_initial()
        a = activity.add_action("a")
        activity.flow(start, a)       # no outgoing from a
        run = run_activity(activity)
        assert not run.completed and not run.deadlocked

    def test_two_unguarded_outgoing_rejected(self):
        activity = Activity(name="amb")
        start = activity.add_initial()
        a = activity.add_action("a")
        b = activity.add_action("b")
        activity.flow(start, a)
        activity.flow(start, b)
        with pytest.raises(SimulationError):
            run_activity(activity)


class TestDecisions:
    def make(self):
        activity = Activity(name="route")
        start = activity.add_initial()
        decision = activity.add_decision()
        low = activity.add_action("low", body="label := 'low'")
        high = activity.add_action("high", body="label := 'high'")
        merge = activity.add_merge()
        end = activity.add_final()
        activity.flow(start, decision)
        activity.flow(decision, high, guard="x > 10")
        activity.flow(decision, low, guard="else")
        activity.flow(low, merge)
        activity.flow(high, merge)
        activity.flow(merge, end)
        return activity

    def test_guarded_branch(self):
        run = run_activity(self.make(), {"x": 50, "label": ""})
        assert run.variables["label"] == "high"

    def test_else_branch(self):
        run = run_activity(self.make(), {"x": 1, "label": ""})
        assert run.variables["label"] == "low"

    def test_no_branch_no_else_rejected(self):
        activity = Activity(name="stuck")
        start = activity.add_initial()
        decision = activity.add_decision()
        a = activity.add_action("a")
        activity.flow(start, decision)
        activity.flow(decision, a, guard="x > 10")
        with pytest.raises(SimulationError):
            run_activity(activity, {"x": 1})

    def test_bad_guard_reported(self):
        activity = Activity(name="bad")
        start = activity.add_initial()
        decision = activity.add_decision()
        a = activity.add_action("a")
        activity.flow(start, decision)
        activity.flow(decision, a, guard="mystery > 1")
        with pytest.raises(SimulationError):
            run_activity(activity)


class TestForkJoin:
    def make(self):
        activity = Activity(name="par")
        start = activity.add_initial()
        fork = activity.add_fork()
        left = activity.add_action("left", body="l := 1")
        right = activity.add_action("right", body="r := 1")
        join = activity.add_join()
        done = activity.add_action("done", body="total := l + r")
        end = activity.add_final()
        activity.flow(start, fork)
        activity.flow(fork, left)
        activity.flow(fork, right)
        activity.flow(left, join)
        activity.flow(right, join)
        activity.flow(join, done)
        activity.flow(done, end)
        return activity

    def test_both_branches_execute_before_join(self):
        run = run_activity(self.make(), {"l": 0, "r": 0, "total": 0})
        assert run.completed
        visited = run.visited_actions()
        assert visited.index("done") > visited.index("left")
        assert visited.index("done") > visited.index("right")
        assert run.variables["total"] == 2

    def test_join_waits_for_all(self):
        activity = Activity(name="half")
        start = activity.add_initial()
        a = activity.add_action("a")
        join = activity.add_join()
        never = activity.add_action("never")
        activity.flow(start, a)
        activity.flow(a, join)
        # a second, never-fed incoming edge
        orphan = activity.add_action("orphan")
        activity.flow(orphan, join)
        activity.flow(join, never)
        run = run_activity(activity)
        assert run.deadlocked
        assert "never" not in run.visited_actions()

    def test_flow_final_consumes_without_ending(self):
        activity = Activity(name="ff")
        start = activity.add_initial()
        fork = activity.add_fork()
        a = activity.add_action("a", body="x := 1")
        flow_end = activity.add_flow_final()
        b = activity.add_action("b", body="y := 1")
        end = activity.add_final()
        activity.flow(start, fork)
        activity.flow(fork, a)
        activity.flow(fork, b)
        activity.flow(a, flow_end)
        activity.flow(b, end)
        run = run_activity(activity, {"x": 0, "y": 0})
        assert run.completed
        assert run.variables["x"] == 1 and run.variables["y"] == 1


class TestModelQueries:
    def test_structure_queries(self):
        activity = linear_activity()
        assert activity.initial_node() is not None
        assert activity.node("a").body == "x := x + 1"
        assert [a.name for a in activity.actions()] == ["a", "b"]
        a = activity.node("a")
        assert [e.target.name for e in a.outgoing()] == ["b"]
        assert [e.source.name for e in a.incoming()] == ["start"]
