"""Static OCL type checking: inference and rejection of ill-typed
expressions the evaluator would only catch at run time."""

from __future__ import annotations

import pytest

from kernel_fixture import TBook, TChapter, TLibrary, TEST_PKG
from repro.ocl import typecheck
from repro.ocl.typecheck import (
    ANY,
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    CollectionType,
    ObjectType,
    TypeEnv,
    conforms,
    env_for_metamodel,
)


def infer(expression, context=TBook, **kwargs):
    result = typecheck(expression, context=context, **kwargs)
    assert result.ok, [str(i) for i in result.issues]
    return result.type


def codes_of(expression, context=TBook, **kwargs):
    return [issue.code
            for issue in typecheck(expression, context=context,
                                   **kwargs).issues]


# ---------------------------------------------------------------------------
# Inference over well-typed expressions
# ---------------------------------------------------------------------------


class TestInference:
    def test_arithmetic_stays_integer(self):
        assert infer("pages + 1") == INTEGER

    def test_division_promotes_to_real(self):
        assert infer("pages / 2") == REAL

    def test_attribute_navigation(self):
        assert infer("name") == STRING

    def test_reference_navigation_yields_object_type(self):
        result = infer("library")
        assert isinstance(result, ObjectType)
        assert result.name == "TLibrary"

    def test_many_reference_yields_collection(self):
        result = infer("chapters")
        assert isinstance(result, CollectionType)
        assert result.element.name == "TChapter"

    def test_chained_navigation_through_collection(self):
        result = infer("chapters->collect(c | c.book)")
        assert isinstance(result, CollectionType)
        assert result.element.name == "TBook"

    def test_string_operation_chain(self):
        assert infer("name.size() > 0", expect_boolean=True) == BOOLEAN

    def test_select_preserves_collection(self):
        result = infer("books->select(b | b.pages > 10)",
                       context=TLibrary)
        assert isinstance(result, CollectionType)
        assert result.element.name == "TBook"

    def test_select_then_size(self):
        assert infer("books->select(b | b.pages > 10)->size()",
                     context=TLibrary) == INTEGER

    def test_forall_is_boolean(self):
        assert infer("chapters->forAll(c | c.name <> '')") == BOOLEAN

    def test_let_binds_declared_type(self):
        assert infer("let n : Integer = pages in n * 2") == INTEGER

    def test_if_joins_branches(self):
        assert infer(
            "if pages > 10 then 'long' else 'short' endif") == STRING

    def test_if_with_numeric_branches_promotes(self):
        assert infer("if true then 1 else 2.5 endif") == REAL

    def test_ocl_is_kind_of_is_boolean(self):
        assert infer("self.oclIsKindOf(TNamed)") == BOOLEAN

    def test_ocl_as_type_downcasts(self):
        assert infer("self.oclAsType(TBook).pages") == INTEGER

    def test_collection_literal_range(self):
        assert infer("Sequence{1..5}->sum()") == INTEGER

    def test_all_instances_is_set(self):
        result = infer("TBook.allInstances()")
        assert isinstance(result, CollectionType)
        assert result.kind == "Set"
        assert result.element.name == "TBook"

    def test_sorted_by_yields_sequence(self):
        result = infer("chapters->sortedBy(c | c.name)")
        assert result.kind == "Sequence"

    def test_unknowns_stay_gradual(self):
        # guards over simulator-created variables must not false-positive
        env = TypeEnv()
        env.define("gear", ANY)
        result = typecheck("gear > 3", context=TBook, env=env,
                           expect_boolean=True)
        assert result.ok


# ---------------------------------------------------------------------------
# Rejection: statically ill-typed expressions (each would only surface
# at evaluation time otherwise)
# ---------------------------------------------------------------------------

REJECTED = [
    ("pagez + 1", "OCL001"),                       # unknown property
    ("chapters->forAll(c | c.pages)", "OCL001"),   # unknown in body
    ("pages.size()", "OCL002"),                    # Integer has no size()
    ("chapters->shuffle()", "OCL004"),             # unknown collection op
    ("name.substring(1)", "OCL005"),               # wrong arity
    ("pages + name", "OCL006"),                    # Integer + String
    ("not pages", "OCL006"),                       # not over Integer
    ("true and 1", "OCL006"),                      # and over Integer
    ("pages > 'abc'", "OCL006"),                   # cross-family compare
    ("chapters->at('x')", "OCL006"),               # at() wants Integer
    ("chapters->union(pages)", "OCL006"),          # union wants collection
    ("chapters->sum()", "OCL006"),                 # sum over objects
    ("self.oclIsKindOf(Missing)", "OCL007"),       # unknown type name
    ("chapters->select(c | c.name", "OCL008"),     # syntax error
    ("pages.foo", "OCL009"),                       # nav on primitive
    ("chapters->forAll(c | c.book)", "OCL010"),    # non-Boolean body
    ("chapters->sortedBy(c | c.book)", "OCL010"),  # incomparable body
]


class TestRejection:
    @pytest.mark.parametrize("expression,code", REJECTED,
                             ids=[c + ":" + e[:24] for e, c in REJECTED])
    def test_rejected_with_code(self, expression, code):
        assert code in codes_of(expression)

    def test_at_least_ten_distinct_ill_typed_expressions(self):
        flagged = [e for e, _ in REJECTED if codes_of(e)]
        assert len(set(flagged)) >= 10

    def test_expect_boolean_flags_non_boolean_root(self):
        assert "OCL003" in codes_of("pages", expect_boolean=True)

    def test_unknown_identifier_gets_suggestion(self):
        issues = typecheck("pagez + 1", context=TBook).issues
        assert any("pages" in issue.hint for issue in issues)

    def test_unknown_collection_op_gets_suggestion(self):
        issues = typecheck("chapters->sizee()", context=TBook).issues
        assert any("size" in issue.hint for issue in issues)


# ---------------------------------------------------------------------------
# Environment plumbing
# ---------------------------------------------------------------------------


class TestEnvironment:
    def test_env_for_metamodel_registers_type_names(self):
        env = env_for_metamodel(TEST_PKG)
        assert env.lookup_type("TBook") is not None
        assert env.lookup_type("testmm::TBook") is not None

    def test_conformance_is_gradual(self):
        assert conforms(ANY, INTEGER)
        assert conforms(INTEGER, ANY)
        assert conforms(INTEGER, REAL)
        assert not conforms(REAL, INTEGER)
        assert not conforms(STRING, INTEGER)

    def test_result_renders_issues(self):
        result = typecheck("pagez", context=TBook)
        assert not result.ok
        assert "pagez" in str(result.issues[0])
