"""Differential tests: compiled OCL == interpreted OCL.

The closure compiler (:mod:`repro.ocl.compile`) must be observationally
identical to the tree-walking interpreter — same values, same undefined
(``None``) propagation, same ``OclTypeError``/``OclEvaluationError``
types and messages.  The corpus below runs every expression against
every element of generated models (``tests/modelgen.py``) through both
pipelines and requires identical outcomes, including for expressions
that are *type errors* on some elements (wrong metaclass, undefined
navigation, non-boolean guards).

Also covers the parse/compile caches: per-(text, context) keying, the
no-poisoning guarantee between contexts, and hit/miss accounting.
"""

import pytest

from repro.generate import demo_generator, demo_package, uml_generator
from repro.incremental import report_signature
from repro.mof import (
    MInteger,
    MString,
    Model,
    add_attribute,
    define_class,
    define_package,
)
from repro.ocl import (
    ConstraintSet,
    Environment,
    Invariant,
    cache_stats,
    compile_expression,
    evaluate,
    parse_cached,
)
from repro.ocl.errors import OclError


def outcome(expr, **bindings):
    """Evaluate one way; collapse into a comparable (tag, payload) pair."""
    compiled = bindings.pop("compiled")
    try:
        return ("value", evaluate(expr, compiled=compiled, **bindings))
    except OclError as exc:
        return ("error", type(exc).__name__, str(exc))


def assert_differential(expr, **bindings):
    interpreted = outcome(expr, compiled=False, **bindings)
    compiled = outcome(expr, compiled=True, **bindings)
    assert compiled == interpreted, (
        f"divergence on {expr!r}: compiled={compiled!r} "
        f"interpreted={interpreted!r}")
    return compiled


#: Expressions over the genlib demo metamodel.  Deliberately includes
#: expressions that error on some or all elements — error parity is part
#: of the contract.
CORPUS = [
    # navigation, implicit self, arithmetic, comparisons
    "self.pages >= 0",
    "self.books->size() <= self.capacity",
    "self.sequel.oclIsUndefined() or self.sequel <> self",
    "not self.name.oclIsUndefined()",
    "name",
    "pages + 1",
    "self.name.size() > 0",
    "self.pages div 7 + self.pages mod 7",
    "self.pages / 0",
    "-self.pages < 0",
    "self.library.name = self.name",
    # boolean operators, short-circuit and strictness
    "self.pages > 0 and self.pages < 10000",
    "self.books->isEmpty() or self.books->first().pages >= 0",
    "self.name.oclIsUndefined() implies self.pages = 100",
    "(self.pages > 0) xor (self.capacity > 0)",
    "1 = 1 or self.no_such_feature",
    # iterator operations
    "self.shelves->forAll(s | s.capacity >= 0)",
    "self.shelves->collect(s | s.books)->size() >= 0",
    "self.books->select(b | b.pages > 100)->size()",
    "self.books->reject(b | b.pages > 100)->notEmpty()",
    "self.books->exists(b | b.color = 'red')",
    "self.books->collectNested(b | b.tags)->size()",
    "self.books->isUnique(b | b.name)",
    "self.books->sortedBy(b | b.pages)->first()",
    "self.books->one(b | b.pages > 150)",
    "self.books->any(b | b.pages > 0)",
    "self.sequel->closure(b | b.sequel)->excludes(self)",
    "self.books->forAll(x, y | x.pages + y.pages >= 0)",
    "self.books->exists(x, y | x <> y)",
    "self.books->sortedBy(b | b.color)->size()",
    # plain collection operations
    "self.books.pages->sum()",
    "self.tags->includes('x')",
    "self.books->at(1)",
    "self.books->indexOf(self)",
    "self.tags->asSet()->size() = self.tags->size()",
    "self.books.pages->max()",
    "self.books.pages->avg()",
    "self.shelves.books->flatten()->size()",
    "self.tags->including('t')->excluding('t')->size()",
    # collection and tuple literals
    "Set{1, 2, 2, 3}->size() = 3",
    "Sequence{1..self.capacity}->sum()",
    "Sequence{1..self.name}->size()",
    "Tuple{a = 1, b = self.name}.a = 1",
    "OrderedSet{self, self}->size()",
    # type operations and allInstances
    "GBook.allInstances()->size() >= 0",
    "self.oclIsKindOf(GNamed)",
    "self.oclIsTypeOf(GBook)",
    "self.oclAsType(GBook).pages > 0",
    "self.oclIsKindOf(self.pages)",
    # string operations
    "self.name.toUpperCase().size() = self.name.size()",
    "self.name.substring(1, 2).concat('!')",
    "self.name.indexOf('a') >= 0",
    "self.name.startsWith('G') or true",
    "'12'.toInteger() = 12",
    "self.name.noSuchOp()",
    # control flow
    "let n = self.books->size() in n * 2 >= n",
    "if self.books->isEmpty() then 0 else self.books->first().pages endif",
    # undefined propagation
    "null->size() = 0",
    "self.sequel.sequel.oclIsUndefined()",
    "self.featured.pages",
    "self.sequel.pages + 1",
    # unknown operations / names
    "self.books->frobnicate()",
    "self.books->frobnicate(b | b)",
    "totally_unknown",
]


def _sample_elements(seed, size=35):
    root = demo_generator(seed).generate(size)
    return [root] + list(root.all_contents())


class TestDifferentialCorpus:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_corpus_over_generated_models(self, seed):
        elements = _sample_elements(seed)
        assert len(elements) > 10
        divergences = 0
        for expr in CORPUS:
            for element in elements:
                assert_differential(expr, self=element)
        assert divergences == 0

    def test_corpus_over_uml_models(self):
        root = uml_generator(3).generate(30)
        elements = [root] + list(root.all_contents())
        for expr in ["self.name <> null",
                     "self.oclIsKindOf(NamedElement)",
                     "self.owned_elements()->size() >= 0"]:
            for element in elements[:20]:
                assert_differential(expr, self=element)

    def test_scalar_and_binding_expressions(self):
        for expr in ["1 + 2 * 3 - 4 / 2", "7 > 3 and 2 <= 2",
                     "x * x + y", "x > y xor y > x",
                     "Sequence{x..y}->size()",
                     "'a' + 1", "1 + 'a'", "true and 1", "not 5",
                     "1 < 'a'", "Sequence{'a'}->sum()", "x.max(y).min(0)"]:
            assert_differential(expr, x=6, y=2)

    def test_model_scope_environment(self):
        pkg = demo_package()
        root = demo_generator(7).generate(30)
        model = Model("urn:diff")
        model.add_root(root)
        for compiled in (True, False):
            env = Environment.for_model(model, packages=[pkg])
            count = evaluate("GBook.allInstances()->size()", env,
                             compiled=compiled)
            scan = sum(1 for e in model.all_elements()
                       if e.meta is pkg.classifier("GBook"))
            assert count == scan


class TestInvariantParity:
    def test_holds_matches_interpreted(self):
        pkg = demo_package()
        book = pkg.classifier("GBook")
        elements = _sample_elements(11)
        expressions = [
            "self.pages >= 0",
            "self.sequel.oclIsUndefined() or self.sequel <> self",
            "self.tags->size() >= 0",
            "self.pages + self.name > 0",     # raises when name is a str
        ]
        for expression in expressions:
            fast = Invariant(book, "fast", expression, compiled=True)
            slow = Invariant(book, "slow", expression, compiled=False)
            for element in elements:
                if not element.meta.conforms_to(book):
                    continue
                results = []
                for inv in (fast, slow):
                    try:
                        results.append(("ok", inv.holds(element)))
                    except OclError as exc:
                        results.append(
                            ("err", type(exc).__name__, str(exc)))
                assert results[0] == results[1], (expression, element)

    def test_constraint_set_reports_identical(self):
        pkg = demo_package()
        root = demo_generator(5).generate(40)
        model = Model("urn:cs")
        model.add_root(root)
        expressions = [
            ("GBook", "pages-natural", "self.pages >= 0"),
            ("GShelf", "fits", "self.books->size() <= self.capacity"),
            ("GNamed", "named", "not self.name.oclIsUndefined()"),
            ("GBook", "tagged", "self.tags->forAll(t | t.size() > 0)"),
        ]
        fast = ConstraintSet("fast", compiled=True)
        slow = ConstraintSet("slow", compiled=False)
        for cls, name, expression in expressions:
            fast.add(pkg.classifier(cls), name, expression)
            slow.add(pkg.classifier(cls), name, expression)
        assert (report_signature(fast.evaluate(model))
                == report_signature(slow.evaluate(model)))
        assert (report_signature(fast.evaluate(root))
                == report_signature(slow.evaluate(root)))


class TestCaches:
    def test_text_compilation_is_cached(self):
        expression = "self.pages >= 0 and self.pages < 99991"
        before = cache_stats()
        first = compile_expression(expression)
        second = compile_expression(expression)
        after = cache_stats()
        assert first is second
        assert after["compile_hits"] >= before["compile_hits"] + 1
        assert after["parse_misses"] == before["parse_misses"] + 1

    def test_parse_cached_returns_same_ast(self):
        text = "1 + 2 * 99989"
        assert parse_cached(text) is parse_cached(text)

    def test_node_compilation_is_cached(self):
        node = parse_cached("self.pages * 99971")
        assert compile_expression(node) is compile_expression(node)

    def test_contexts_get_distinct_entries(self):
        pkg = define_package("cachepoison", "urn:test:cachepoison")
        first = define_class(pkg, "PFirst")
        add_attribute(first, "x", MInteger, 7)
        second = define_class(pkg, "PSecond")
        add_attribute(second, "x", MString, "seven")
        expression = "x"

        compiled_first = compile_expression(expression, context=first)
        compiled_second = compile_expression(expression, context=second)
        assert compiled_first is not compiled_second
        assert compile_expression(expression, context=first) \
            is compiled_first

        a = first()
        b = second()
        env_a = Environment()
        env_a.define("self", a)
        env_b = Environment()
        env_b.define("self", b)
        assert compiled_first(env_a) == 7
        assert compiled_second(env_b) == "seven"

    def test_context_specialisation_does_not_poison_other_types(self):
        # A closure compiled for one context must still evaluate
        # correctly against elements of any other metaclass: the
        # context feature is only an inline-cache hint.
        pkg = define_package("cachecross", "urn:test:cachecross")
        first = define_class(pkg, "XFirst")
        add_attribute(first, "v", MInteger, 1)
        second = define_class(pkg, "XSecond")
        add_attribute(second, "v", MInteger, 2)
        compiled = compile_expression("v + 10", context=first)
        for element, expected in ((first(), 11), (second(), 12)):
            env = Environment()
            env.define("self", element)
            assert compiled(env) == expected

    def test_invariants_share_compilations(self):
        pkg = demo_package()
        book = pkg.classifier("GBook")
        expression = "self.pages >= -99961"
        one = Invariant(book, "a", expression)
        two = Invariant(book, "b", expression)
        assert one._compiled is two._compiled
