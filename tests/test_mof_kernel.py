"""Kernel tests: features, opposites, containment, reflection,
notifications, freezing, deletion, dynamic metamodels."""

import pytest

from repro.mof import (
    Attribute,
    ChangeKind,
    ChangeRecorder,
    CompositionError,
    DynamicElement,
    Element,
    FrozenElementError,
    M_0N,
    M_11,
    MetamodelError,
    MetaPackage,
    MInteger,
    MString,
    Multiplicity,
    MultiplicityError,
    PackageBuilder,
    Reference,
    TypeConformanceError,
    UnknownFeatureError,
)
from kernel_fixture import TEST_PKG, TBook, TChapter, TLibrary, TNamed


class TestMetaclassHarvesting:
    def test_static_class_gets_metaclass(self):
        assert TBook._meta.name == "TBook"
        assert TBook._meta.package is TEST_PKG

    def test_features_collected_in_order(self):
        names = list(TBook._meta.own_features)
        assert names == ["library", "pages", "tags", "sequel", "prequel",
                         "chapters"]

    def test_inherited_features_visible(self):
        assert "name" in TBook._meta.all_features()
        assert TBook._meta.feature("name").owner is TNamed._meta

    def test_abstract_metaclass_not_instantiable(self):
        with pytest.raises(MetamodelError):
            TNamed()

    def test_conformance(self):
        assert TBook._meta.conforms_to(TNamed._meta)
        assert not TNamed._meta.conforms_to(TBook._meta)
        assert TBook._meta.conforms_to(TBook._meta)

    def test_subclasses_tracked(self):
        assert TBook._meta in TNamed._meta.subclasses

    def test_unknown_feature_raises(self):
        book = TBook()
        with pytest.raises(UnknownFeatureError):
            book.eget("nonexistent")

    def test_constructor_rejects_unknown_kwargs(self):
        with pytest.raises(UnknownFeatureError):
            TBook(nope=1)

    def test_shadowing_inherited_feature_rejected(self):
        with pytest.raises(MetamodelError):
            class Bad(TNamed):
                name = Attribute(MString)  # shadows TNamed.name


class TestAttributes:
    def test_default_value(self):
        assert TBook().pages == 100

    def test_set_and_get(self):
        book = TBook(pages=5)
        assert book.pages == 5
        book.pages = 7
        assert book.pages == 7

    def test_type_checked(self):
        book = TBook()
        with pytest.raises(TypeConformanceError):
            book.pages = "many"

    def test_bool_is_not_integer(self):
        book = TBook()
        with pytest.raises(TypeConformanceError):
            book.pages = True

    def test_many_valued_attribute(self):
        book = TBook()
        book.tags.append("scifi")
        book.tags.extend(["fantasy", "classic"])
        assert list(book.tags) == ["scifi", "fantasy", "classic"]

    def test_many_attribute_assignment_replaces(self):
        book = TBook()
        book.tags = ["a", "b"]
        book.tags = ["c"]
        assert list(book.tags) == ["c"]

    def test_eis_set(self):
        book = TBook()
        assert not book.eis_set("name")
        book.name = "x"
        assert book.eis_set("name")
        book.eunset("name")
        assert not book.eis_set("name")


class TestOppositesAndContainment:
    def test_containment_sets_container(self, library):
        lib, b1, b2 = library
        assert b1.container is lib
        assert b1.library is lib        # opposite maintained

    def test_opposite_single_single(self):
        a = TBook(name="a")
        b = TBook(name="b")
        a.sequel = b
        assert b.prequel is a
        c = TBook(name="c")
        a.sequel = c
        assert c.prequel is a
        assert b.prequel is None        # displaced

    def test_one_to_one_steals_partner(self):
        a, b, c = TBook(), TBook(), TBook()
        a.sequel = b
        c.sequel = b                    # b can only have one prequel
        assert b.prequel is c
        assert a.sequel is None

    def test_moving_between_containers(self, library):
        lib, b1, _ = library
        lib2 = TLibrary(name="lib2")
        lib2.books.append(b1)
        assert b1.container is lib2
        assert b1 not in lib.books
        assert b1.library is lib2

    def test_remove_clears_opposite(self, library):
        lib, b1, _ = library
        lib.books.remove(b1)
        assert b1.library is None
        assert b1.container is None

    def test_set_single_ref_to_none_unlinks(self, library):
        lib, b1, _ = library
        b1.library = None
        assert b1 not in lib.books

    def test_setting_inverse_adds_to_collection(self):
        lib = TLibrary()
        book = TBook()
        book.library = lib
        assert book in lib.books
        assert book.container is lib

    def test_self_containment_rejected(self):
        # build a dynamic class that contains itself
        pkg = (PackageBuilder("cyc")
               .clazz("Node").ref("children", "Node", containment=True,
                                  multiplicity=M_0N)
               .build())
        Node = pkg.classifier("Node")
        n = Node()
        with pytest.raises(CompositionError):
            n.children.append(n)

    def test_ancestor_containment_rejected(self):
        pkg = (PackageBuilder("cyc2")
               .clazz("Node2").ref("children", "Node2", containment=True,
                                   multiplicity=M_0N)
               .build())
        Node = pkg.classifier("Node2")
        a, b = Node(), Node()
        a.children.append(b)
        with pytest.raises(CompositionError):
            b.children.append(a)

    def test_contents_and_all_contents(self, library):
        lib, b1, b2 = library
        ch = TChapter(name="c1")
        b1.chapters.append(ch)
        assert lib.contents() == [b1, b2]
        assert list(lib.all_contents()) == [b1, ch, b2]
        assert ch.root() is lib


class TestCollectionSemantics:
    def test_uniqueness_on_append(self, library):
        lib, b1, _ = library
        before = len(lib.books)
        lib.books.append(b1)            # no-op: already present
        assert len(lib.books) == before

    def test_insert_position(self):
        lib = TLibrary()
        b1, b2, b3 = TBook(name="1"), TBook(name="2"), TBook(name="3")
        lib.books.extend([b1, b3])
        lib.books.insert(1, b2)
        assert [b.name for b in lib.books] == ["1", "2", "3"]

    def test_move(self, library):
        lib, b1, b2 = library
        lib.books.move(0, b2)
        assert list(lib.books) == [b2, b1]

    def test_pop_and_discard(self, library):
        lib, b1, b2 = library
        popped = lib.books.pop()
        assert popped is b2 and popped.library is None
        lib.books.discard(popped)       # absent: no error
        lib.books.remove(b1)
        with pytest.raises(ValueError):
            lib.books.remove(b1)

    def test_clear(self, library):
        lib, b1, b2 = library
        lib.books.clear()
        assert len(lib.books) == 0
        assert b1.container is None and b2.container is None

    def test_upper_bound_enforced(self):
        pkg = (PackageBuilder("bnd")
               .clazz("Pair").ref("items", "Pair",
                                  multiplicity=Multiplicity(0, 2))
               .build())
        Pair = pkg.classifier("Pair")
        p = Pair()
        p.items.extend([Pair(), Pair()])
        with pytest.raises(MultiplicityError):
            p.items.append(Pair())

    def test_typecheck_on_append(self, library):
        lib, _, _ = library
        with pytest.raises(TypeConformanceError):
            lib.books.append(TLibrary())


class TestNotifications:
    def test_attribute_set_notifies(self):
        book = TBook()
        recorder = ChangeRecorder()
        book.observe(recorder)
        book.pages = 42
        assert len(recorder) == 1
        note = recorder.notifications[0]
        assert note.kind is ChangeKind.SET and note.new == 42

    def test_reference_add_notifies_both_sides(self):
        lib, book = TLibrary(), TBook()
        rec_lib, rec_book = ChangeRecorder(), ChangeRecorder()
        lib.observe(rec_lib)
        book.observe(rec_book)
        lib.books.append(book)
        kinds = {n.kind for n in rec_lib.notifications}
        assert ChangeKind.ADD in kinds
        assert any(n.kind is ChangeKind.SET for n in rec_book.notifications)

    def test_unobserve(self):
        book = TBook()
        recorder = ChangeRecorder()
        book.observe(recorder)
        book.unobserve(recorder)
        book.pages = 1
        assert len(recorder) == 0

    def test_no_notification_for_noop_set(self):
        book = TBook(pages=3)
        recorder = ChangeRecorder()
        book.observe(recorder)
        book.pages = 3
        assert len(recorder) == 0


class TestFreezeAndDelete:
    def test_frozen_blocks_mutation(self, library):
        lib, b1, _ = library
        lib.freeze()
        with pytest.raises(FrozenElementError):
            lib.name = "other"
        with pytest.raises(FrozenElementError):
            b1.pages = 1                # recursive freeze
        lib.unfreeze()
        lib.name = "ok"

    def test_delete_detaches_everything(self, library):
        lib, b1, b2 = library
        b1.sequel = b2
        b1.delete()
        assert b1 not in lib.books
        assert b2.prequel is None

    def test_delete_of_referenced_element(self, library):
        lib, b1, _ = library
        lib.featured = b1
        b1.delete()
        # featured is a plain ref without opposite: deletion cannot see it,
        # but removing b1 from books must have worked
        assert b1 not in lib.books


class TestDynamicMetamodels:
    def test_builder_roundtrip(self):
        pkg = (PackageBuilder("dyn")
               .enum("Color", ["red", "green"])
               .clazz("Shape", abstract=True).attr("name", MString)
               .clazz("Circle", superclasses=["Shape"])
               .attr("radius", MInteger, 1)
               .ref("next", "Circle")
               .build())
        Circle = pkg.classifier("Circle")
        c = Circle(name="c", radius=5)
        assert isinstance(c, DynamicElement)
        assert c.radius == 5
        assert c.meta.conforms_to(pkg.classifier("Shape"))

    def test_dynamic_enum_attribute(self):
        builder = PackageBuilder("dyn2")
        builder.enum("Mode", ["fast", "slow"])
        mode = builder.package.classifier("Mode")
        builder.clazz("Engine").attr("mode", mode, "fast")
        pkg = builder.build()
        engine = pkg.classifier("Engine")()
        assert engine.mode == "fast"
        engine.mode = "slow"
        with pytest.raises(TypeConformanceError):
            engine.mode = "warp"

    def test_dynamic_unknown_feature(self):
        pkg = PackageBuilder("dyn3").clazz("Empty").build()
        empty = pkg.classifier("Empty")()
        with pytest.raises(UnknownFeatureError):
            empty.bogus = 1
        with pytest.raises(AttributeError):
            _ = empty.bogus

    def test_dynamic_static_mixed_inheritance(self):
        pkg = MetaPackage("dynmix")
        from repro.mof import define_class, add_attribute
        meta = define_class(pkg, "SpecialBook", superclasses=[TBook])
        add_attribute(meta, "isbn", MString)
        special = meta()
        special.name = "s"
        special.isbn = "123"
        assert special.meta.conforms_to(TBook._meta)
        lib = TLibrary()
        lib.books.append(special)       # conforms to TBook
        assert special.library is lib

    def test_abstract_dynamic_not_instantiable(self):
        pkg = PackageBuilder("dyn4").clazz("Base", abstract=True).build()
        with pytest.raises(MetamodelError):
            pkg.classifier("Base")()


class TestRepr:
    def test_named_repr(self):
        assert "b" in repr(TBook(name="b"))

    def test_dynamic_repr(self):
        pkg = (PackageBuilder("dynr").clazz("Thing").attr("name", MString)
               .build())
        thing = pkg.classifier("Thing")(name="t")
        assert "Thing" in repr(thing) and "t" in repr(thing)
