"""Chaos suite: seeded fault injection across every protected layer.

Each test arms a deterministic :class:`repro.faults.FaultPlan` against
one layer's probe site and asserts the layer's robustness contract:

* ``kernel.write``  — an aborted transaction restores the exact
  pre-transaction model (``repro.mof.compare``);
* ``transform.rule`` — the failure policy skips/retries with per-rule
  rollback and the run survives;
* ``checker.run``   — the watch loop quarantines crashing checkers and
  keeps revalidating instead of dying;
* ``parallel.worker`` — a sharded check whose worker dies unreported
  degrades to an in-process re-check, byte-identical output;
* ``io.*``          — an interrupted save never corrupts the previous
  generation on disk;
* ``wal.append``    — a failed write-ahead append rolls the edit back
  in memory *and* on disk, and the replay commits durably;
* ``wal.replay``    — interrupted crash recovery is retryable and
  idempotent;
* ``net.*``         — socket faults kill single connections, never the
  server, and a RetryPolicy client converges anyway.

Every fault injected anywhere in the module is tallied; the final test
enforces the chaos budget (>= 500 injected faults per run), topping up
with extra kernel-transaction rounds if the parametrised cases came in
under — so the budget holds for any seed drift, and every top-up round
is itself a verified abort/restore cycle.
"""

from __future__ import annotations

import collections
import os

import pytest

from repro.generate import EditFuzzer, demo_generator, demo_package, \
    uml_generator
from repro import faults
from repro.mof import compare, transaction
from repro.mof.repository import Model
from repro.xmi import load_model, read_json, save_model, write_json

#: module-wide tally of injected faults, by probe site
TALLY = collections.Counter()
CHAOS_BUDGET = 500

#: CI's chaos matrix sets this (0/1/2) so each leg replays a different
#: deterministic fault schedule against the same workloads
SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED_OFFSET", "0")) * 1000


def _plan_seed(n: int) -> int:
    return n + SEED_OFFSET


def _tally(plan):
    for site, _ordinal in plan.injected:
        TALLY[site] += 1
    return plan.fault_count


def _snapshot_lens(root, packages):
    """Clone *root* through the JSON round trip — the equality lens that
    is insensitive to serializer-invisible state (dangling refs etc.)."""
    model = Model("urn:test:chaos")
    model.add_root(root)
    try:
        return read_json(write_json(model), packages).roots[0]
    finally:
        model.remove_root(root)


def _chaos_round(root, generator, packages, plan, edits=40, seed=0):
    """One transaction of fuzzed edits under *plan*.

    Returns True when a fault aborted the transaction; in that case the
    model has been verified compare-identical to its pre-round state.
    """
    before = _snapshot_lens(root, packages)
    fuzzer = EditFuzzer(root, seed=seed, generator=generator)
    try:
        with faults.injected(plan):
            with transaction():
                fuzzer.apply_random_edits(edits)
    except faults.InjectedFault:
        after = _snapshot_lens(root, packages)
        result = compare(before, after)
        assert result.identical, (
            f"aborted transaction did not restore the model "
            f"(plan {plan!r}):\n{result}")
        return True
    return False


# ---------------------------------------------------------------------------
# Kernel: aborted transactions restore the model
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(25))
def test_kernel_write_chaos(seed):
    generator = demo_generator(seed)
    packages = [demo_package()]
    root = generator.generate(15 + seed % 10)
    aborted = 0
    for round_no in range(3):
        plan = faults.FaultPlan(seed=_plan_seed(seed * 101 + round_no),
                                rate=0.12,
                                sites=["kernel.write"])
        if _chaos_round(root, generator, packages, plan,
                        seed=seed * 7 + round_no):
            aborted += 1
        _tally(plan)
    # rate 0.12 over ~40 edits: each round all but certainly aborts
    assert aborted >= 1


def test_kernel_fault_leaves_single_operation_unapplied():
    """Per-operation atomicity: the probe fires before the mutation, so
    even without a transaction a faulted op changes nothing."""
    from kernel_fixture import TBook, TLibrary
    library = TLibrary(name="lib")
    book = TBook(name="b")
    library.books.append(book)
    plan = faults.FaultPlan(seed=0, rate=1.0, sites=["kernel.write"])
    with faults.injected(plan):
        with pytest.raises(faults.InjectedFault):
            book.pages = 5
        with pytest.raises(faults.InjectedFault):
            library.books.remove(book)
    _tally(plan)
    assert book.pages == 100
    assert list(library.books) == [book]


# ---------------------------------------------------------------------------
# Transform: failure policies over faulting rules
# ---------------------------------------------------------------------------

def _copy_transformation():
    from repro.transform import Transformation, rule
    from repro.uml import Clazz

    @rule(Clazz, name="copy-class")
    def copy_class(source, ctx):
        return Clazz(name=(source.name or "anon") + "_psm")

    return Transformation("chaos-copy", [copy_class])


@pytest.mark.parametrize("seed", range(5))
def test_transform_skip_policy_survives_faults(seed):
    from repro.transform import SKIP
    generator = uml_generator(seed)
    root = generator.generate(40)
    transformation = _copy_transformation()
    clean = transformation.run(root)
    plan = faults.FaultPlan(seed=_plan_seed(seed), rate=0.35,
                            sites=["transform.rule"])
    with faults.injected(plan):
        result = transformation.run(root, failure_policy=SKIP)
    count = _tally(plan)
    # every fault became one skip diagnostic, nothing else was lost
    assert len(result.failures) == count
    assert all(d.code == "rule-failed" for d in result.failures)
    assert len(result.trace) == len(clean.trace) - count
    if count:
        assert not result.ok


def test_transform_fail_fast_reraises_and_rolls_back():
    generator = uml_generator(99)
    root = generator.generate(30)
    transformation = _copy_transformation()
    plan = faults.FaultPlan(seed=0, at={"transform.rule": [2]})
    with faults.injected(plan):
        with pytest.raises(faults.InjectedFault):
            transformation.run(root)
    _tally(plan)


def test_transform_retry_policy_defeats_transient_fault():
    from repro.transform import FailurePolicy
    generator = uml_generator(7)
    root = generator.generate(30)
    transformation = _copy_transformation()
    clean = transformation.run(root)
    # fault only the first firing: a single retry must recover fully
    plan = faults.FaultPlan(seed=0, at={"transform.rule": [1]})
    with faults.injected(plan):
        result = transformation.run(
            root, failure_policy=FailurePolicy(mode="retry", retries=1))
    _tally(plan)
    assert result.ok
    assert len(result.trace) == len(clean.trace)


def test_transform_retry_exhaustion_falls_through_to_skip():
    from repro.transform import FailurePolicy
    generator = uml_generator(7)
    root = generator.generate(30)
    transformation = _copy_transformation()
    # three consecutive firings fault: retries=1 exhausts on ordinal 1+2
    plan = faults.FaultPlan(seed=0, at={"transform.rule": [1, 2]})
    with faults.injected(plan):
        result = transformation.run(
            root, failure_policy=FailurePolicy(mode="retry", retries=1,
                                               then="skip"))
    _tally(plan)
    assert len(result.failures) == 1
    assert "rule-failed" == result.failures[0].code


# ---------------------------------------------------------------------------
# Checkers: the watch loop quarantines instead of dying
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(3))
def test_checker_chaos_quarantines_and_recovers(seed):
    from repro.incremental import IncrementalEngine, report_signature
    from repro.mof.validate import validate_tree
    generator = demo_generator(seed)
    root = generator.generate(35)
    engine = IncrementalEngine(root, wellformed=False, lint=False)
    fuzzer = EditFuzzer(root, seed=seed, generator=generator)
    plan = faults.FaultPlan(seed=_plan_seed(seed), rate=0.25,
                            sites=["checker.run"])
    with faults.injected(plan):
        for _ in range(4):
            engine.revalidate()          # must never raise
            fuzzer.apply_random_edits(3)
    count = _tally(plan)
    assert count > 0
    assert engine.stats.checker_failures == count
    assert engine.quarantined()
    assert engine.quarantine_report()
    # disarmed, the quarantined units come back as their backoff expires
    # and the diagnostics reconverge on the from-scratch oracle
    for _ in range(80):
        if not engine.quarantined():
            break
        engine.revalidate()
    assert not engine.quarantined()
    assert report_signature(engine.revalidate()) \
        == report_signature(validate_tree(root))
    engine.detach()


def test_session_watch_reports_quarantine():
    from repro.session import Session
    generator = demo_generator(11)
    root = generator.generate(25)
    plan = faults.FaultPlan(seed=_plan_seed(3), rate=0.4,
                            sites=["checker.run"])
    with faults.injected(plan):
        # watch() primes the engine: crashes hit during the first pass
        engine = Session(root).watch(families=("structural", "invariant"))
    _tally(plan)
    report = engine.quarantine_report()
    assert report
    assert all("InjectedFault" in line and "retry at pass" in line
               for line in report)
    engine.detach()


# ---------------------------------------------------------------------------
# IO: interrupted saves never corrupt the previous generation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(8))
def test_io_chaos_interrupted_saves(seed, tmp_path):
    packages = [demo_package()]
    generator = demo_generator(seed)
    root = generator.generate(12)
    model = Model("urn:test:iochaos")
    model.add_root(root)
    path = tmp_path / "chaos.json"
    save_model(model, path)
    committed = _snapshot_lens(root, packages)
    fuzzer = EditFuzzer(root, seed=seed, generator=generator)
    plan = faults.FaultPlan(seed=_plan_seed(seed * 13), rate=0.35,
                            sites=["io"])
    interrupted = 0
    for _ in range(12):
        fuzzer.apply_random_edits(4)
        try:
            with faults.injected(plan):
                save_model(model, path)
        except faults.InjectedFault:
            interrupted += 1
            # disk still holds the last successful generation
            loaded = load_model(path, [demo_package()])
            result = compare(committed, loaded.roots[0])
            assert result.identical, str(result)
        else:
            committed = _snapshot_lens(root, packages)
    _tally(plan)
    assert interrupted > 0
    # and the file never went corrupt or lost its seal
    final = load_model(path, [demo_package()])
    assert compare(committed, final.roots[0]).identical


# ---------------------------------------------------------------------------
# Parallel: dead workers degrade to in-process re-checks, never drop
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(3))
def test_parallel_worker_chaos_degrades_not_drops(seed):
    import json
    from repro.session import Session
    root = demo_generator(seed).generate(40)
    model = Model(f"urn:chaos:par{seed}")
    model.add_root(root)
    session = Session(model)
    families = ["structural", "invariant"]
    expected = json.dumps(session.check(families).to_json(),
                          sort_keys=True)
    plan = faults.FaultPlan(seed=_plan_seed(seed * 17), rate=0.5,
                            sites=["parallel.worker"])
    with faults.injected(plan):
        with pytest.warns(RuntimeWarning, match="exited without reporting"):
            # rate 0.5 over 3 worker launches per check x 6 checks: every
            # seed in the CI matrix kills at least one worker, and every
            # degraded document must still match the sequential bytes
            for _ in range(6):
                got = json.dumps(
                    session.check(families, workers=3).to_json(),
                    sort_keys=True)
                assert got == expected
    count = _tally(plan)
    assert count > 0


# ---------------------------------------------------------------------------
# Server durability: WAL appends/replay and the TCP transport
# ---------------------------------------------------------------------------

def _server_corpus(server, seed, size=50):
    from repro.session import Session
    session = Session.generate("demo", size=size, seed=seed, repair=True)
    server.attach("main", session)
    state = server.repo("main")
    eids = []
    for root in state.model.roots:
        for element in [root] + list(root.all_contents()):
            feature = element.meta.all_features().get("name")
            if feature is not None and not feature.many:
                eids.append(element.eid)
    return state, eids


@pytest.mark.parametrize("seed", range(4))
def test_wal_append_chaos(seed, tmp_path):
    """A faulted WAL append rolls the edit back on disk *and* in memory;
    the replay then commits, and recovery yields exactly the
    acknowledged transactions — byte-identical check documents."""
    from repro.server import InProcessClient, ModelServer, RemoteError
    from repro.session import canonical_check_document

    server = ModelServer(wal_dir=str(tmp_path))
    state, eids = _server_corpus(server, seed)
    plan = faults.FaultPlan(seed=_plan_seed(seed * 23), rate=0.3,
                            sites=["wal.append"],
                            at={"wal.append": [2, 5]})
    epoch = 0
    with InProcessClient(server) as client:
        with faults.injected(plan):
            for i in range(12):
                ops = [{"op": "set", "element": eids[i % len(eids)],
                        "feature": "name", "value": f"chaos{seed}-{i}"}]
                while True:
                    try:
                        result = client.request(
                            "edit-txn", repo="main",
                            base_epoch=epoch, ops=ops)
                        epoch = result["epoch"]
                        break
                    except RemoteError as error:
                        assert error.code == "txn-failed"
                        assert error.data["replayable"] is True
                        assert state.epoch == epoch   # rolled back
    count = _tally(plan)
    assert count >= 2
    assert epoch == 12                    # every edit eventually landed
    live = canonical_check_document(state.session.check().to_json())
    recovered = ModelServer(wal_dir=str(tmp_path))
    again = recovered.repo("main")
    assert again.epoch == 12
    assert canonical_check_document(
        again.session.check().to_json()) == live


def test_wal_replay_chaos(tmp_path):
    """Recovery interrupted by injected faults is retryable and
    idempotent: once a retry gets through, the result is identical to a
    never-faulted recovery."""
    from repro.server import InProcessClient, ModelServer
    from repro.session import canonical_check_document

    server = ModelServer(wal_dir=str(tmp_path))
    state, eids = _server_corpus(server, seed=2)
    with InProcessClient(server) as client:
        for i in range(5):
            client.request("edit-txn", repo="main", base_epoch=i,
                           ops=[{"op": "set", "element": eids[i],
                                 "feature": "name", "value": f"r{i}"}])
    want = canonical_check_document(state.session.check().to_json())
    # firings accumulate across attempts: attempt 1 dies at its 2nd
    # replayed txn, attempt 2 (firings 6-10) at its 2nd as well
    plan = faults.FaultPlan(seed=0, at={"wal.replay": [2, 7]})
    attempts = 0
    with faults.injected(plan):
        while True:
            attempts += 1
            try:
                recovered = ModelServer(wal_dir=str(tmp_path))
                break
            except faults.InjectedFault:
                assert attempts < 10
    assert _tally(plan) == 2
    assert attempts == 3
    got = recovered.repo("main")
    assert got.epoch == 5
    assert canonical_check_document(
        got.session.check().to_json()) == want


@pytest.mark.parametrize("seed", range(3))
def test_net_chaos_retrying_client_converges(seed):
    """``net.read``/``net.write`` faults kill individual connections,
    never the server; a RetryPolicy client reconnects and every edit it
    saw acknowledged is present afterwards."""
    import random as random_module

    from repro.server import (ModelServer, RemoteError, RetryPolicy,
                              TcpClient, TcpServer, TransportError)

    server = ModelServer()
    state, eids = _server_corpus(server, seed, size=40)
    tcp = TcpServer(server).start()
    host, port = tcp.address
    plan = faults.FaultPlan(seed=_plan_seed(seed * 31), rate=0.10,
                            sites=["net.read", "net.write"],
                            at={"net.read": [3]})
    acked = {}
    gave_up = 0
    try:
        with faults.injected(plan):
            client = TcpClient(
                host, port, timeout=5.0,
                retry=RetryPolicy(attempts=10, base_delay=0.01,
                                  max_delay=0.05,
                                  rng=random_module.Random(seed)))
            epoch = state.epoch
            for i in range(15):
                eid = eids[i]
                value = f"net{seed}-{i}"
                try:
                    result = client.request(
                        "edit-txn", repo="main", base_epoch=epoch,
                        ops=[{"op": "set", "element": eid,
                              "feature": "name", "value": value}])
                    epoch = result["epoch"]
                    acked[eid] = value
                except (TransportError, RemoteError):
                    gave_up += 1          # never acknowledged: no claim
                    epoch = state.epoch   # resync for the next edit
            try:
                client.close()
            except Exception:
                pass
        count = _tally(plan)
        assert count >= 1
        # the server survived the chaos: a clean client still works,
        # and every acknowledged edit is in the model
        with TcpClient(host, port) as probe:
            document = probe.request("check", repo="main")
            assert document["repo"] == "main"
        for eid, value in acked.items():
            element = state.model.index().resolve_eid(eid)
            assert element.eget("name") == value, (
                f"acknowledged edit lost (seed {seed}, eid {eid})")
        assert len(acked) + gave_up == 15
        assert state.epoch == state.edits_applied
    finally:
        tcp.shutdown()


# ---------------------------------------------------------------------------
# The chaos budget
# ---------------------------------------------------------------------------

def test_chaos_budget_met():
    """>= 500 faults injected per run, topping up with extra verified
    kernel abort/restore rounds if the fixed cases fell short."""
    packages = [demo_package()]
    extra_seed = 50_000
    while sum(TALLY.values()) < CHAOS_BUDGET and extra_seed < 51_000:
        generator = demo_generator(extra_seed)
        root = generator.generate(15)
        plan = faults.FaultPlan(seed=_plan_seed(extra_seed), rate=0.2,
                                sites=["kernel.write"])
        _chaos_round(root, generator, packages, plan, edits=25,
                     seed=extra_seed)
        _tally(plan)
        extra_seed += 1
    total = sum(TALLY.values())
    assert total >= CHAOS_BUDGET, dict(TALLY)
    # the tally spans every protected layer, not just one
    assert {"kernel.write", "transform.rule", "checker.run",
            "parallel.worker", "wal.append", "wal.replay"} <= set(TALLY)
    assert any(site.startswith("io.") for site in TALLY)
    assert any(site.startswith("net.") for site in TALLY)
