"""Tests for deployment allocation and interaction mining."""

import pytest

from repro.mof import validate_tree
from repro.platforms import PIM_TO_PSM, allocate, deployment_fits
from repro.uml import (
    Artifact,
    Component,
    Connector,
    Deployment,
    ExecutionNode,
    Interface,
    UseCase,
    run_wellformed_rules,
)
from repro.validation import (
    Scenario,
    interaction_from_trace,
    promote_to_regression,
    scenario_from_interaction,
)


@pytest.fixture
def psm(cruise_model, posix):
    return PIM_TO_PSM.run(cruise_model.model, posix).primary_root


class TestAllocation:
    def test_components_per_active_class(self, psm, posix):
        deployment = allocate(psm, posix)
        component_names = {c.name for c in deployment.packaged_elements
                           if isinstance(c, Component)}
        assert {"CruiseControllerComponent", "SpeedSensorComponent",
                "ThrottleActuatorComponent"} <= component_names

    def test_channels_become_wired_ports(self, psm, posix):
        deployment = allocate(psm, posix)
        connectors = [c for c in deployment.packaged_elements
                      if isinstance(c, Connector)]
        assert {c.name for c in connectors} == {"measures_queue",
                                                "drives_queue"}
        for connector in connectors:
            ports = connector.ports()
            assert len(ports) == 2
            # one required, one provided, same interface
            required = ports[0].required[0]
            provided = ports[1].provided[0]
            assert required is provided
            assert isinstance(required, Interface)
            assert {op.name for op in required.all_operations()} == \
                {"send", "receive"}

    def test_artifacts_deployed_on_node(self, psm, posix):
        deployment = allocate(psm, posix)
        nodes = [n for n in deployment.packaged_elements
                 if isinstance(n, ExecutionNode)]
        assert len(nodes) == 1
        node = nodes[0]
        assert node.is_real_time
        assert node.memory_kb == 262144
        artifacts = [a for a in deployment.packaged_elements
                     if isinstance(a, Artifact)]
        assert len(artifacts) == 3
        assert all(a in node.deployed_artifacts for a in artifacts)
        deployments = [d for d in deployment.packaged_elements
                       if isinstance(d, Deployment)]
        assert len(deployments) == 3

    def test_deployment_model_is_valid(self, psm, posix):
        deployment = allocate(psm, posix)
        assert validate_tree(deployment).ok

    def test_fits_check(self, psm, posix):
        assert deployment_fits(psm, posix)
        assert not deployment_fits(
            psm, posix,
            instances={"CruiseController_thread": 10_000_000})


class TestInteractionMining:
    def test_mined_interaction_is_wellformed(self, cruise_collaboration,
                                             cruise_model):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.run()
        interaction = interaction_from_trace(collab)
        cruise_model.model.add(interaction)
        assert not interaction.floating_lifelines()
        report = run_wellformed_rules(cruise_model.model)
        assert report.ok, str(report)
        assert interaction.message_names() == ["apply"]
        assert interaction.lifeline("ctl").represents.name == \
            "CruiseController"

    def test_mined_scenario_replays(self, cruise_collaboration):
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.send("ctl", "tick")
        collab.run()
        interaction = interaction_from_trace(collab)
        scenario = scenario_from_interaction(interaction)
        scenario.stimuli = [("ctl", "engage"), ("ctl", "tick")]
        result = scenario.run(cruise_collaboration())
        assert result.passed, result.explain()

    def test_promote_to_regression(self, cruise_collaboration):
        usecase = UseCase(name="Engage")
        collab = cruise_collaboration()
        collab.start()
        collab.send("ctl", "engage")
        collab.run()
        interaction = promote_to_regression(usecase, collab)
        assert usecase.is_testable()
        assert interaction in usecase.scenarios
