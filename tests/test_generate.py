"""Unit tests for the :mod:`repro.generate` subsystem.

Covers the migration satellite contracts (the ``tests/modelgen.py``
shim warns and re-exports), the narrowed mutation-error policy (a
planted kernel bug must surface through the fuzzer), the
``violate_lower_bounds`` flag, the repair engine's per-diagnostic
strategies, coverage target enumeration, and the dual-mode
``python -m repro generate`` CLI verb.
"""

from __future__ import annotations

import importlib
import json
import sys

import pytest

from repro.generate import (
    PACKAGES,
    CoverageMap,
    DirectedGenerator,
    EditFuzzer,
    GenerationResult,
    ModelGenerator,
    RepairEngine,
    demo_generator,
    demo_package,
    generate_model,
    make_generator,
    uml_generator,
)
from repro.mof import (
    Element,
    M_1N,
    MInteger,
    MString,
    MultiplicityError,
    add_attribute,
    add_reference,
    define_class,
    define_package,
)
from repro.mof.repository import Model
from repro.session import Session


# ---------------------------------------------------------------------------
# the deprecated tests/modelgen.py shim
# ---------------------------------------------------------------------------

def test_modelgen_shim_warns_and_reexports():
    sys.modules.pop("modelgen", None)
    with pytest.warns(DeprecationWarning, match="moved to repro.generate"):
        import modelgen
    # the shim hands back the *same* objects, not copies
    assert modelgen.ModelGenerator is ModelGenerator
    assert modelgen.EditFuzzer is EditFuzzer
    assert modelgen.demo_generator is demo_generator
    assert modelgen.uml_generator is uml_generator
    assert modelgen.demo_package is demo_package


def test_repro_generate_imports_cleanly_under_warning_hygiene():
    # in-repo suites import repro.generate directly; importing it must
    # not trip -W error::DeprecationWarning (the CI hygiene job)
    import os
    import subprocess
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    proc = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning",
         "-c", "import repro.generate"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr


# ---------------------------------------------------------------------------
# narrowed _MUTATION_ERRORS: planted kernel bugs surface
# ---------------------------------------------------------------------------

def test_fuzzer_surfaces_planted_value_error(monkeypatch):
    from repro.generate.random import _MUTATION_ERRORS
    assert ValueError not in _MUTATION_ERRORS

    generator = demo_generator(seed=5)
    root = generator.generate(30)
    fuzzer = EditFuzzer(root, seed=5, generator=generator)

    def broken_eset(self, name, value):
        raise ValueError("planted kernel bug")

    monkeypatch.setattr(Element, "eset", broken_eset)
    with pytest.raises(ValueError, match="planted kernel bug"):
        for _ in range(200):
            fuzzer.random_edit()


def test_fuzzer_still_absorbs_typed_kernel_rejections(monkeypatch):
    generator = demo_generator(seed=6)
    root = generator.generate(30)
    fuzzer = EditFuzzer(root, seed=6, generator=generator)

    def rejecting_eset(self, name, value):
        raise MultiplicityError("kernel says no")

    monkeypatch.setattr(Element, "eset", rejecting_eset)
    # typed rejections are part of the mutation contract: the op
    # reports "not applicable" instead of raising
    for _ in range(40):
        fuzzer._op_set_attr()


# ---------------------------------------------------------------------------
# violate_lower_bounds
# ---------------------------------------------------------------------------

def _lower_bound_package():
    pkg = define_package("lbtest", "urn:test:lbtest")
    team = define_class(pkg, "Team")
    member = define_class(pkg, "Member")
    add_attribute(member, "name", MString)
    add_reference(team, "members", member, containment=True,
                  multiplicity=M_1N)
    add_attribute(team, "label", MString, multiplicity=M_1N)
    return pkg


def _unsatisfied(root):
    from repro.mof.validate import validate_tree
    return [d for d in validate_tree(root).diagnostics
            if d.code == "multiplicity"]


def test_violate_lower_bounds_default_leaves_bounds_to_chance():
    pkg = _lower_bound_package()
    generator = ModelGenerator(pkg, seed=0, root_class="Team")
    assert generator.violate_lower_bounds is True
    root = generator.instantiate(generator.root_class)
    # a bare Team violates both 1..* bounds and the default profile
    # leaves it that way (fuzzer profiles need unsatisfied models)
    assert _unsatisfied(root)


def test_violate_lower_bounds_off_fills_every_bound():
    pkg = _lower_bound_package()
    generator = ModelGenerator(pkg, seed=0, root_class="Team",
                               violate_lower_bounds=False)
    root = generator.generate(6)
    assert not _unsatisfied(root)
    for team in [root] + [e for e in root.all_contents()
                          if e.meta.name == "Team"]:
        assert len(team.eget("members")) >= 1
        assert len(team.eget("label")) >= 1


def test_corpus_entry_points_default_to_satisfying_bounds():
    assert make_generator("demo").violate_lower_bounds is False
    assert demo_generator().violate_lower_bounds is True
    assert uml_generator().violate_lower_bounds is True


# ---------------------------------------------------------------------------
# the repair engine
# ---------------------------------------------------------------------------

def _planted_demo_model():
    """A small demo model with one violation per repair strategy."""
    pkg = demo_package()
    lib = pkg.classifier("GLibrary").instantiate()
    shelf = pkg.classifier("GShelf").instantiate()
    lib.eget("shelves").append(shelf)
    shelf.eset("capacity", 1)
    books = []
    for index in range(4):
        book = pkg.classifier("GBook").instantiate()
        book.eset("name", f"b{index}")
        book.eset("pages", 10)
        shelf.eget("books").append(book)
        books.append(book)
    books[0].eset("pages", -3)              # violates positive-pages
    books[1].eset("sequel", books[1])       # violates sequel-not-self
    author = pkg.classifier("GAuthor").instantiate()
    lib.eget("staff").append(author)        # violates staff-named
    model = Model("urn:test:planted")
    model.add_root(lib)
    return model, lib, shelf, books


def test_repair_reaches_zero_errors_on_planted_violations():
    model, lib, shelf, books = _planted_demo_model()
    session = Session(model)
    assert session.check().errors
    engine = RepairEngine(session, generator=demo_generator(0), seed=0)
    report = engine.repair()
    assert report.converged, report.render()
    assert not session.check().errors
    assert report.initial_errors >= 3
    actions = {edit.action for edit in report.edits}
    assert "retype" in actions


def test_repair_informed_retype_prefers_raising_capacity_over_pruning():
    model, lib, shelf, books = _planted_demo_model()
    engine = RepairEngine(model, generator=demo_generator(0), seed=0)
    report = engine.repair()
    assert report.converged
    # the over-capacity shelf keeps its books; capacity grows to fit
    assert len(shelf.eget("books")) == 4
    assert shelf.eget("capacity") >= 4


def test_repair_report_json_shape():
    model, *_ = _planted_demo_model()
    report = RepairEngine(model, generator=demo_generator(0)).repair()
    doc = report.to_json()
    assert doc["converged"] is True
    assert doc["remaining_errors"] == 0
    assert doc["edits"] and all(
        set(e) == {"action", "code", "path", "detail"}
        for e in doc["edits"])
    assert "converged" in report.render()


def test_repair_is_deterministic_for_a_seed():
    def run():
        model, *_ = _planted_demo_model()
        engine = RepairEngine(model, generator=demo_generator(0), seed=3)
        report = engine.repair()
        return [(e.action, e.code, e.detail) for e in report.edits]
    assert run() == run()


# ---------------------------------------------------------------------------
# coverage instrumentation
# ---------------------------------------------------------------------------

def test_coverage_targets_enumerate_the_demo_universe():
    coverage = CoverageMap(demo_generator(0))
    assert sorted(coverage.metaclass_targets.values()) == [
        "GAuthor", "GBook", "GLibrary", "GShelf"]
    assert sorted(coverage.end_targets.values()) == [
        "GBook.authors", "GBook.sequel", "GLibrary.featured",
        "GLibrary.shelves", "GLibrary.staff", "GShelf.books"]
    # one short-circuit decision (sequel-not-self's `or`), two outcomes
    assert sorted(coverage.branch_targets) == [
        "GBook::sequel-not-self#0:false", "GBook::sequel-not-self#0:true"]


def test_coverage_measure_scores_a_finished_model():
    generator = demo_generator(1)
    root = generator.generate(120)
    coverage = CoverageMap(generator).measure(root)
    report = coverage.report()
    assert report.metaclasses[0] == report.metaclasses[1]
    assert 0 < report.end_fraction <= 1.0
    doc = report.to_json()
    assert doc["metaclasses"]["total"] == 4
    assert "coverage:" in report.render()


def test_directed_generator_records_live_and_completes_faster():
    directed = make_generator("demo", seed=2, directed=True)
    assert isinstance(directed, DirectedGenerator)
    directed.generate(40)
    assert directed.coverage.structural_complete, \
        directed.coverage.report().to_json()


# ---------------------------------------------------------------------------
# generate_model / Session.generate
# ---------------------------------------------------------------------------

def test_generate_model_repairs_to_zero_errors():
    result = generate_model("demo", size=200, seed=0, repair=True)
    assert isinstance(result, GenerationResult)
    assert result.repair is not None and result.repair.converged
    assert not result.session().check().errors
    assert result.n_elements >= 150
    # stable ids: containment-order reseating
    assert result.root.eid == "g0"


def test_generate_model_rejects_unknown_package():
    with pytest.raises(ValueError, match="unknown generation package"):
        generate_model("nope", size=10)
    assert PACKAGES == ("demo", "uml")


def test_session_generate_classmethod():
    session = Session.generate("demo", size=150, seed=4)
    assert isinstance(session, Session)
    assert session.generation is not None
    assert session.generation.repair.converged
    assert not session.check().errors


# ---------------------------------------------------------------------------
# the CLI verb (both modes)
# ---------------------------------------------------------------------------

def _run_cli(argv, capsys):
    from repro.cli import main
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_generate_corpus_to_file(tmp_path, capsys):
    out = tmp_path / "corpus.xmi"
    cov = tmp_path / "coverage.json"
    code, stdout, _ = _run_cli(
        ["generate", "--size", "200", "--seed", "0", "--repair",
         "--coverage-report", str(cov), "-o", str(out)], capsys)
    assert code == 0
    assert "converged" in stdout and str(out) in stdout
    assert out.exists()
    doc = json.loads(cov.read_text())
    assert doc["metaclasses"]["total"] == 4
    # the emitted file loads back through the stock CLI loader
    from repro.cli import load_model
    model = load_model(str(out))
    assert not Session(model).check().errors


def test_cli_generate_corpus_to_stdout_keeps_summary_on_stderr(capsys):
    code, stdout, stderr = _run_cli(
        ["generate", "--size", "60", "--seed", "1"], capsys)
    assert code == 0
    assert stdout.startswith("<xmi ")
    assert "generated" in stderr and "coverage:" in stderr


def test_cli_generate_json_format(tmp_path, capsys):
    out = tmp_path / "corpus.json"
    code, *_ = _run_cli(
        ["generate", "--size", "60", "--seed", "1", "-o", str(out)],
        capsys)
    assert code == 0
    from repro.cli import load_model
    assert load_model(str(out)).roots


def test_cli_generate_mode_collisions_are_usage_errors(tmp_path, capsys):
    code, _, err = _run_cli(
        ["generate", "--size", "10", "model.xmi"], capsys)
    assert code == 2 and "drop the MODEL" in err
    code, _, err = _run_cli(
        ["generate", "--size", "10", "--lang", "c"], capsys)
    assert code == 2 and "--lang" in err
    code, _, err = _run_cli(["generate", "model.xmi"], capsys)
    assert code == 2 and "--size N" in err


def test_cli_generated_uml_corpus_feeds_the_toolchain(tmp_path, capsys):
    # a generated UML corpus loads back through the stock loader and
    # the checking verbs run over it (PSM->code itself is covered by
    # test_cli.py::test_transform_then_generate against a curated PIM)
    from repro.cli import main
    corpus = tmp_path / "pim.xmi"
    assert main(["generate", "--size", "60", "--seed", "2",
                 "--package", "uml", "--repair", "-o", str(corpus)]) == 0
    assert main(["check", str(corpus),
                 "--families", "structural,invariant,wellformed"]) == 0
    assert main(["metrics", str(corpus)]) == 0
    capsys.readouterr()
