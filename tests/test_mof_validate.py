"""Tests for structural validation."""

import pytest

from repro.mof import (
    M_11,
    M_1N,
    MString,
    PackageBuilder,
    Severity,
    Model,
    validate_element,
    validate_invariants,
    validate_tree,
)
from kernel_fixture import TBook, TLibrary


@pytest.fixture
def strict_pkg():
    return (PackageBuilder("strict")
            .clazz("Team")
            .attr("name", MString, multiplicity=M_11)
            .ref("members", "Member", containment=True,
                 multiplicity=M_1N, opposite="team")
            .clazz("Member").attr("name", MString).ref("team", "Team")
            .build())


class TestMultiplicityValidation:
    def test_missing_required_attribute(self, strict_pkg):
        team = strict_pkg.classifier("Team")()
        report = validate_element(team)
        codes = {d.code for d in report.errors}
        assert "multiplicity" in codes

    def test_lower_bound_on_reference(self, strict_pkg):
        team = strict_pkg.classifier("Team")(name="t")
        report = validate_element(team)
        assert not report.ok            # members 1..* empty
        team.members.append(strict_pkg.classifier("Member")(name="m"))
        assert validate_element(team).ok

    def test_valid_tree(self, library):
        lib, *_ = library
        assert validate_tree(lib).ok

    def test_validate_model(self, library):
        lib, *_ = library
        model = Model("urn:v")
        model.add_root(lib)
        report = validate_tree(model.roots[0])
        report.extend(validate_invariants(model.roots[0]))
        assert report.ok


class TestOppositeIntegrity:
    def test_raw_damage_detected(self, library):
        lib, b1, _ = library
        # sabotage the inverse directly (bypassing the protocol)
        b1._slots["library"] = None
        report = validate_element(lib)
        assert any(d.code == "opposite" for d in report.errors)

    def test_containment_bookkeeping_detected(self, library):
        lib, b1, _ = library
        object.__setattr__(b1, "_container", None)
        report = validate_element(lib)
        assert any(d.code == "containment" for d in report.errors)


class TestInvariantIntegration:
    def test_registered_invariant_checked(self):
        from repro.ocl import invariant
        inv = invariant(TBook, "positive-pages", "pages > 0")
        try:
            good = TBook(pages=5)
            assert validate_element(good).ok
            bad = TBook(pages=0)
            report = validate_element(bad)
            assert any(d.code == "invariant" for d in report.errors)
        finally:
            inv.unregister()

    def test_invariant_error_reported_not_raised(self):
        from repro.ocl import invariant
        inv = invariant(TBook, "broken", "nonexistent_feature > 1")
        try:
            report = validate_element(TBook())
            assert any(d.code == "invariant-error" for d in report.errors)
        finally:
            inv.unregister()

    def test_severity_filtering(self):
        report = validate_element(TBook())
        assert report.ok
        report.add(Severity.WARNING, None, "just a warning")
        assert report.ok and len(report.warnings) == 1
        report.add(Severity.ERROR, None, "now broken")
        assert not report.ok


def test_report_string_rendering(library):
    lib, *_ = library
    report = validate_tree(lib)
    assert "ok" in str(report)
    report.add(Severity.ERROR, lib, "boom", code="x")
    assert "boom" in str(report)
