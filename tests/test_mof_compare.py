"""Tests for structural model comparison."""

import pytest

from repro.mof import DiffKind, compare
from repro.transform import clone_transformation
from repro.uml import UmlElement


@pytest.fixture
def pair(cruise_model):
    left = cruise_model.model
    right = clone_transformation(UmlElement).run(left).primary_root
    return left, right


class TestCompare:
    def test_clone_is_identical(self, pair):
        left, right = pair
        result = compare(left, right)
        assert result.identical, str(result)

    def test_attribute_change_detected(self, pair):
        left, right = pair
        controller = [e for e in right.all_contents()
                      if getattr(e, "name", "") == "CruiseController"][0]
        controller.is_abstract = True
        result = compare(left, right)
        assert len(result.changed) == 1
        diff = result.changed[0]
        assert diff.kind is DiffKind.ATTRIBUTE
        assert diff.feature == "is_abstract"
        assert diff.left is False and diff.right is True

    def test_added_and_removed_elements(self, pair, cruise_model):
        left, right = pair
        # add to right
        from repro.uml import Clazz
        right.packaged_elements.append(Clazz(name="NewThing"))
        # remove from left's copy? remove from right an original member
        sensor = [e for e in right.packaged_elements
                  if e.name == "SpeedSensor"][0]
        sensor.delete()
        result = compare(left, right)
        assert any("NewThing" in d.path for d in result.added)
        assert any("SpeedSensor" in d.path for d in result.removed)
        assert "+1" in result.summary() and "-1" in result.summary()

    def test_reference_retarget_detected(self, pair):
        left, right = pair
        controller = [e for e in right.all_contents()
                      if getattr(e, "name", "") == "CruiseController"][0]
        sensor = [e for e in right.all_contents()
                  if getattr(e, "name", "") == "SpeedSensor"][0]
        prop = controller.attribute("actuator")
        prop.type = sensor           # retarget
        result = compare(left, right)
        assert any(d.kind is DiffKind.REFERENCE and d.feature == "type"
                   for d in result.differences)

    def test_transition_effect_change(self, pair):
        left, right = pair
        transition = [e for e in right.all_contents()
                      if e.meta.name == "Transition"
                      and getattr(e, "trigger", "") == "engage"][0]
        transition.effect = "something_else()"
        result = compare(left, right)
        assert any(d.feature == "effect" for d in result.changed)

    def test_type_mismatch_at_same_path(self, cruise_model):
        from repro.uml import Clazz, Interface, UmlModel
        left = UmlModel(name="m")
        left.add(Clazz(name="X"))
        right = UmlModel(name="m")
        right.add(Interface(name="X"))
        result = compare(left, right)
        # name signature includes metaclass so they count as add+remove
        kinds = {d.kind for d in result.differences}
        assert kinds & {DiffKind.ADDED, DiffKind.REMOVED, DiffKind.TYPE}

    def test_str_renderings(self, pair):
        left, right = pair
        assert str(compare(left, right)) == "models identical"
        right.name = "other"
        text = str(compare(left, right))
        assert "name" in text
