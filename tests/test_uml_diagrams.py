"""Tests for DOT diagram export."""

import pytest

from repro.uml import (
    Activity,
    activity_diagram,
    class_diagram,
    statemachine_diagram,
)


def balanced(text):
    return text.count("{") == text.count("}")


class TestClassDiagram:
    def test_contains_all_classifiers(self, cruise_model):
        dot = class_diagram(cruise_model.model)
        assert dot.startswith('digraph "cruise"')
        for name in ("CruiseController", "SpeedSensor",
                     "ThrottleActuator"):
            assert name in dot
        assert balanced(dot)

    def test_attributes_and_types_shown(self, cruise_model):
        dot = class_diagram(cruise_model.model)
        assert "target: Integer" in dot
        assert "enabled: Boolean" in dot

    def test_generalization_arrow(self, factory):
        base = factory.clazz("Base")
        factory.clazz("Derived", supers=[base])
        dot = class_diagram(factory.model)
        assert "arrowhead=onormal" in dot

    def test_association_edges_labelled(self, cruise_model):
        dot = class_diagram(cruise_model.model)
        assert 'label="measures"' in dot
        assert 'label="drives"' in dot

    def test_interface_and_enum_stereotypes(self, factory):
        factory.interface("Svc", operations=["go"])
        factory.enumeration("Mode", ["a", "b"])
        dot = class_diagram(factory.model)
        assert "«interface»" in dot
        assert "«enumeration»" in dot

    def test_members_can_be_hidden(self, cruise_model):
        dot = class_diagram(cruise_model.model, show_members=False)
        assert "target: Integer" not in dot


class TestStateMachineDiagram:
    def test_shapes_and_transitions(self, cruise_model):
        controller = cruise_model.model.member("CruiseController")
        dot = statemachine_diagram(controller.state_machine())
        assert "shape=point" in dot          # initial
        assert "style=rounded" in dot        # states
        assert 'label="engage' in dot
        assert balanced(dot)

    def test_guard_in_label(self, cruise_model):
        controller = cruise_model.model.member("CruiseController")
        dot = statemachine_diagram(controller.state_machine())
        assert "[enabled = true]" in dot

    def test_nested_regions_rendered(self):
        from repro.uml import StateMachine
        machine = StateMachine(name="hsm")
        region = machine.main_region()
        initial = region.add_initial()
        outer = region.add_state("Outer")
        inner = outer.add_region("in")
        inner_initial = inner.add_initial()
        sub = inner.add_state("Sub")
        inner.add_transition(inner_initial, sub)
        region.add_transition(initial, outer)
        dot = statemachine_diagram(machine)
        assert "Sub" in dot and "Outer" in dot


class TestActivityDiagram:
    def test_all_node_kinds(self):
        activity = Activity(name="act")
        start = activity.add_initial()
        fork = activity.add_fork()
        a = activity.add_action("work", body="x := 1")
        decision = activity.add_decision()
        merge = activity.add_merge()
        join = activity.add_join()
        flow_final = activity.add_flow_final()
        end = activity.add_final()
        activity.flow(start, fork)
        activity.flow(fork, a)
        activity.flow(fork, flow_final)
        activity.flow(a, decision)
        activity.flow(decision, merge, guard="x > 0")
        activity.flow(decision, merge, guard="else")
        activity.flow(merge, join)
        activity.flow(a, join)
        activity.flow(join, end)
        dot = activity_diagram(activity)
        assert "shape=diamond" in dot
        assert "fillcolor=black" in dot       # fork/join bars
        assert "[x > 0]" in dot
        assert "work" in dot and "x := 1" in dot
        assert balanced(dot)
