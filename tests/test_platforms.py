"""Tests for platform models and the generic PIM→PSM mapping."""

import pytest

from repro.mof import validate_tree
from repro.platforms import (
    CHANNEL_ROLE,
    ENGINE_ROLE,
    PIM_TO_PSM,
    make_pim_to_psm,
    PlatformModel,
)
from repro.transform import check_refinement
from repro.uml import Clazz, Enumeration, Interface


class TestPlatformModels:
    def test_posix_shape(self, posix):
        assert posix.is_real_time
        assert posix.type_for("Integer").name == "int32_t"
        assert posix.engine_for("thread").kind == "thread"
        assert posix.comm_for("queue").name == "mqueue"
        assert posix.service_named("posix_timer") is not None

    def test_baremetal_shape(self, baremetal):
        assert baremetal.type_for("Real").name == "q15_t"
        assert baremetal.engine_for("hw_module") is not None
        assert baremetal.comm_for("signal").is_synchronous

    def test_middleware_shape(self, middleware):
        assert not middleware.is_real_time
        assert middleware.comm_for("topic").kind == "topic"
        assert middleware.type_for("String").name == "Utf8String"

    def test_engine_preference_order(self, posix):
        engine = posix.engine_for("hw_module", "process")
        assert engine.kind == "process"      # no hw modules on posix

    def test_engine_fallback_to_any(self):
        platform = PlatformModel(name="tiny")
        assert platform.engine_for("thread") is None
        platform.add_engine("only", "isr")
        assert platform.engine_for("thread").name == "only"

    def test_type_for_unmapped(self, posix):
        assert posix.type_for("Quaternion") is None

    def test_platform_validates(self, posix, baremetal, middleware):
        for platform in (posix, baremetal, middleware):
            assert validate_tree(platform).ok


class TestGenericMapping:
    @pytest.fixture
    def psm(self, cruise_model, posix):
        result = PIM_TO_PSM.run(cruise_model.model, posix)
        return cruise_model, result

    def test_single_root(self, psm):
        _, result = psm
        assert len(result.target_roots) == 1

    def test_root_named_for_platform(self, psm):
        _, result = psm
        assert result.primary_root.name == "cruise_posix_rtos"

    def test_active_classes_get_engine_wrappers(self, psm):
        _, result = psm
        names = {e.name for e in result.primary_root.packaged_elements}
        assert "CruiseController_thread" in names
        assert "SpeedSensor_thread" in names

    def test_wrapper_holds_subject_by_composition(self, psm):
        _, result = psm
        wrapper = [e for e in result.primary_root.packaged_elements
                   if e.name == "CruiseController_thread"][0]
        subject = wrapper.attribute("subject")
        assert subject.is_composite
        assert subject.type.name == "CruiseController"

    def test_active_to_active_association_gets_channel(self, psm):
        _, result = psm
        names = {e.name for e in result.primary_root.packaged_elements}
        assert "measures_queue" in names and "drives_queue" in names
        channel = [e for e in result.primary_root.packaged_elements
                   if e.name == "measures_queue"][0]
        assert channel.attribute("depth").default_value == "32"
        assert {op.name for op in channel.owned_operations} == {"send",
                                                                "receive"}

    def test_attributes_retyped(self, psm):
        _, result = psm
        controller = [e for e in result.primary_root.packaged_elements
                      if e.name == "CruiseController"][0]
        assert controller.attribute("target").type.name == "int32_t"
        assert controller.attribute("enabled").type.name == "bool"

    def test_state_machines_flattened_and_attached(self, psm):
        _, result = psm
        controller = [e for e in result.primary_root.packaged_elements
                      if e.name == "CruiseController"][0]
        machine = controller.state_machine()
        assert machine is not None
        assert machine.events() == ["disengage", "engage", "tick"]
        assert controller.classifier_behavior is machine

    def test_generalizations_mapped(self, factory, posix):
        base = factory.clazz("Base")
        derived = factory.clazz("Derived", supers=[base])
        result = PIM_TO_PSM.run(factory.model, posix)
        derived_psm = [e for e in result.primary_root.packaged_elements
                       if e.name == "Derived"][0]
        assert [s.name for s in derived_psm.supers()] == ["Base"]

    def test_interfaces_and_enums_mapped(self, factory, posix):
        factory.interface("Svc", operations=["go"])
        factory.enumeration("Mode", ["a", "b"])
        result = PIM_TO_PSM.run(factory.model, posix)
        members = {e.name: e for e in result.primary_root.packaged_elements}
        assert isinstance(members["Svc"], Interface)
        assert isinstance(members["Mode"], Enumeration)
        assert members["Mode"].literal_names() == ["a", "b"]

    def test_psm_structurally_valid(self, psm):
        _, result = psm
        assert validate_tree(result.primary_root).ok

    def test_refinement_complete(self, psm):
        cruise_model, result = psm
        report = check_refinement(cruise_model.model, result,
                                  required_types=[Clazz])
        assert report.ok, str(report)

    def test_trace_connects_pim_to_psm(self, psm):
        cruise_model, result = psm
        controller = cruise_model.model.member("CruiseController")
        image = result.trace.resolve(controller)
        assert image.name == "CruiseController"
        wrapper = result.trace.resolve(controller, ENGINE_ROLE)
        assert wrapper.name == "CruiseController_thread"

    def test_same_pim_two_platforms_differ(self, cruise_model, posix,
                                           baremetal):
        posix_psm = PIM_TO_PSM.run(cruise_model.model, posix).primary_root
        bm_psm = PIM_TO_PSM.run(cruise_model.model,
                                baremetal).primary_root
        posix_ctl = [e for e in posix_psm.packaged_elements
                     if e.name == "CruiseController"][0]
        bm_ctl = [e for e in bm_psm.packaged_elements
                  if e.name == "CruiseController"][0]
        assert posix_ctl.attribute("target").type.name == "int32_t"
        assert bm_ctl.attribute("target").type.name == "int16_t"
        bm_names = {e.name for e in bm_psm.packaged_elements}
        # bare metal has no threads; the engine picks the task engine
        assert "CruiseController_task" in bm_names
        assert "CruiseController_thread" not in bm_names

    def test_parametric_cache(self, posix):
        t1 = PIM_TO_PSM.for_platform(posix)
        t2 = PIM_TO_PSM.for_platform(posix)
        assert t1 is t2

    def test_make_pim_to_psm_kind(self, posix):
        transformation = make_pim_to_psm(posix)
        assert transformation.is_semantic
        assert transformation.abstraction_delta == -1
