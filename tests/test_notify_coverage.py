"""Notification coverage: every mutating kernel operation announces itself.

A change-driven revalidation engine is only as sound as the change feed
it subscribes to: one silent mutation and the cache serves stale
diagnostics forever.  This suite pins down, per mutation entry point,
*that* a notification fires and *what* it carries — kind, effective old
value (the declared default when the slot was never set), new value and
position — plus the negative space: operations that do NOT change
anything must stay silent, and failed mutations (frozen targets) must
change neither side.  The dispatch-safety cases (observers detached or
attached mid-dispatch, ``ChangeRecorder.clear`` while a snapshot is
held) are regression tests for real bugs.
"""

from __future__ import annotations

import pytest

from kernel_fixture import TBook, TChapter, TLibrary
from repro.mof import ChangeKind, ChangeRecorder, FrozenElementError
from repro.mof.repository import Model


@pytest.fixture
def lib():
    library = TLibrary(name="lib")
    return library


@pytest.fixture
def book():
    return TBook(name="b")


def record(element):
    recorder = ChangeRecorder()
    element.observe(recorder)
    return recorder


def last(recorder):
    assert recorder.notifications, "expected a notification"
    return recorder.notifications[-1]


# ---------------------------------------------------------------------------
# Single-valued attributes
# ---------------------------------------------------------------------------

class TestAttributeSet:
    def test_set_reports_effective_default_as_old(self, book):
        recorder = record(book)
        book.pages = 150
        n = last(recorder)
        assert (n.kind, n.old, n.new) == (ChangeKind.SET, 100, 150)
        assert n.feature.name == "pages"

    def test_set_reports_previous_value_as_old(self, book):
        book.pages = 150
        recorder = record(book)
        book.pages = 200
        n = last(recorder)
        assert (n.old, n.new) == (150, 200)

    def test_set_to_none_is_unset(self, book):
        recorder = record(book)
        book.name = None
        n = last(recorder)
        assert (n.kind, n.old, n.new) == (ChangeKind.UNSET, "b", None)

    def test_eunset_notifies(self, book):
        recorder = record(book)
        book.eunset("name")
        assert last(recorder).kind == ChangeKind.UNSET

    def test_set_same_value_is_silent(self, book):
        book.pages = 150
        recorder = record(book)
        book.pages = 150
        assert len(recorder) == 0

    def test_assigning_the_default_is_silent(self, book):
        # pages defaults to 100; writing 100 changes nothing observable
        recorder = record(book)
        book.pages = 100
        assert len(recorder) == 0
        assert book.eis_set("pages")   # the slot itself did materialise


# ---------------------------------------------------------------------------
# Many-valued attributes
# ---------------------------------------------------------------------------

class TestManyAttribute:
    def test_append_carries_position(self, book):
        recorder = record(book)
        book.tags.append("sf")
        book.tags.append("hugo")
        kinds = [(n.kind, n.new, n.position) for n in recorder.notifications]
        assert kinds == [(ChangeKind.ADD, "sf", 0),
                         (ChangeKind.ADD, "hugo", 1)]

    def test_insert_carries_position(self, book):
        book.tags.extend(["a", "c"])
        recorder = record(book)
        book.tags.insert(1, "b")
        n = last(recorder)
        assert (n.kind, n.new, n.position) == (ChangeKind.ADD, "b", 1)

    def test_remove_carries_value_and_position(self, book):
        book.tags.extend(["a", "b", "c"])
        recorder = record(book)
        book.tags.remove("b")
        n = last(recorder)
        assert (n.kind, n.old, n.position) == (ChangeKind.REMOVE, "b", 1)

    def test_pop_notifies_with_position(self, book):
        book.tags.extend(["a", "b"])
        recorder = record(book)
        assert book.tags.pop() == "b"
        n = last(recorder)
        assert (n.kind, n.old, n.position) == (ChangeKind.REMOVE, "b", 1)

    def test_duplicate_append_is_silent(self, book):
        book.tags.append("a")
        recorder = record(book)
        book.tags.append("a")     # unique-values semantics: no-op
        assert len(recorder) == 0

    def test_move_notifies_old_index_and_new_position(self, book):
        book.tags.extend(["a", "b", "c"])
        recorder = record(book)
        book.tags.move(0, "c")
        n = last(recorder)
        assert (n.kind, n.old, n.new, n.position) == \
            (ChangeKind.MOVE, 2, "c", 0)
        assert list(book.tags) == ["c", "a", "b"]

    def test_move_to_same_index_is_silent(self, book):
        book.tags.extend(["a", "b"])
        recorder = record(book)
        book.tags.move(1, "b")
        assert len(recorder) == 0


# ---------------------------------------------------------------------------
# References and opposites
# ---------------------------------------------------------------------------

class TestReferences:
    def test_set_notifies_both_ends(self):
        b1, b2 = TBook(name="b1"), TBook(name="b2")
        r1, r2 = record(b1), record(b2)
        b1.sequel = b2
        assert (last(r1).kind, last(r1).new) == (ChangeKind.SET, b2)
        assert last(r1).feature.name == "sequel"
        assert (last(r2).kind, last(r2).new) == (ChangeKind.SET, b1)
        assert last(r2).feature.name == "prequel"

    def test_set_same_target_is_silent(self):
        b1, b2 = TBook(), TBook()
        b1.sequel = b2
        r1, r2 = record(b1), record(b2)
        b1.sequel = b2
        assert len(r1) == 0 and len(r2) == 0

    def test_displacement_unsets_old_opposite(self):
        b1, b2, b3 = TBook(name="b1"), TBook(name="b2"), TBook(name="b3")
        b1.sequel = b2
        r2 = record(b2)
        b1.sequel = b3
        n = last(r2)
        assert (n.kind, n.feature.name, n.old) == \
            (ChangeKind.UNSET, "prequel", b1)

    def test_set_to_none_unlinks_both_ends(self):
        b1, b2 = TBook(), TBook()
        b1.sequel = b2
        r1, r2 = record(b1), record(b2)
        b1.sequel = None
        assert last(r1).kind == ChangeKind.UNSET
        assert (last(r2).kind, last(r2).feature.name) == \
            (ChangeKind.UNSET, "prequel")

    def test_containment_add_sets_opposite_and_container(self, lib, book):
        rl, rb = record(lib), record(book)
        lib.books.append(book)
        n = last(rl)
        assert (n.kind, n.new, n.position) == (ChangeKind.ADD, book, 0)
        assert (last(rb).kind, last(rb).feature.name) == \
            (ChangeKind.SET, "library")
        assert book.container is lib

    def test_containment_remove_carries_position(self, lib):
        books = [TBook(name=f"b{i}") for i in range(3)]
        lib.books.extend(books)
        rl = record(lib)
        rb = record(books[1])
        lib.books.remove(books[1])
        n = last(rl)
        assert (n.kind, n.old, n.position) == \
            (ChangeKind.REMOVE, books[1], 1)
        assert (last(rb).kind, last(rb).feature.name) == \
            (ChangeKind.UNSET, "library")
        assert books[1].container is None

    def test_reparent_notifies_old_and_new_parent(self, book):
        lib1, lib2 = TLibrary(name="l1"), TLibrary(name="l2")
        lib1.books.append(book)
        r1, r2 = record(lib1), record(lib2)
        lib2.books.append(book)
        assert (last(r1).kind, last(r1).old) == (ChangeKind.REMOVE, book)
        assert (last(r2).kind, last(r2).new) == (ChangeKind.ADD, book)
        assert book.container is lib2

    def test_delete_announces_every_broken_link(self, lib, book):
        lib.books.append(book)
        lib.featured = book
        chapter = TChapter(name="ch")
        book.chapters.append(chapter)
        rl, rb, rc = record(lib), record(book), record(chapter)
        book.delete()
        assert any(n.kind == ChangeKind.REMOVE and n.old is book
                   for n in rl.notifications)          # left lib.books
        # featured has no opposite: delete() cannot see that incoming
        # link, so it dangles (documented kernel semantics)
        assert lib.featured is book
        assert any(n.feature.name == "chapters"
                   for n in rb.notifications)          # dropped chapter
        assert any(n.feature.name == "book"
                   for n in rc.notifications)          # chapter's inverse
        assert book.container is None and chapter.container is None


# ---------------------------------------------------------------------------
# Frozen-target atomicity
# ---------------------------------------------------------------------------

class TestFrozenAtomicity:
    def test_link_to_frozen_target_changes_neither_side(self):
        b1, b2 = TBook(name="b1"), TBook(name="b2")
        b2.freeze()
        recorder = record(b1)
        with pytest.raises(FrozenElementError):
            b1.sequel = b2
        assert b1.sequel is None
        assert b2.prequel is None
        assert len(recorder) == 0

    def test_unlink_from_frozen_target_changes_neither_side(self):
        b1, b2 = TBook(name="b1"), TBook(name="b2")
        b1.sequel = b2
        b2.freeze()
        with pytest.raises(FrozenElementError):
            b1.sequel = None
        assert b1.sequel is b2
        assert b2.prequel is b1

    def test_frozen_source_still_vetoes(self):
        b1, b2 = TBook(), TBook()
        b1.freeze()
        with pytest.raises(FrozenElementError):
            b1.sequel = b2


# ---------------------------------------------------------------------------
# Dispatch safety
# ---------------------------------------------------------------------------

class TestDispatchSafety:
    def test_observer_detached_mid_dispatch_is_not_called(self, book):
        calls = []

        def second(notification):
            calls.append("second")

        def first(notification):
            calls.append("first")
            book.unobserve(second)

        book.observe(first)
        book.observe(second)
        book.pages = 1
        assert calls == ["first"]
        book.pages = 2
        assert calls == ["first", "first"]

    def test_observer_removing_itself_survives(self, book):
        calls = []

        def once(notification):
            calls.append(notification.new)
            book.unobserve(once)

        book.observe(once)
        book.pages = 1
        book.pages = 2
        assert calls == [1]

    def test_observer_attached_mid_dispatch_misses_current_change(self, book):
        calls = []

        def late(notification):
            calls.append(("late", notification.new))

        def first(notification):
            book.observe(late)

        book.observe(first)
        book.pages = 1
        assert calls == []
        book.pages = 2
        assert calls == [("late", 2)]

    def test_model_observer_detached_mid_dispatch(self, lib):
        model = Model("urn:test:m")
        model.add_root(lib)
        calls = []

        def second(notification):
            calls.append("second")

        def first(notification):
            calls.append("first")
            model.unobserve(second)

        model.observe(first)
        model.observe(second)
        lib.name = "renamed"
        assert calls == ["first"]

    def test_model_forwards_nested_element_changes(self, lib, book):
        model = Model("urn:test:m")
        model.add_root(lib)
        lib.books.append(book)
        recorder = ChangeRecorder()
        model.observe(recorder)
        book.pages = 7
        assert last(recorder).element is book

    def test_recorder_clear_rebinds_list(self, book):
        recorder = record(book)
        book.pages = 1
        snapshot = recorder.notifications
        recorder.clear()
        book.pages = 2
        assert [n.new for n in snapshot] == [1]
        assert [n.new for n in recorder.notifications] == [2]

    def test_recorder_clear_during_dispatch_keeps_later_changes(self, book):
        recorder = ChangeRecorder()

        def clearing(notification):
            if notification.new == 1:
                recorder.clear()

        book.observe(recorder)
        book.observe(clearing)
        book.pages = 1
        book.pages = 2
        # the clear dropped change 1 only; change 2 landed in the new list
        assert [n.new for n in recorder.notifications] == [2]


# ---------------------------------------------------------------------------
# The sweep: every mutation entry point, counted
# ---------------------------------------------------------------------------

MUTATIONS = [
    ("eset attr", lambda lib, book: book.eset("pages", 1), 1),
    ("descriptor attr", lambda lib, book: setattr(book, "pages", 2), 1),
    ("eunset attr", lambda lib, book: book.eunset("name"), 1),
    ("many append", lambda lib, book: book.tags.append("x"), 1),
    ("many insert", lambda lib, book: book.tags.insert(0, "y"), 1),
    ("many extend", lambda lib, book: book.tags.extend(["p", "q"]), 2),
    ("eset many", lambda lib, book: book.eset("tags", ["z"]), 1),
    ("containment append", lambda lib, book: lib.books.append(book), 2),
    ("single ref set", lambda lib, book: setattr(lib, "featured", book), 1),
    ("opposite ref set",
     lambda lib, book: setattr(book, "sequel", TBook()), 1),
]


@pytest.mark.parametrize("label,mutate,expected",
                         [m for m in MUTATIONS], ids=[m[0] for m in MUTATIONS])
def test_no_silent_mutations(label, mutate, expected):
    """Each entry point emits exactly the expected notifications on the
    mutated element (opposite-end notifications land on the other
    element and are covered above)."""
    lib, book = TLibrary(name="l"), TBook(name="b")
    recorder = ChangeRecorder()
    lib.observe(recorder)
    book.observe(recorder)
    mutate(lib, book)
    assert len(recorder) == expected, \
        f"{label}: expected {expected} notifications, got " \
        f"{[str(n) for n in recorder.notifications]}"


# ---------------------------------------------------------------------------
# Inverse sufficiency: the journal can undo every change kind
# ---------------------------------------------------------------------------

class TestInverseSufficiency:
    """The transaction journal (repro.mof.txn) is only as good as the
    notifications it replays: every :class:`ChangeKind` must carry
    enough state — effective old value, position, both ends of a link —
    to reconstruct the pre-state.  These tests apply the documented
    inverse of each kind *by hand* from the captured notification and
    assert the mutation disappears, pinning the record format the
    rollback machinery depends on."""

    def test_set_old_value_suffices(self, book):
        book.pages = 7
        recorder = record(book)
        book.pages = 9
        n = last(recorder)
        assert n.kind is ChangeKind.SET
        book.eset(n.feature.name, n.old)
        assert book.pages == 7

    def test_unset_old_value_suffices(self, book):
        recorder = record(book)
        book.eunset("name")
        n = last(recorder)
        assert n.kind is ChangeKind.UNSET and n.old == "b"
        book.eset(n.feature.name, n.old)
        assert book.name == "b"

    def test_add_new_value_suffices(self, book):
        recorder = record(book)
        book.tags.append("x")
        n = last(recorder)
        assert n.kind is ChangeKind.ADD and n.new == "x"
        book.eget(n.feature.name).remove(n.new)
        assert list(book.tags) == []

    def test_remove_carries_value_and_exact_position(self, book):
        book.tags.extend(["a", "b", "c"])
        recorder = record(book)
        book.tags.remove("b")
        n = last(recorder)
        assert n.kind is ChangeKind.REMOVE
        assert (n.old, n.position) == ("b", 1)
        book.eget(n.feature.name).insert(n.position, n.old)
        assert list(book.tags) == ["a", "b", "c"]

    def test_move_old_index_suffices(self, book):
        book.tags.extend(["a", "b", "c"])
        recorder = record(book)
        book.tags.move(2, "a")
        n = last(recorder)
        assert n.kind is ChangeKind.MOVE
        assert (n.old, n.new, n.position) == (0, "a", 2)
        book.eget(n.feature.name).move(n.old, n.new)
        assert list(book.tags) == ["a", "b", "c"]

    def test_containment_remove_restores_link_and_position(self, lib):
        books = [TBook(name=t) for t in ("x", "y", "z")]
        for b in books:
            lib.books.append(b)
        recorder = record(lib)
        lib.books.remove(books[1])
        n = last(recorder)
        assert n.kind is ChangeKind.REMOVE
        assert (n.old, n.position) == (books[1], 1)
        lib.books.insert(n.position, n.old)
        assert [b.name for b in lib.books] == ["x", "y", "z"]
        assert books[1].library is lib      # opposite re-established

    def test_opposite_add_notification_carries_position(self, lib):
        """The non-owning end of a bidirectional link also reports the
        index its slot changed at — the record a faithful ordered-list
        rollback needs (regression: it used to report position=None)."""
        first, second = TBook(name="f"), TBook(name="s")
        lib.books.append(first)
        lib.books.append(second)
        recorder = record(lib)
        # set from the *book* side: lib's ADD arrives via the opposite
        third = TBook(name="t")
        third.library = lib
        adds = [n for n in recorder.notifications
                if n.kind is ChangeKind.ADD and n.element is lib]
        assert len(adds) == 1
        assert adds[0].position == 2

    def test_frozen_veto_emits_nothing_to_undo(self, lib):
        """A vetoed mutation must not notify: if it did, rollback would
        'undo' a change that never happened."""
        book = TBook(name="b")
        lib.books.append(book)
        lib.freeze(recursive=False)
        recorder = record(lib)
        book_recorder = record(book)
        try:
            with pytest.raises(FrozenElementError):
                lib.books.remove(book)
        finally:
            lib.unfreeze(recursive=False)
        assert len(recorder) == 0
        assert len(book_recorder) == 0
