"""Tests for components, ports, connectors and deployment."""

import pytest

from repro.uml import (
    Artifact,
    Component,
    Connector,
    Deployment,
    ExecutionNode,
    Interface,
    Port,
)


@pytest.fixture
def component_pair(factory):
    provided = factory.interface("DataFeed", operations=["subscribe"])
    producer = Component(name="Producer")
    consumer = Component(name="Consumer")
    factory.model.add(producer)
    factory.model.add(consumer)
    out_port = producer.add_port("out", provided=provided)
    in_port = consumer.add_port("in", required=provided)
    return producer, consumer, out_port, in_port, provided


class TestComponents:
    def test_ports_and_interfaces(self, component_pair):
        producer, consumer, out_port, in_port, provided = component_pair
        assert producer.provided_interfaces() == [provided]
        assert consumer.required_interfaces() == [provided]
        assert out_port.container is producer

    def test_connector_between_ports(self, component_pair, factory):
        _, _, out_port, in_port, _ = component_pair
        connector = Connector.between(out_port, in_port, name="wire")
        factory.model.add(connector)
        assert connector.ports() == [out_port, in_port]
        assert len(connector.ends) == 2

    def test_component_is_class(self, component_pair):
        producer, *_ = component_pair
        from repro.uml import Clazz
        assert isinstance(producer, Clazz)

    def test_realizing_classes(self, component_pair, factory):
        producer, *_ = component_pair
        impl = factory.clazz("ProducerImpl")
        producer.realizing_classes.append(impl)
        assert impl in producer.realizing_classes


class TestDeployment:
    def test_artifact_on_node(self, factory):
        node = ExecutionNode(name="ecu", memory_kb=512, is_real_time=True)
        artifact = Artifact(name="fw", file_name="firmware.bin")
        factory.model.add(node)
        factory.model.add(artifact)
        node.deploy(artifact)
        assert artifact in node.deployed_artifacts
        assert node.is_real_time

    def test_nested_nodes(self, factory):
        board = ExecutionNode(name="board")
        core0 = ExecutionNode(name="core0")
        core1 = ExecutionNode(name="core1")
        factory.model.add(board)
        board.nested_nodes.extend([core0, core1])
        assert core0.container is board

    def test_deployment_record(self, factory):
        node = ExecutionNode(name="host")
        artifact = Artifact(name="bin")
        deployment = Deployment(name="d", location=node,
                                deployed_artifact=artifact)
        factory.model.add(node)
        factory.model.add(artifact)
        factory.model.add(deployment)
        assert deployment.location is node
        assert deployment.deployed_artifact is artifact

    def test_artifact_manifests_component(self, factory):
        component = Component(name="Svc")
        artifact = Artifact(name="svc.so")
        factory.model.add(component)
        factory.model.add(artifact)
        artifact.manifested_components.append(component)
        assert component in artifact.manifested_components
