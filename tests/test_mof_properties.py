"""Property-based tests: random mutation sequences never break the
kernel's two global invariants (opposite consistency, single container),
and structural validation agrees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mof import validate_element
from kernel_fixture import TBook, TChapter, TLibrary

# A mutation script is a list of (op, indices) tuples interpreted over a
# fixed population of libraries and books.

N_LIBS = 3
N_BOOKS = 5

operation = st.sampled_from(
    ["attach", "detach", "move", "sequel", "unsequel", "feature", "chapter"])
script_step = st.tuples(operation,
                        st.integers(0, N_LIBS - 1),
                        st.integers(0, N_BOOKS - 1),
                        st.integers(0, N_BOOKS - 1))


def apply_step(libs, books, step):
    op, lib_index, book_index, other_index = step
    lib = libs[lib_index]
    book = books[book_index]
    other = books[other_index]
    if op == "attach":
        lib.books.append(book)
    elif op == "detach":
        if book in lib.books:
            lib.books.remove(book)
    elif op == "move":
        libs[(lib_index + 1) % N_LIBS].books.append(book)
    elif op == "sequel":
        if book is not other:
            book.sequel = other
    elif op == "unsequel":
        book.sequel = None
    elif op == "feature":
        lib.featured = book
    elif op == "chapter":
        chapter = TChapter(name=f"ch{other_index}")
        book.chapters.append(chapter)


def check_global_invariants(libs, books):
    # 1. opposite consistency both directions
    for lib in libs:
        for book in lib.books:
            assert book.library is lib
            assert book.container is lib
    for book in books:
        if book.library is not None:
            assert book in book.library.books
        if book.sequel is not None:
            assert book.sequel.prequel is book
        if book.prequel is not None:
            assert book.prequel.sequel is book
        # 2. single container
        containers = [lib for lib in libs if book in lib.books]
        assert len(containers) <= 1
        for chapter in book.chapters:
            assert chapter.book is book
            assert chapter.container is book


@settings(max_examples=120, deadline=None)
@given(st.lists(script_step, max_size=25))
def test_random_mutations_keep_invariants(script):
    libs = [TLibrary(name=f"L{i}") for i in range(N_LIBS)]
    books = [TBook(name=f"B{i}") for i in range(N_BOOKS)]
    for step in script:
        apply_step(libs, books, step)
    check_global_invariants(libs, books)
    for element in libs + books:
        report = validate_element(element, check_invariants=False)
        assert report.ok, str(report)


@settings(max_examples=60, deadline=None)
@given(st.lists(script_step, max_size=15))
def test_delete_is_always_clean(script):
    libs = [TLibrary(name=f"L{i}") for i in range(N_LIBS)]
    books = [TBook(name=f"B{i}") for i in range(N_BOOKS)]
    for step in script:
        apply_step(libs, books, step)
    victim = books[0]
    victim.delete()
    assert victim.container is None
    assert victim.library is None
    assert victim.sequel is None and victim.prequel is None
    for lib in libs:
        assert victim not in lib.books
    check_global_invariants(libs, books[1:])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=5), max_size=10))
def test_many_attribute_roundtrip(values):
    book = TBook()
    book.tags = values
    # uniqueness: the feature keeps first occurrence of each distinct value
    expected = []
    for value in values:
        if value not in expected:
            expected.append(value)
    assert list(book.tags) == expected
