"""Transaction unit tests: commit, rollback, savepoints, nesting, hooks.

The journal-of-inverses design (``repro.mof.txn``) is exercised one
mutation kind at a time — every branch of ``_invert`` gets a direct
test — then through the protocol edges: nested scopes, savepoint
unwinding, listener firing, misuse errors, and the irreversibility
escape hatch (freeze-after-edit) that must surface as a
:class:`TransactionError` rather than a silently wrong model.
"""

from __future__ import annotations

import pytest

from kernel_fixture import TBook, TChapter, TLibrary
from repro.mof import (
    TransactionError,
    Transaction,
    compare,
    current_transaction,
    in_transaction,
    transaction,
)
from repro.mof import txn as txn_mod
from repro.mof import notify as notify_mod
from repro.mof.repository import Model
from repro.mof import repository as repo_mod


class Boom(RuntimeError):
    pass


@pytest.fixture
def lib():
    library = TLibrary(name="lib")
    for title in ("a", "b", "c"):
        library.books.append(TBook(name=title))
    return library


def titles(library):
    return [b.name for b in library.books]


# ---------------------------------------------------------------------------
# Per-operation inverses
# ---------------------------------------------------------------------------

class TestInverses:
    def test_attribute_set_rolls_back(self, lib):
        with pytest.raises(Boom):
            with transaction():
                lib.books[0].pages = 999
                lib.books[0].name = "renamed"
                raise Boom
        assert lib.books[0].pages == 100
        assert lib.books[0].name == "a"

    def test_attribute_unset_rolls_back(self, lib):
        book = lib.books[0]
        book.pages = 7
        with pytest.raises(Boom):
            with transaction():
                book.eunset("pages")
                raise Boom
        assert book.pages == 7

    def test_many_attribute_add_remove_roll_back(self, lib):
        book = lib.books[0]
        book.tags.append("keep")
        with pytest.raises(Boom):
            with transaction():
                book.tags.append("doomed")
                book.tags.remove("keep")
                raise Boom
        assert list(book.tags) == ["keep"]

    def test_single_reference_set_rolls_back(self, lib):
        lib.featured = lib.books[0]
        with pytest.raises(Boom):
            with transaction():
                lib.featured = lib.books[2]
                raise Boom
        assert lib.featured is lib.books[0]

    def test_single_reference_clear_rolls_back(self, lib):
        lib.featured = lib.books[1]
        with pytest.raises(Boom):
            with transaction():
                lib.featured = None
                raise Boom
        assert lib.featured is lib.books[1]

    def test_bidirectional_set_rolls_back_both_ends(self, lib):
        a, b = lib.books[0], lib.books[1]
        with pytest.raises(Boom):
            with transaction():
                a.sequel = b
                raise Boom
        assert a.sequel is None
        assert b.prequel is None

    def test_containment_remove_restores_position(self, lib):
        middle = lib.books[1]
        with pytest.raises(Boom):
            with transaction():
                lib.books.remove(middle)
                raise Boom
        assert titles(lib) == ["a", "b", "c"]
        assert middle.library is lib

    def test_containment_add_rolls_back(self, lib):
        with pytest.raises(Boom):
            with transaction():
                lib.books.append(TBook(name="extra"))
                raise Boom
        assert titles(lib) == ["a", "b", "c"]

    def test_move_rolls_back(self, lib):
        with pytest.raises(Boom):
            with transaction():
                lib.books.move(0, lib.books[2])
                raise Boom
        assert titles(lib) == ["a", "b", "c"]

    def test_delete_subtree_rolls_back(self, lib):
        book = lib.books[1]
        book.chapters.append(TChapter(name="ch1"))
        book.chapters.append(TChapter(name="ch2"))
        with pytest.raises(Boom):
            with transaction():
                book.delete()
                raise Boom
        assert titles(lib) == ["a", "b", "c"]
        assert [c.name for c in lib.books[1].chapters] == ["ch1", "ch2"]
        assert lib.books[1].chapters[0].book is lib.books[1]

    def test_reparent_rolls_back(self):
        src = TLibrary(name="src")
        dst = TLibrary(name="dst")
        book = TBook(name="wanderer")
        src.books.append(book)
        with pytest.raises(Boom):
            with transaction():
                dst.books.append(book)     # implicit detach from src
                raise Boom
        assert [b.name for b in src.books] == ["wanderer"]
        assert len(dst.books) == 0
        assert book.library is src

    def test_root_add_and_remove_roll_back(self, lib):
        model = Model("urn:test:txn")
        model.add_root(lib)
        stray = TLibrary(name="stray")
        with pytest.raises(Boom):
            with transaction():
                model.add_root(stray)
                model.remove_root(lib)
                raise Boom
        assert lib in model.roots
        assert stray not in model.roots

    def test_mixed_edit_burst_restores_deep_equality(self, lib):
        from repro.xmi import read_json, write_json
        from kernel_fixture import TEST_PKG
        model = Model("urn:test:snap")
        model.add_root(lib)
        snapshot = read_json(write_json(model), [TEST_PKG])
        with pytest.raises(Boom):
            with transaction():
                lib.books[0].delete()
                lib.featured = lib.books[0]
                lib.books.move(0, lib.books[-1])
                lib.books[0].sequel = lib.books[1]
                lib.books.append(TBook(name="new", pages=1))
                raise Boom
        result = compare(snapshot.roots[0], lib)
        assert result.identical, str(result)


# ---------------------------------------------------------------------------
# Protocol: commit, nesting, savepoints
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_commit_keeps_changes(self, lib):
        with transaction():
            lib.books[0].pages = 42
        assert lib.books[0].pages == 42

    def test_explicit_rollback_inside_block(self, lib):
        with transaction() as txn:
            lib.books[0].pages = 42
            txn.rollback()
        assert lib.books[0].pages == 100

    def test_nested_inner_rollback_preserves_outer(self, lib):
        with transaction():
            lib.books[0].pages = 1
            with pytest.raises(Boom):
                with transaction():
                    lib.books[1].pages = 2
                    raise Boom
            assert lib.books[1].pages == 100
        assert lib.books[0].pages == 1

    def test_nested_outer_rollback_undoes_committed_inner(self, lib):
        with pytest.raises(Boom):
            with transaction():
                with transaction():
                    lib.books[0].pages = 1
                raise Boom
        assert lib.books[0].pages == 100

    def test_savepoint_partial_rollback(self, lib):
        with transaction() as txn:
            lib.books[0].pages = 1
            sp = txn.savepoint()
            lib.books[1].pages = 2
            lib.books.remove(lib.books[2])
            txn.rollback_to(sp)
            assert lib.books[1].pages == 100
            assert titles(lib) == ["a", "b", "c"]
        assert lib.books[0].pages == 1

    def test_savepoint_from_other_transaction_rejected(self, lib):
        with transaction() as outer:
            sp = outer.savepoint()
            with transaction() as inner:
                with pytest.raises(TransactionError):
                    inner.rollback_to(sp)

    def test_state_queries(self, lib):
        assert not in_transaction()
        assert current_transaction() is None
        with transaction() as txn:
            assert in_transaction()
            assert current_transaction() is txn
            lib.books[0].pages = 5
            assert txn.op_count == 1
        assert not in_transaction()
        assert txn.state == "committed"

    def test_finishing_twice_is_an_error(self, lib):
        with transaction() as txn:
            pass
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_outer_cannot_finish_before_inner(self, lib):
        with pytest.raises(TransactionError,
                           match="innermost-first"):
            with transaction() as outer:
                with transaction():
                    outer.commit()

    def test_op_count_two_entries_per_bidirectional_link(self, lib):
        with transaction() as txn:
            lib.books[0].sequel = lib.books[1]
        assert txn.op_count == 2       # both ends notify


# ---------------------------------------------------------------------------
# Hooks and listeners
# ---------------------------------------------------------------------------

class TestHooks:
    def test_notify_and_root_hooks_restored(self, lib):
        before_notify = notify_mod._NOTIFY_HOOK
        with transaction():
            assert notify_mod._NOTIFY_HOOK is not before_notify
            lib.books[0].pages = 5
        assert notify_mod._NOTIFY_HOOK is before_notify
        assert repo_mod._ROOT_HOOK is None

    def test_chained_hook_still_sees_notifications(self, lib):
        seen = []
        from repro.mof.notify import set_notify_hook
        previous = set_notify_hook(lambda n: seen.append(n))
        try:
            with transaction():
                lib.books[0].pages = 5
        finally:
            set_notify_hook(previous)
        assert len(seen) == 1

    def test_module_commit_listener_fires_once_outermost(self, lib):
        committed = []
        txn_mod.on_commit(committed.append)
        try:
            with transaction():
                with transaction():
                    lib.books[0].pages = 5
            assert len(committed) == 1
            assert committed[0].parent is None
        finally:
            txn_mod.remove_listener(committed.append)

    def test_rollback_listener_and_per_txn_hooks(self, lib):
        events = []
        with pytest.raises(Boom):
            with transaction() as txn:
                txn.on_rollback(lambda t: events.append("hook"))
                txn.on_commit(lambda t: events.append("commit-hook"))
                lib.books[0].pages = 5
                raise Boom
        assert events == ["hook"]

    def test_rollback_during_replay_not_journaled(self, lib):
        # if replay were journaled, op_count would grow during rollback
        with transaction() as txn:
            lib.books[0].pages = 5
            sp = txn.savepoint()
            lib.books[1].pages = 6
            txn.rollback_to(sp)
            assert txn.op_count == 1


# ---------------------------------------------------------------------------
# Irreversibility is loud
# ---------------------------------------------------------------------------

class TestIrreversible:
    def test_freeze_after_edit_makes_rollback_raise(self, lib):
        book = lib.books[0]
        try:
            with pytest.raises(TransactionError) as excinfo:
                with transaction():
                    book.pages = 999
                    book.freeze()
                    raise Boom     # superseded by the rollback failure
            assert excinfo.value.failures
        finally:
            book.unfreeze()
        assert book.pages == 999   # honest: the edit truly stuck
