"""Tests for the multi-tenant model server (repro.server).

The in-process transport round-trips every frame through
``encode_frame``/``decode_frame``, so everything proved here holds
byte-for-byte over TCP; the TCP-specific tests cover framing recovery,
disconnects and true multi-client concurrency on real sockets.
"""

import json
import threading

import pytest

from repro.server import (
    InProcessClient,
    ModelServer,
    RemoteError,
    TcpClient,
    VERBS,
    serve_tcp,
)
from repro.session import Session


@pytest.fixture
def server():
    instance = ModelServer()
    yield instance
    instance.shutdown()


def host_corpus(server, name="main", size=80, seed=3):
    """Attach a generated, repaired demo corpus as repository *name*."""
    session = Session.generate("demo", size=size, seed=seed, repair=True)
    server.attach(name, session)
    return server.repo(name)


def named_eids(state, limit=None):
    """eids of elements with a scalar ``name`` feature (renamable)."""
    out = []
    for root in state.model.roots:
        for element in [root] + list(root.all_contents()):
            feature = element.meta.all_features().get("name")
            if feature is not None and not feature.many:
                out.append(element.eid)
    return out[:limit] if limit else out


def rename_op(eid, new_name):
    return {"op": "set", "element": eid, "feature": "name",
            "value": new_name}


# ---------------------------------------------------------------------------
# protocol robustness
# ---------------------------------------------------------------------------

class TestProtocolRobustness:
    def test_malformed_json_frame(self, server):
        with InProcessClient(server) as client:
            answers = client.send_raw(b"{nope")
            assert answers[0]["ok"] is False
            assert answers[0]["error"]["code"] == "parse-error"
            assert answers[0]["id"] is None

    def test_non_object_frame(self, server):
        with InProcessClient(server) as client:
            answers = client.send_raw(b"[1, 2, 3]")
            assert answers[0]["error"]["code"] == "parse-error"

    def test_frame_without_id_or_verb(self, server):
        with InProcessClient(server) as client:
            answers = client.send_raw(b'{"verb": "ping"}')
            assert answers[0]["error"]["code"] == "bad-request"
            answers = client.send_raw(b'{"id": 9}')
            assert answers[0]["error"]["code"] == "bad-request"
            assert answers[0]["id"] == 9

    def test_params_must_be_object(self, server):
        with InProcessClient(server) as client:
            answers = client.send_raw(
                b'{"id": 1, "verb": "ping", "params": [1]}')
            assert answers[0]["error"]["code"] == "bad-params"

    def test_unknown_verb_lists_vocabulary(self, server):
        with InProcessClient(server) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.request("frobnicate")
            assert excinfo.value.code == "unknown-verb"
            assert excinfo.value.data["verbs"] == sorted(VERBS)
            assert "check" in excinfo.value.data["verbs"]

    def test_oversized_payload_rejected(self):
        server = ModelServer(max_frame=512)
        try:
            with InProcessClient(server) as client:
                big = json.dumps({"id": 1, "verb": "ping",
                                  "params": {"pad": "x" * 4096}})
                answers = client.send_raw(big.encode())
                assert answers[0]["error"]["code"] == "oversized"
                # the connection survives an oversized frame
                assert client.request("ping")["pong"] is True
        finally:
            server.shutdown()

    def test_requests_after_close_are_rejected(self, server):
        client = InProcessClient(server)
        assert client.request("close") == {"closed": True}
        answers = client.send_raw(b'{"id": 5, "verb": "ping"}')
        assert answers[0]["error"]["code"] == "closed"


# ---------------------------------------------------------------------------
# verbs
# ---------------------------------------------------------------------------

class TestVerbs:
    def test_ping_reports_protocol(self, server):
        with InProcessClient(server) as client:
            result = client.request("ping")
            assert result["pong"] is True and result["protocol"] >= 1

    def test_generate_hosts_a_repo(self, server):
        with InProcessClient(server) as client:
            result = client.request("generate", repo="gen", size=60,
                                    seed=1)
            assert result["repo"] == "gen" and result["epoch"] == 0
            assert result["elements"] > 0
            assert result["repair_converged"] is True

    def test_load_hosts_a_file(self, server, tmp_path):
        from repro.cli import save_model
        session = Session.generate("demo", size=40, seed=2, repair=True)
        path = tmp_path / "corpus.xmi"
        save_model(session.model, str(path))
        with InProcessClient(server) as client:
            result = client.request("load", repo="disk", path=str(path))
            assert result["repo"] == "disk" and result["elements"] > 0
            with pytest.raises(RemoteError) as excinfo:
                client.request("load", repo="disk", path=str(path))
            assert excinfo.value.code == "bad-params"   # name taken

    def test_check_document_matches_session_render(self, server):
        state = host_corpus(server)
        with InProcessClient(server) as client:
            document = client.request("check", repo="main")
            assert document["ok"] in (True, False)
            assert document["repo"] == "main"
            assert document["epoch"] == 0
            # the wire document renders identically to a local check
            from repro.session import render_check_document
            local = state.session.check(
                families=list(document["families"])).render()
            del document["repo"], document["epoch"]
            assert render_check_document(document) == local

    def test_check_family_filter_and_severity(self, server):
        host_corpus(server)
        with InProcessClient(server) as client:
            doc = client.request("check", repo="main",
                                 families=["structural", "invariant"])
            assert set(doc["families"]) <= {"structural", "invariant"}
            errors_only = client.request("check", repo="main",
                                         severity="error")
            assert errors_only["warnings"] == 0
            with pytest.raises(RemoteError) as excinfo:
                client.request("check", repo="main", families=["nope"])
            assert excinfo.value.code == "bad-params"
            with pytest.raises(RemoteError) as excinfo:
                client.request("check", repo="main", severity="fatal")
            assert excinfo.value.code == "bad-params"

    def test_check_unknown_repo(self, server):
        with InProcessClient(server) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.request("check", repo="ghost")
            assert excinfo.value.code == "no-such-repo"


class TestCheckCache:
    """The per-repo check-result cache is shared across connections and
    keyed on (families, severity, workers, columnar); an edit-txn epoch
    bump invalidates it wholesale."""

    @staticmethod
    def _cache_counts():
        from repro.obs.metrics import REGISTRY
        hit = REGISTRY.get("server.check_cache", result="hit")
        miss = REGISTRY.get("server.check_cache", result="miss")
        return ((hit.value if hit else 0), (miss.value if miss else 0))

    def test_identical_checks_hit_across_connections(self, server):
        host_corpus(server)
        with InProcessClient(server) as first, \
                InProcessClient(server) as second:
            hits0, misses0 = self._cache_counts()
            mine = first.request("check", repo="main")
            theirs = second.request("check", repo="main")
            assert theirs == mine
            hits1, misses1 = self._cache_counts()
            assert misses1 == misses0 + 1
            assert hits1 == hits0 + 1

    def test_different_parameters_miss(self, server):
        host_corpus(server)
        with InProcessClient(server) as client:
            _, misses0 = self._cache_counts()
            client.request("check", repo="main")
            client.request("check", repo="main", severity="error")
            client.request("check", repo="main",
                           families=["structural"])
            _, misses1 = self._cache_counts()
            assert misses1 == misses0 + 3

    def test_epoch_bump_invalidates(self, server):
        state = host_corpus(server)
        eid = named_eids(state, 1)[0]
        with InProcessClient(server) as client:
            stale = client.request("check", repo="main")
            assert stale["epoch"] == 0
            client.request("edit-txn", repo="main", base_epoch=0,
                           ops=[rename_op(eid, "CacheBuster")])
            assert state.check_cache == {}
            hits0, misses0 = self._cache_counts()
            fresh = client.request("check", repo="main")
            assert fresh["epoch"] == 1
            hits1, misses1 = self._cache_counts()
            assert (hits1, misses1) == (hits0, misses0 + 1)

    def test_cached_document_is_a_copy(self, server):
        host_corpus(server)
        with InProcessClient(server) as client:
            first = client.request("check", repo="main")
            first["families"] = "mutated by the caller"
            again = client.request("check", repo="main")
            assert again["families"] != "mutated by the caller"

    def test_workers_and_columnar_parity_over_the_wire(self, server):
        host_corpus(server)
        with InProcessClient(server) as client:
            serial = client.request("check", repo="main",
                                    incremental=False)
            sharded = client.request("check", repo="main", workers=2)
            columnar = client.request("check", repo="main",
                                      columnar=True, incremental=False)
            assert sharded == serial
            assert columnar == serial


class TestEditTxn:
    def test_edit_txn_applies_and_bumps_epoch(self, server):
        state = host_corpus(server)
        eid = named_eids(state, 1)[0]
        with InProcessClient(server) as client:
            result = client.request(
                "edit-txn", repo="main", base_epoch=0,
                ops=[rename_op(eid, "Renamed")])
            assert result["epoch"] == 1 and result["applied"] == 1
            assert eid in result["touched"]
            element = state.model.index().resolve_eid(eid)
            assert element.eget("name") == "Renamed"

    def test_edit_txn_create_alias_and_delete(self, server):
        state = host_corpus(server)
        before = state.model.size()
        with InProcessClient(server) as client:
            result = client.request(
                "edit-txn", repo="main", base_epoch=0,
                ops=[{"op": "create", "metaclass": "GLibrary",
                      "attrs": {"name": "fresh"}, "as": "lib"},
                     {"op": "set", "element": "$lib", "feature": "name",
                      "value": "fresher"}])
            assert result["applied"] == 2
            assert state.model.size() == before + 1

    def test_edit_txn_stale_epoch_is_replayable(self, server):
        state = host_corpus(server)
        eid = named_eids(state, 1)[0]
        first = InProcessClient(server)
        second = InProcessClient(server)
        try:
            first.request("edit-txn", repo="main", base_epoch=0,
                          ops=[rename_op(eid, "FromFirst")])
            ops = [rename_op(eid, "FromSecond")]
            with pytest.raises(RemoteError) as excinfo:
                second.request("edit-txn", repo="main", base_epoch=0,
                               ops=ops)
            error = excinfo.value
            assert error.code == "conflict"
            assert error.data["replayable"] is True
            assert error.data["current_epoch"] == 1
            assert error.data["ops"] == ops     # replay verbatim
            replay = second.request(
                "edit-txn", repo="main",
                base_epoch=error.data["current_epoch"], ops=ops)
            assert replay["epoch"] == 2
            element = state.model.index().resolve_eid(eid)
            assert element.eget("name") == "FromSecond"
            assert state.edits_applied == 2
            assert state.edits_rejected == 1
        finally:
            first.close()
            second.close()

    def test_edit_txn_rolls_back_whole_batch(self, server):
        state = host_corpus(server)
        eid = named_eids(state, 1)[0]
        element = state.model.index().resolve_eid(eid)
        original = element.eget("name")
        with InProcessClient(server) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.request(
                    "edit-txn", repo="main", base_epoch=0,
                    ops=[rename_op(eid, "Halfway"),
                         {"op": "set", "element": "missing-eid",
                          "feature": "name", "value": "x"}])
            assert excinfo.value.code == "bad-params"
            # the journal rolled the first op back too
            assert element.eget("name") == original
            assert state.epoch == 0
            assert state.edits_applied == 0

    def test_edit_txn_kernel_failure_is_txn_failed(self, server):
        state = host_corpus(server)
        eid = named_eids(state, 1)[0]
        element = state.model.index().resolve_eid(eid)
        original = element.eget("name")
        with InProcessClient(server) as client:
            ops = [rename_op(eid, "Halfway"),
                   # 'add' on a scalar feature blows up inside the kernel
                   {"op": "add", "element": eid, "feature": "name",
                    "value": "x"}]
            with pytest.raises(RemoteError) as excinfo:
                client.request("edit-txn", repo="main", base_epoch=0,
                               ops=ops)
            error = excinfo.value
            assert error.code == "txn-failed"
            assert error.data["rolled_back"] is True
            assert error.data["replayable"] is True
            assert error.data["ops"] == ops
            assert element.eget("name") == original
            assert state.epoch == 0

    def test_watch_pushes_diagnostics_events(self, server):
        state = host_corpus(server)
        eid = named_eids(state, 1)[0]
        watcher = InProcessClient(server)
        editor = InProcessClient(server)
        try:
            subscribed = watcher.request("watch", repo="main")
            assert subscribed["watching"] is True
            editor.request("edit-txn", repo="main", base_epoch=0,
                           ops=[rename_op(eid, "Watched")])
            events = watcher.drain_events()
            assert len(events) == 1
            event = events[0]
            assert event["event"] == "diagnostics"
            assert event["repo"] == "main" and event["epoch"] == 1
            assert eid in event["touched"]
            assert "errors" in event["data"]
            # stop watching: further edits push nothing
            watcher.request("watch", repo="main", stop=True)
            editor.request("edit-txn", repo="main", base_epoch=1,
                           ops=[rename_op(eid, "Unwatched")])
            assert watcher.drain_events() == []
        finally:
            watcher.close()
            editor.close()

    def test_stats_verb_is_session_passthrough(self, server):
        state = host_corpus(server)
        with InProcessClient(server) as client:
            client.request("check", repo="main")
            document = client.request("stats", repo="main")
            local = state.session.stats()
            assert document["model"] == local["model"]
            assert document["server"]["repo"] == "main"
            assert "units" in document["engine"]
            top = client.request("stats")
            assert top["server"]["protocol"] >= 1
            assert "main" in top["server"]["repos"]


# ---------------------------------------------------------------------------
# isolation
# ---------------------------------------------------------------------------

class TestIsolation:
    def test_other_repo_edits_never_invalidate_my_engine(self, server):
        host_corpus(server, "alpha", size=60, seed=4)
        beta = host_corpus(server, "beta", size=60, seed=5)
        reader = InProcessClient(server)
        editor = InProcessClient(server)
        try:
            reader.request("check", repo="alpha")
            engine = reader._conn.engines["alpha"]
            baseline = engine.stats.invalidations
            editor.request(
                "edit-txn", repo="beta", base_epoch=0,
                ops=[rename_op(named_eids(beta, 1)[0], "BetaEdit")])
            assert engine.stats.invalidations == baseline
            assert not engine._dirty
        finally:
            reader.close()
            editor.close()

    def test_other_clients_checks_never_touch_my_engine(self, server):
        host_corpus(server, "alpha", size=60, seed=4)
        first = InProcessClient(server)
        second = InProcessClient(server)
        try:
            first.request("check", repo="alpha")
            mine = first._conn.engines["alpha"]
            baseline = (mine.stats.revalidations, mine.stats.unit_runs)
            for _ in range(3):
                second.request("check", repo="alpha")
            # identical same-epoch checks are served from the repo's
            # check cache: the second client never even builds an
            # engine, let alone touches mine
            assert "alpha" not in second._conn.engines
            assert (mine.stats.revalidations,
                    mine.stats.unit_runs) == baseline
            # a differently-parameterized check does build its own
            second.request("check", repo="alpha", severity="error")
            theirs = second._conn.engines["alpha"]
            assert theirs is not mine
            assert (mine.stats.revalidations,
                    mine.stats.unit_runs) == baseline
        finally:
            first.close()
            second.close()

    def test_same_repo_edit_invalidates_precisely(self, server):
        state = host_corpus(server, "alpha", size=60, seed=4)
        reader = InProcessClient(server)
        editor = InProcessClient(server)
        try:
            reader.request("check", repo="alpha")
            engine = reader._conn.engines["alpha"]
            editor.request(
                "edit-txn", repo="alpha", base_epoch=0,
                ops=[rename_op(named_eids(state, 1)[0], "AlphaEdit")])
            # correctness: the committed edit marks affected units dirty
            assert engine.stats.invalidations > 0
            document = reader.request("check", repo="alpha")
            assert document["epoch"] == 1
        finally:
            reader.close()
            editor.close()


# ---------------------------------------------------------------------------
# concurrency properties (generated models, epoch retry)
# ---------------------------------------------------------------------------

class TestConcurrencyProperties:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_two_clients_conflicting_edits_all_converge(self, server,
                                                        seed):
        state = host_corpus(server, size=100, seed=seed)
        eids = named_eids(state, 8)
        edits_per_client = 12
        barrier = threading.Barrier(2)
        outcomes = {}

        def editor(tag):
            applied = conflicts = 0
            epoch = 0
            with InProcessClient(server) as client:
                barrier.wait()
                for index in range(edits_per_client):
                    ops = [rename_op(eids[index % len(eids)],
                                     f"{tag}-{index}")]
                    while True:
                        try:
                            result = client.request(
                                "edit-txn", repo="main",
                                base_epoch=epoch, ops=ops)
                            epoch = result["epoch"]
                            applied += 1
                            break
                        except RemoteError as error:
                            assert error.code == "conflict"
                            assert error.data["replayable"] is True
                            assert error.data["ops"] == ops
                            conflicts += 1
                            epoch = error.data["current_epoch"]
            outcomes[tag] = (applied, conflicts)

        threads = [threading.Thread(target=editor, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        # 100% of conflicting edit-txns either applied or were rejected
        # with a replayable conflict that then applied: nothing lost.
        total_applied = sum(applied for applied, _ in outcomes.values())
        total_conflicts = sum(c for _, c in outcomes.values())
        assert total_applied == 2 * edits_per_client
        assert state.epoch == total_applied
        assert state.edits_applied == total_applied
        assert state.edits_rejected == total_conflicts
        # last writer's value actually stuck (model is consistent)
        for eid in eids:
            element = state.model.index().resolve_eid(eid)
            assert element.eget("name").split("-")[0] in ("a", "b")


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

class TestTcpTransport:
    def test_round_trip_and_framing_recovery(self):
        server = ModelServer(max_frame=64 * 1024)
        tcp = serve_tcp(server, port=0)
        host, port = tcp.address
        try:
            with TcpClient(host, port) as client:
                assert client.request("ping")["pong"] is True
                # an oversized line is rejected without killing the
                # connection, and the reader resynchronizes on newline
                frame = client.send_raw(b"x" * (128 * 1024) + b"\n")
                assert frame["error"]["code"] == "oversized"
                assert client.request("ping")["pong"] is True
        finally:
            tcp.shutdown()

    def test_disconnect_mid_transaction_rolls_back(self):
        """A client that dies right after submitting a failing edit-txn
        leaves the repository untouched for everyone else."""
        import socket as socket_module

        from repro.server.protocol import encode_frame, request_frame

        server = ModelServer()
        state = host_corpus(server, size=60, seed=7)
        eid = named_eids(state, 1)[0]
        element = state.model.index().resolve_eid(eid)
        original = element.eget("name")
        tcp = serve_tcp(server, port=0)
        host, port = tcp.address
        try:
            doomed = socket_module.create_connection((host, port))
            doomed.sendall(encode_frame(request_frame(
                1, "edit-txn",
                {"repo": "main", "base_epoch": 0,
                 "ops": [rename_op(eid, "Halfway"),
                         {"op": "set", "element": "missing",
                          "feature": "name", "value": "x"}]})))
            doomed.close()                    # gone before the response
            with TcpClient(host, port) as client:
                document = client.request("check", repo="main")
                assert document["epoch"] == 0
            assert element.eget("name") == original
            assert state.epoch == 0
        finally:
            tcp.shutdown()

    def test_four_concurrent_tcp_clients(self):
        server = ModelServer()
        state = host_corpus(server, size=100, seed=9)
        eids = named_eids(state, 6)
        tcp = serve_tcp(server, port=0)
        host, port = tcp.address
        edits_per_client = 5
        barrier = threading.Barrier(4)
        failures = []

        def worker(tag):
            try:
                with TcpClient(host, port) as client:
                    assert client.request(
                        "check", repo="main")["repo"] == "main"
                    epoch = 0
                    barrier.wait()
                    for index in range(edits_per_client):
                        ops = [rename_op(eids[index % len(eids)],
                                         f"{tag}-{index}")]
                        while True:
                            try:
                                result = client.request(
                                    "edit-txn", repo="main",
                                    base_epoch=epoch, ops=ops)
                                epoch = result["epoch"]
                                break
                            except RemoteError as error:
                                assert error.code == "conflict"
                                epoch = error.data["current_epoch"]
                    assert client.request(
                        "check", repo="main")["ok"] in (True, False)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((tag, exc))

        threads = [threading.Thread(target=worker, args=(f"t{n}",))
                   for n in range(4)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert failures == []
            assert state.epoch == 4 * edits_per_client
            assert state.edits_applied == 4 * edits_per_client
        finally:
            tcp.shutdown()
        # clean shutdown: no connections left behind
        assert server._connections == {}


class TestDisconnectsAndInterleaving:
    """Satellite coverage: mid-frame disconnects near the frame cap and
    watch events interleaving with conflict replays."""

    def test_mid_frame_disconnect_near_cap(self):
        import socket as socket_module

        server = ModelServer()
        host_corpus(server, size=40, seed=11)
        tcp = serve_tcp(server, port=0)
        host, port = tcp.address
        try:
            # ~7 MiB of a single frame, no terminating newline, then gone
            doomed = socket_module.create_connection((host, port))
            doomed.sendall(b'{"id": 1, "verb": "edit-txn", "params": {"x": "'
                           + b"a" * (7 * 1024 * 1024))
            doomed.close()
            # and the same past the cap (discard mode), also cut short
            doomed = socket_module.create_connection((host, port))
            doomed.sendall(b'{"id": 2, "verb": "check", "params": {"x": "'
                           + b"b" * (9 * 1024 * 1024))
            doomed.close()
            # the server survives both and still answers cleanly
            with TcpClient(host, port) as client:
                document = client.request("check", repo="main")
                assert document["repo"] == "main"
            assert server.repo("main").epoch == 0
        finally:
            tcp.shutdown()

    def test_watch_events_interleave_with_conflict_replays(self):
        server = ModelServer()
        state = host_corpus(server, size=60, seed=13)
        eids = named_eids(state, 2)
        tcp = serve_tcp(server, port=0)
        host, port = tcp.address
        try:
            watcher = TcpClient(host, port)
            watcher.request("watch", repo="main")
            editor = TcpClient(host, port)
            editor.request("edit-txn", repo="main", base_epoch=0,
                           ops=[rename_op(eids[0], "First")])
            # a stale replay: rejected once (no event), replayed fine
            with pytest.raises(RemoteError) as info:
                editor.request("edit-txn", repo="main", base_epoch=0,
                               ops=[rename_op(eids[1], "Second")])
            assert info.value.code == "conflict"
            replay_epoch = info.value.data["current_epoch"]
            editor.request("edit-txn", repo="main",
                           base_epoch=replay_epoch,
                           ops=info.value.data["ops"])
            events = watcher.drain_events(minimum=2, timeout=5.0)
            diagnostics = [e for e in events
                           if e["event"] == "diagnostics"]
            # exactly the two committed epochs, in order — nothing for
            # the rejected attempt
            assert [e["epoch"] for e in diagnostics] == [1, 2]
            editor.close()
            watcher.close()
        finally:
            tcp.shutdown()
