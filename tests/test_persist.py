"""Crash-safe persistence: atomic saves, backups, corruption detection.

Covers the three guarantees of :mod:`repro.xmi.persist` — a save is
atomic (a crash at any probe site leaves the previous generation
loadable), the previous generation survives as ``.bak``, and corrupt
input is *detected* (typed :class:`CorruptModelError` with a recovery
path) rather than silently parsed into a wrong model.  The torn-write
cases drive the real fault probes instead of simulating with mocks, so
they exercise the identical code path a chaos run does.
"""

from __future__ import annotations

import os

import pytest

from kernel_fixture import TEST_PKG, TBook, TLibrary
from repro import faults
from repro.mof import compare
from repro.mof.repository import Model
from repro.xmi import (
    CorruptModelError,
    atomic_write_text,
    backup_path,
    load_model,
    save_model,
    write_json,
    write_xml,
)


@pytest.fixture
def model():
    library = TLibrary(name="lib")
    for title in ("a", "b", "c"):
        library.books.append(TBook(name=title, pages=10))
    library.featured = library.books[1]
    model = Model("urn:test:persist")
    model.add_root(library)
    return model


def roundtrip_identical(model, loaded):
    return compare(model.roots[0], loaded.roots[0]).identical


# ---------------------------------------------------------------------------
# Round trips and format handling
# ---------------------------------------------------------------------------

class TestRoundtrip:
    @pytest.mark.parametrize("name", ["m.xmi", "m.xml", "m.json"])
    def test_save_load_identical(self, model, tmp_path, name):
        path = tmp_path / name
        save_model(model, path)
        loaded = load_model(path, [TEST_PKG])
        assert roundtrip_identical(model, loaded)

    def test_format_override_beats_extension(self, model, tmp_path):
        path = tmp_path / "model.dat"
        fmt = save_model(model, path, format="json")
        assert fmt == "json"
        loaded = load_model(path, [TEST_PKG], format="json")
        assert roundtrip_identical(model, loaded)

    def test_unknown_format_rejected(self, model, tmp_path):
        from repro.xmi import PersistenceError
        with pytest.raises(PersistenceError):
            save_model(model, tmp_path / "m.xmi", format="yaml")

    def test_unsealed_foreign_files_still_load(self, model, tmp_path):
        # files written by plain write_xml/write_json (no digest) load
        xml_path, json_path = tmp_path / "f.xmi", tmp_path / "f.json"
        xml_path.write_text(write_xml(model), encoding="utf-8")
        json_path.write_text(write_json(model), encoding="utf-8")
        assert roundtrip_identical(model, load_model(xml_path, [TEST_PKG]))
        assert roundtrip_identical(model, load_model(json_path, [TEST_PKG]))

    def test_repository_registration(self, model, tmp_path):
        from repro.mof.repository import Repository
        path = tmp_path / "m.xmi"
        save_model(model, path)
        repo = Repository()
        loaded = load_model(path, [TEST_PKG], repository=repo)
        assert loaded in repo.models.values() \
            or loaded in list(repo.models)


# ---------------------------------------------------------------------------
# Corruption detection
# ---------------------------------------------------------------------------

class TestCorruption:
    def test_truncated_xml_detected(self, model, tmp_path):
        path = tmp_path / "m.xmi"
        save_model(model, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[:len(text) // 2], encoding="utf-8")
        with pytest.raises(CorruptModelError):
            load_model(path, [TEST_PKG])

    def test_single_character_garble_caught_by_digest(self, model,
                                                      tmp_path):
        # still well-formed XML -> only the digest can notice
        path = tmp_path / "m.xmi"
        save_model(model, path)
        text = path.read_text(encoding="utf-8")
        assert 'name="b"' in text
        path.write_text(text.replace('name="b"', 'name="z"', 1),
                        encoding="utf-8")
        with pytest.raises(CorruptModelError, match="digest"):
            load_model(path, [TEST_PKG])

    def test_json_garble_caught_by_digest(self, model, tmp_path):
        path = tmp_path / "m.json"
        save_model(model, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"a"', '"zz"', 1), encoding="utf-8")
        with pytest.raises(CorruptModelError, match="digest"):
            load_model(path, [TEST_PKG])

    def test_empty_file_detected(self, tmp_path):
        path = tmp_path / "m.xmi"
        path.write_text("", encoding="utf-8")
        with pytest.raises(CorruptModelError, match="empty"):
            load_model(path, [TEST_PKG])

    def test_error_carries_backup_path(self, model, tmp_path):
        path = tmp_path / "m.xmi"
        save_model(model, path)
        save_model(model, path)              # second save creates .bak
        path.write_text("<garbage", encoding="utf-8")
        with pytest.raises(CorruptModelError) as excinfo:
            load_model(path, [TEST_PKG])
        assert excinfo.value.backup_path == str(backup_path(path))
        assert "retained at" in str(excinfo.value)

    def test_fallback_to_backup_recovers(self, model, tmp_path):
        path = tmp_path / "m.json"
        save_model(model, path)
        model.roots[0].books[0].pages = 77   # next generation differs
        save_model(model, path)
        path.write_text("{not json", encoding="utf-8")
        loaded = load_model(path, [TEST_PKG], fallback_to_backup=True)
        # the backup holds the generation before the corrupted save
        assert loaded.roots[0].books[0].pages == 10

    def test_fallback_without_backup_still_raises(self, model, tmp_path):
        path = tmp_path / "m.json"
        save_model(model, path)              # first save: no .bak yet
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CorruptModelError):
            load_model(path, [TEST_PKG], fallback_to_backup=True)


# ---------------------------------------------------------------------------
# Atomicity under injected faults
# ---------------------------------------------------------------------------

class TestAtomicity:
    def test_backup_retained_and_loadable(self, model, tmp_path):
        path = tmp_path / "m.xmi"
        save_model(model, path)
        model.roots[0].books[0].pages = 77
        save_model(model, path)
        bak = backup_path(path)
        assert os.path.exists(bak)
        loaded = load_model(bak, [TEST_PKG])
        assert loaded.roots[0].books[0].pages == 10

    def test_no_backup_when_disabled(self, model, tmp_path):
        path = tmp_path / "m.xmi"
        save_model(model, path)
        save_model(model, path, keep_backup=False)
        assert not os.path.exists(backup_path(path))

    @pytest.mark.parametrize("site", ["io.write", "io.write.partial",
                                      "io.replace"])
    def test_crash_window_leaves_old_generation_loadable(
            self, model, tmp_path, site):
        path = tmp_path / "m.xmi"
        save_model(model, path)
        model.roots[0].books[0].pages = 77
        plan = faults.FaultPlan(seed=1, rate=1.0, sites=[site])
        with pytest.raises(faults.InjectedFault):
            with faults.injected(plan):
                save_model(model, path)
        # the interrupted save must not tear the previous generation
        loaded = load_model(path, [TEST_PKG])
        assert loaded.roots[0].books[0].pages == 10
        assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]

    def test_atomic_write_text_plain(self, tmp_path):
        path = tmp_path / "note.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text(encoding="utf-8") == "two"
        assert (tmp_path / "note.txt.bak").read_text(
            encoding="utf-8") == "one"
