"""Smoke tests: every example script runs to completion.

Protects the documented entry points from rot; output is captured and a
few load-bearing phrases are asserted.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = [
    ("quickstart.py", ["PIM -> PSM", "typedef struct"]),
    ("protocol_stack.py", ["conformance: PASS", "one PIM, two platforms"]),
    ("embedded_controller.py", ["SCHEDULABLE", "SC_MODULE"]),
    ("usecases_as_tests.py", ["scenario 'happy-path': PASS",
                              "coupling density"]),
    ("model_evolution.py", ["round trip is byte-identical",
                            "structural diff"]),
    ("information_model.py", ["CREATE TABLE customer",
                              "relational table"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run([sys.executable, path],
                            capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    for phrase in expected:
        assert phrase in result.stdout, (
            f"{script}: {phrase!r} missing from output")
