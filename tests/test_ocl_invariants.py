"""Tests for invariants and constraint sets."""

import pytest

from repro.mof import Model, Severity, validate_tree
from repro.ocl import ConstraintSet, Invariant, invariant
from repro.uml import Clazz, ModelFactory, Property


@pytest.fixture
def model():
    factory = ModelFactory("inv")
    factory.clazz("Good", attrs={"x": "Integer"})
    factory.clazz("AlsoGood", attrs={"y": "Integer"})
    return factory


class TestInvariant:
    def test_holds(self, model):
        inv = Invariant(Clazz, "short-name", "name.size() < 10")
        good = model.model.member("Good")
        assert inv.holds(good)

    def test_register_unregister(self, model):
        inv = invariant(Clazz, "named", "name <> ''")
        try:
            assert inv in Clazz._meta.invariants
            report = validate_tree(model.model)
            assert report.ok
            model.clazz("")
            report = validate_tree(model.model)
            assert any(d.code == "invariant" for d in report.errors)
        finally:
            inv.unregister()
        assert inv not in Clazz._meta.invariants

    def test_double_register_is_idempotent(self):
        inv = Invariant(Clazz, "x", "true")
        try:
            inv.register()
            inv.register()
            assert Clazz._meta.invariants.count(inv) == 1
        finally:
            inv.unregister()

    def test_inherited_invariants_apply_to_subclasses(self, model):
        from repro.uml import Classifier
        inv = invariant(Classifier, "classifier-named", "name <> ''")
        try:
            model.clazz("")       # Clazz conforms to Classifier
            report = validate_tree(model.model)
            assert any(d.code == "invariant" for d in report.errors)
        finally:
            inv.unregister()

    def test_severity_warning(self, model):
        inv = Invariant(Clazz, "soft", "name.size() < 2",
                        severity=Severity.WARNING)
        inv.register()
        try:
            report = validate_tree(model.model)
            assert report.ok                      # warnings don't fail
            assert report.warnings
        finally:
            inv.unregister()


class TestConstraintSet:
    def test_check_without_registration(self, model):
        constraints = ConstraintSet("L0")
        constraints.add(Clazz, "has-x-or-y",
                        "owned_attributes->notEmpty()")
        report = constraints.evaluate(model.model)
        assert report.ok
        assert not Clazz._meta.invariants     # unregistered by design

    def test_violations_reported_per_element(self, model):
        constraints = ConstraintSet("L0")
        constraints.add(Clazz, "x-attr",
                        "owned_attributes->exists(p | p.name = 'x')")
        report = constraints.evaluate(model.model)
        # 'AlsoGood' has y, not x
        assert len(report.errors) == 1

    def test_broken_expression_reported_not_raised(self, model):
        constraints = ConstraintSet("L0")
        constraints.add(Clazz, "broken", "no_such_feature > 1")
        report = constraints.evaluate(model.model)
        assert any(d.code == "invariant-error" for d in report.errors)

    def test_register_all(self, model):
        constraints = ConstraintSet("L0")
        constraints.add(Clazz, "a", "true")
        constraints.add(Clazz, "b", "true")
        constraints.register_all()
        try:
            assert len([i for i in Clazz._meta.invariants
                        if i in constraints.invariants]) == 2
        finally:
            constraints.unregister_all()

    def test_check_scoped_to_element(self, model):
        constraints = ConstraintSet("L0")
        constraints.add(Property, "typed", "type <> null")
        good = model.model.member("Good")
        report = constraints.evaluate(good)
        assert report.ok

    def test_len(self):
        constraints = ConstraintSet("L0")
        constraints.add(Clazz, "a", "true")
        assert len(constraints) == 1
