"""Tests for activity → IR lowering, checked against the interpreter."""

import pytest

from repro.codegen import (
    ActivityLoweringError,
    CPrinter,
    CompilationUnit,
    lower_activity,
)
from repro.uml import Activity
from repro.validation import run_activity


def linear():
    activity = Activity(name="calibrate")
    start = activity.add_initial()
    a = activity.add_action("a", body="x := x + 1")
    b = activity.add_action("b", body="x := x * 2")
    end = activity.add_final()
    activity.flow(start, a)
    activity.flow(a, b)
    activity.flow(b, end)
    return activity


def decided():
    activity = Activity(name="route")
    start = activity.add_initial()
    decision = activity.add_decision()
    hot = activity.add_action("hot", body="y := 1")
    cold = activity.add_action("cold", body="y := 2")
    merge = activity.add_merge()
    after = activity.add_action("after", body="z := y + 10")
    end = activity.add_final()
    activity.flow(start, decision)
    activity.flow(decision, hot, guard="x > 10")
    activity.flow(decision, cold, guard="else")
    activity.flow(hot, merge)
    activity.flow(cold, merge)
    activity.flow(merge, after)
    activity.flow(after, end)
    return activity


def render(function):
    unit = CompilationUnit(name="u", functions=[function])
    return CPrinter().print_unit(unit)


class TestLowering:
    def test_linear_statements_in_order(self):
        function = lower_activity(linear(), field_names={"x"})
        text = render(function)
        assert "self->x = self->x + 1;" in text
        assert "self->x = self->x * 2;" in text
        assert text.index("+ 1") < text.index("* 2")
        assert "return;" in text

    def test_decision_becomes_if_else(self):
        function = lower_activity(decided())
        text = render(function)
        assert "if (x > 10) {" in text
        assert "else {" in text
        assert "y = 2;" in text
        # post-merge code appears exactly once (after the if/else)
        assert text.count("z = y + 10;") == 1

    def test_fork_join_rejected(self):
        activity = Activity(name="par")
        start = activity.add_initial()
        fork = activity.add_fork()
        activity.flow(start, fork)
        with pytest.raises(ActivityLoweringError):
            lower_activity(activity)

    def test_cycle_rejected(self):
        activity = Activity(name="loop")
        start = activity.add_initial()
        a = activity.add_action("a")
        b = activity.add_action("b")
        activity.flow(start, a)
        activity.flow(a, b)
        activity.flow(b, a)             # cycle
        with pytest.raises(ActivityLoweringError):
            lower_activity(activity)

    def test_missing_initial_rejected(self):
        activity = Activity(name="empty")
        with pytest.raises(ActivityLoweringError):
            lower_activity(activity)


class TestSemanticsAgreement:
    """The compiled control flow and the token interpreter agree."""

    @pytest.mark.parametrize("x,expected_y", [(50, 1), (1, 2)])
    def test_decision_agrees_with_interpreter(self, x, expected_y):
        run = run_activity(decided(), {"x": x, "y": 0, "z": 0})
        assert run.variables["y"] == expected_y
        assert run.variables["z"] == expected_y + 10
        # and the generated code takes the same branch textually
        function = lower_activity(decided())
        text = render(function)
        then_branch = text.split("if (x > 10) {")[1].split("else {")[0]
        assert "y = 1;" in then_branch
