"""Tests for the OCL unparser: parse ∘ unparse is identity on ASTs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ocl import evaluate, parse, unparse

ROUND_TRIP_CASES = [
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "not a and b or c implies d",
    "a.b.c",
    "self.owned_attributes->select(p | p.type <> null)->size()",
    "xs->forAll(a, b | a = b)",
    "if x > 0 then 'pos' else 'neg' endif",
    "let y = 4 in y * y",
    "Set{1, 2, 3}->union(Sequence{4..6})",
    "'it''s ok'.size()" .replace("''", "\\'"),
    "self.oclIsKindOf(Clazz)",
    "-x + 1",
    "10 div 3 mod 2",
    "Clazz.allInstances()->isEmpty()",
    "null = x",
]


@pytest.mark.parametrize("text", ROUND_TRIP_CASES)
def test_examples_round_trip(text):
    ast = parse(text)
    rendered = unparse(ast)
    assert parse(rendered) == ast, rendered


def test_unparse_is_stable():
    text = "a + b * c - d"
    once = unparse(parse(text))
    assert unparse(parse(once)) == once


# --- property: random ASTs survive the round trip -------------------------

names = st.sampled_from(["a", "b", "x", "y", "foo"])
numbers = st.integers(-50, 50)


def exprs(depth):
    if depth <= 0:
        return st.one_of(
            names.map(lambda n: parse(n)),
            numbers.map(lambda v: parse(str(v))),
            st.sampled_from([parse("true"), parse("false"),
                             parse("null"), parse("self")]))
    sub = exprs(depth - 1)
    binop = st.tuples(
        st.sampled_from(["+", "-", "*", "and", "or", "=", "<",
                         "implies", "div"]),
        sub, sub).map(lambda t: _binop(*t))
    unop = sub.map(lambda e: _unop(e))
    nav = st.tuples(sub, names).map(
        lambda t: _nav(t[0], t[1]))
    arrow = st.tuples(sub, names, sub).map(
        lambda t: _arrow(t[0], t[1], t[2]))
    return st.one_of(sub, binop, unop, nav, arrow)


def _binop(op, left, right):
    from repro.ocl.ast import BinOp
    return BinOp(op=op, left=left, right=right)


def _unop(operand):
    from repro.ocl.ast import UnOp
    return UnOp(op="not", operand=operand)


def _nav(source, name):
    from repro.ocl.ast import Nav
    return Nav(source=source, name=name)


def _arrow(source, iterator, body):
    from repro.ocl.ast import ArrowCall
    return ArrowCall(source=source, name="select",
                     iterators=(iterator,), body=body)


@settings(max_examples=120, deadline=None)
@given(exprs(3))
def test_random_asts_round_trip(ast):
    rendered = unparse(ast)
    assert parse(rendered) == ast, rendered


@settings(max_examples=60, deadline=None)
@given(st.integers(-100, 100), st.integers(-100, 100),
       st.integers(-100, 100))
def test_round_trip_preserves_value(a, b, c):
    text = f"({a}) + ({b}) * ({c})"
    assert evaluate(unparse(parse(text))) == a + b * c
