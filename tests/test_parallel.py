"""Tests for multi-core sharded checking (repro.parallel).

The contract under test: ``Session.check(workers=N)`` produces a
diagnostic document *byte-identical* to the sequential run for every N,
workers that die degrade to an in-process re-check (with a warning,
never a crash or a dropped diagnostic), and the sharded path politely
refuses whenever its preconditions don't hold (one worker, dependency
tracking active, nothing shardable).
"""

import json

import pytest

from repro import faults
from repro.generate import EditFuzzer, demo_generator, demo_package
from repro.mof import Model, set_read_hook
from repro.mof.validate import validate_tree
from repro.ocl.invariants import ConstraintSet
from repro.parallel import (
    _slice_bounds,
    available_workers,
    diagnostic_to_record,
    parallel_check,
    parallel_validate_tree,
    record_to_diagnostic,
)
from repro.session import Session, _diagnostic_json


def dirty_session(seed=11, size=60, **kwargs):
    """A session over an unrepaired corpus (plenty of diagnostics)."""
    root = demo_generator(seed).generate(size)
    model = Model(f"urn:par{seed}")
    model.add_root(root)
    constraints = ConstraintSet("shelf-rules")
    constraints.add(demo_package().classifier("GShelf"), "has-library",
                    "not self.library.oclIsUndefined()")
    constraints.add(demo_package().classifier("GLibrary"), "unique-names",
                    "GBook.allInstances()->forAll(b | b.pages >= 0)")
    return Session(model, constraint_sets=[constraints], **kwargs)


def check_doc(session, **kwargs):
    return json.dumps(session.check(**kwargs).to_json(), sort_keys=True)


class TestSliceBounds:
    @pytest.mark.parametrize("total,workers", [
        (0, 1), (1, 1), (5, 2), (7, 3), (10, 4), (3, 8), (100, 7)])
    def test_contiguous_cover_balanced(self, total, workers):
        bounds = _slice_bounds(total, workers)
        assert len(bounds) == workers
        assert bounds[0][0] == 0 and bounds[-1][1] == total
        sizes = []
        for (start, stop), (next_start, _) in zip(bounds, bounds[1:]):
            assert stop == next_start
            sizes.append(stop - start)
        sizes.append(bounds[-1][1] - bounds[-1][0])
        assert max(sizes) - min(sizes) <= 1

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestDiagnosticRecords:
    def test_round_trip_preserves_rendered_identity(self):
        root = demo_generator(21).generate(50)
        report = validate_tree(root)
        assert report.diagnostics            # unrepaired: must have some
        for original in report.diagnostics:
            rebuilt = record_to_diagnostic(diagnostic_to_record(original))
            assert str(rebuilt) == str(original)
            assert rebuilt.render() == original.render()
            assert _diagnostic_json(rebuilt) == _diagnostic_json(original)


class TestWorkerParity:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_check_documents_byte_identical(self, workers):
        session = dirty_session()
        assert check_doc(session) == check_doc(session, workers=workers)

    def test_parity_survives_fuzzed_edits(self):
        session = dirty_session(seed=13)
        fuzzer = EditFuzzer(session.roots[0], seed=13)
        for _round in range(4):
            fuzzer.apply_random_edits(20)
            assert check_doc(session) == check_doc(session, workers=3)

    def test_columnar_and_parallel_compose(self):
        plain = dirty_session(seed=17)
        fast = dirty_session(seed=17, columnar=True)
        assert check_doc(plain) == check_doc(fast, workers=2)

    def test_shardable_subset_only(self):
        session = dirty_session(seed=19)
        families = ["structural", "constraint"]
        assert (check_doc(session, families=families)
                == check_doc(session, families=families, workers=2))

    def test_non_shardable_families_run_in_process(self):
        session = dirty_session(seed=19)
        families = ["wellformed", "consistency"]
        assert (check_doc(session, families=families)
                == check_doc(session, families=families, workers=4))


class TestDegradation:
    def test_dead_worker_degrades_with_warning(self):
        session = dirty_session(seed=23)
        expected = check_doc(session)
        plan = faults.FaultPlan(at={"parallel.worker": [1]})
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning,
                              match="exited without reporting"):
                got = check_doc(session, workers=2)
        assert plan.fault_count == 1
        assert got == expected               # nothing dropped, same bytes

    def test_all_workers_dead_still_completes(self):
        session = dirty_session(seed=23, size=40)
        expected = check_doc(session)
        plan = faults.FaultPlan(at={"parallel.worker": [1, 2]})
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning):
                got = check_doc(session, workers=2)
        assert got == expected


class TestRefusals:
    def test_workers_one_is_sequential(self):
        session = dirty_session(seed=29, size=30)
        assert parallel_check(session.model.roots,
                              ["structural"], workers=1) is None
        assert check_doc(session, workers=1) == check_doc(session)

    def test_nothing_shardable_returns_empty(self):
        session = dirty_session(seed=29, size=30)
        assert parallel_check(session.model.roots,
                              ["wellformed"], workers=4) == {}

    def test_read_hook_forces_sequential(self):
        # dependency tracking must observe per-element reads; forked
        # workers' reads are invisible to the parent's tracker
        session = dirty_session(seed=29, size=30)
        previous = set_read_hook(lambda element, key: None)
        try:
            assert parallel_check(session.model.roots,
                                  ["structural"], workers=4) is None
        finally:
            set_read_hook(previous)


class TestParallelValidateTree:
    def test_interleaving_matches_validate_tree(self):
        root = demo_generator(31).generate(60)
        sequential = validate_tree(root)
        sharded = parallel_validate_tree(root, workers=3)
        assert sharded is not None
        assert ([d.render() for d in sharded.diagnostics]
                == [d.render() for d in sequential.diagnostics])

    def test_quality_report_parity(self):
        from repro.generate import uml_generator
        root = uml_generator(37).generate(50)
        session = Session(root)
        serial = session.quality_report(root).to_json()
        sharded = session.quality_report(root, workers=3).to_json()
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(sharded, sort_keys=True)
