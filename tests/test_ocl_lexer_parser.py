"""Tests for the OCL lexer and parser."""

import pytest

from repro.ocl import OclSyntaxError, parse, tokenize
from repro.ocl.ast import (
    ArrowCall,
    BinOp,
    Call,
    CollectionLiteral,
    If,
    Ident,
    Let,
    Literal,
    Nav,
    Range,
    SelfExpr,
    UnOp,
)
from repro.ocl.lexer import TokenKind


class TestLexer:
    def test_numbers(self):
        kinds = [(t.kind, t.value) for t in tokenize("1 2.5 300")][:-1]
        assert kinds == [(TokenKind.INT, "1"), (TokenKind.REAL, "2.5"),
                         (TokenKind.INT, "300")]

    def test_range_not_real(self):
        values = [t.value for t in tokenize("1..5")][:-1]
        assert values == ["1", "..", "5"]

    def test_string_with_escape(self):
        tokens = tokenize(r"'a\'b\nc'")
        assert tokens[0].value == "a'b\nc"

    def test_unterminated_string(self):
        with pytest.raises(OclSyntaxError):
            tokenize("'oops")

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("self andx and")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[2].kind is TokenKind.KEYWORD

    def test_comments_skipped(self):
        tokens = tokenize("1 -- comment\n+ 2")
        assert [t.value for t in tokens][:-1] == ["1", "+", "2"]

    def test_multichar_operators(self):
        values = [t.value for t in tokenize("a->b <= c <> d :: e")][:-1]
        assert "->" in values and "<=" in values and "<>" in values \
               and "::" in values

    def test_unexpected_character(self):
        with pytest.raises(OclSyntaxError):
            tokenize("a $ b")


class TestParserShapes:
    def test_precedence_arithmetic(self):
        node = parse("1 + 2 * 3")
        assert isinstance(node, BinOp) and node.op == "+"
        assert isinstance(node.right, BinOp) and node.right.op == "*"

    def test_precedence_boolean(self):
        node = parse("a or b and c implies d")
        assert node.op == "implies"
        assert node.left.op == "or"

    def test_not_binds_tighter_than_and(self):
        node = parse("not a and b")
        assert node.op == "and"
        assert isinstance(node.left, UnOp)

    def test_comparison_non_associative(self):
        with pytest.raises(OclSyntaxError):
            parse("1 < 2 < 3")

    def test_navigation_chain(self):
        node = parse("self.a.b")
        assert isinstance(node, Nav) and node.name == "b"
        assert isinstance(node.source, Nav) and node.source.name == "a"
        assert isinstance(node.source.source, SelfExpr)

    def test_method_call(self):
        node = parse("self.f(1, 2)")
        assert isinstance(node, Call) and node.name == "f"
        assert len(node.args) == 2

    def test_arrow_with_iterator(self):
        node = parse("xs->select(x | x > 1)")
        assert isinstance(node, ArrowCall)
        assert node.iterators == ("x",)
        assert node.body is not None

    def test_arrow_implicit_iterator(self):
        node = parse("xs->forAll(y > 0)")
        assert node.iterators == ("__it",)

    def test_arrow_two_iterators(self):
        node = parse("xs->forAll(a, b | a = b)")
        assert node.iterators == ("a", "b")

    def test_arrow_plain_args(self):
        node = parse("xs->includes(3)")
        assert node.args and node.body is None

    def test_arrow_no_args(self):
        node = parse("xs->size()")
        assert node.name == "size" and not node.args

    def test_iterator_with_type_annotation(self):
        node = parse("xs->select(x : Integer | x > 1)")
        assert node.iterators == ("x",)

    def test_collection_literals(self):
        node = parse("Set{1, 2, 3}")
        assert isinstance(node, CollectionLiteral) and node.kind == "Set"
        node = parse("Sequence{1..5}")
        assert isinstance(node.items[0], Range)

    def test_if_and_let(self):
        node = parse("if a then 1 else 2 endif")
        assert isinstance(node, If)
        node = parse("let x = 3 in x + 1")
        assert isinstance(node, Let) and node.name == "x"

    def test_let_with_type_annotation(self):
        node = parse("let x : Integer = 3 in x")
        assert isinstance(node, Let)

    def test_qualified_name(self):
        node = parse("uml::Clazz")
        assert isinstance(node, Ident) and node.name == "uml::Clazz"

    def test_trailing_garbage(self):
        with pytest.raises(OclSyntaxError):
            parse("1 + 2 extra")

    def test_missing_endif(self):
        with pytest.raises(OclSyntaxError):
            parse("if a then 1 else 2")

    def test_error_position_reported(self):
        with pytest.raises(OclSyntaxError) as exc_info:
            parse("1 + ")
        assert "position" in str(exc_info.value)

    def test_nested_parens(self):
        node = parse("((1 + 2)) * 3")
        assert node.op == "*"

    def test_unary_minus(self):
        node = parse("-x + 1")
        assert node.op == "+"
        assert isinstance(node.left, UnOp) and node.left.op == "-"

    def test_div_mod_keywords(self):
        node = parse("7 div 2 mod 2")
        assert node.op == "mod"
        assert node.left.op == "div"
