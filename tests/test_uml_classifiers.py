"""Tests for UML classifiers, generalization, interfaces, enumerations."""

import pytest

from repro.uml import (
    Clazz,
    Enumeration,
    Interface,
    OpaqueBehavior,
    Operation,
    Property,
    StateMachine,
)


class TestGeneralization:
    def test_add_super_and_supers(self, factory):
        animal = factory.clazz("Animal", is_abstract=True)
        dog = factory.clazz("Dog", supers=[animal])
        assert dog.supers() == [animal]
        assert animal.specializations() == [dog]

    def test_all_supers_transitive(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B", supers=[a])
        c = factory.clazz("C", supers=[b])
        assert c.all_supers() == [b, a]
        assert c.conforms_to(a)
        assert not a.conforms_to(c)

    def test_inheritance_depth(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B", supers=[a])
        c = factory.clazz("C", supers=[b])
        assert a.inheritance_depth() == 0
        assert c.inheritance_depth() == 2

    def test_diamond_supers_deduplicated(self, factory):
        top = factory.clazz("Top")
        left = factory.clazz("Left", supers=[top])
        right = factory.clazz("Right", supers=[top])
        bottom = factory.clazz("Bottom", supers=[left, right])
        assert bottom.all_supers().count(top) == 1


class TestFeatures:
    def test_attribute_lookup_includes_inherited(self, factory):
        base = factory.clazz("Base", attrs={"id": "Integer"})
        derived = factory.clazz("Derived", attrs={"extra": "String"},
                                supers=[base])
        assert derived.attribute("id") is not None
        assert derived.attribute("extra") is not None
        assert [p.name for p in derived.all_attributes()] == ["id", "extra"]

    def test_operation_lookup(self, factory):
        cls = factory.clazz("Svc")
        factory.operation(cls, "run", returns="Integer")
        op = cls.operation("run")
        assert op is not None
        assert op.return_type().name == "Integer"
        assert op.signature() == "run() -> Integer"

    def test_operation_signature_with_params(self, factory):
        cls = factory.clazz("Svc")
        op = factory.operation(cls, "add",
                               params={"a": "Integer", "b": "Integer"},
                               returns="Integer")
        assert op.signature() == "add(a: Integer, b: Integer) -> Integer"
        assert len(op.in_parameters()) == 2


class TestInterfaces:
    def test_realization(self, factory):
        iface = factory.interface("Closeable", operations=["close"])
        cls = factory.clazz("File")
        cls.realize(iface)
        assert cls.realized_interfaces() == [iface]

    def test_interface_operations(self, factory):
        iface = factory.interface("Io", operations=["read", "write"])
        assert [op.name for op in iface.all_operations()] == ["read",
                                                              "write"]


class TestEnumerations:
    def test_literals(self, factory):
        enum = factory.enumeration("Color", ["red", "green", "blue"])
        assert enum.literal_names() == ["red", "green", "blue"]
        assert enum.literals[0].container is enum


class TestBehaviors:
    def test_state_machine_selection(self, factory):
        cls = factory.clazz("Robot")
        assert cls.state_machine() is None
        opaque = OpaqueBehavior(name="noop", body="x := 1")
        cls.owned_behaviors.append(opaque)
        assert cls.state_machine() is None      # opaque is not a machine
        machine = StateMachine(name="RobotSM")
        cls.owned_behaviors.append(machine)
        assert cls.state_machine() is machine
        # classifier_behavior takes precedence
        machine2 = StateMachine(name="Alt")
        cls.owned_behaviors.append(machine2)
        cls.classifier_behavior = machine2
        assert cls.state_machine() is machine2


class TestQualifiedNames:
    def test_qualified_name_walks_packages(self, factory):
        pkg = factory.package("inner")
        cls = factory.clazz("Deep", package=pkg)
        assert cls.qualified_name == "m::inner::Deep"
