"""Tests for the model factory, associations and relationship semantics."""

import pytest

from repro.uml import (
    Association,
    Clazz,
    Dependency,
    Package,
    PrimitiveDataType,
    Property,
    Refinement,
    UmlModel,
    Usage,
)


class TestFactoryBasics:
    def test_primitive_types_attached(self, factory):
        assert factory.string.name == "String"
        assert factory.integer.name == "Integer"
        assert factory.real.name == "Real"
        assert factory.boolean.name == "Boolean"
        assert isinstance(factory.string, PrimitiveDataType)

    def test_type_resolution_by_name(self, factory):
        cls = factory.clazz("C", attrs={"x": "Integer"})
        assert cls.attribute("x").type is factory.integer

    def test_unknown_type_raises(self, factory):
        with pytest.raises(KeyError):
            factory.clazz("C", attrs={"x": "Quaternion"})

    def test_nested_packages(self, factory):
        outer = factory.package("outer")
        inner = factory.package("inner", parent=outer)
        cls = factory.clazz("X", package=inner)
        assert cls.qualified_name == "m::outer::inner::X"
        assert outer.member("inner") is inner

    def test_members_of_type(self, factory):
        factory.clazz("A")
        factory.clazz("B")
        factory.package("p")
        classes = factory.model.members_of_type(Clazz)
        assert {c.name for c in classes} == {"A", "B"}

    def test_attribute_with_default(self, factory):
        cls = factory.clazz("C")
        prop = factory.attribute(cls, "retries", "Integer", default="3")
        assert prop.default_value == "3"


class TestAssociations:
    def test_navigable_end_owned_by_source(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        assoc = factory.associate(a, b, end_b="bee")
        end = a.attribute("bee")
        assert end is not None
        assert end.association is assoc
        assert end.is_association_end
        # non-navigable end owned by the association
        assert len(assoc.owned_ends) == 1
        assert assoc.owned_ends[0].type is a

    def test_bidirectional_association(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        assoc = factory.associate(a, b, end_b="bee", end_a="ay",
                                  navigable_b_to_a=True)
        assert b.attribute("ay").type is a
        assert len(assoc.owned_ends) == 0
        assert len(assoc.member_ends) == 2

    def test_opposite_end(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        factory.associate(a, b, end_b="bee", end_a="ay",
                          navigable_b_to_a=True)
        end = a.attribute("bee")
        assert end.opposite_end().name == "ay"

    def test_composite_aggregation(self, factory):
        whole = factory.clazz("Whole")
        part = factory.clazz("Part")
        factory.associate(whole, part, end_b="parts", composite_a=True,
                          b_upper=-1)
        end = whole.attribute("parts")
        assert end.is_composite
        assert end.is_many
        assert end.multiplicity_str() == "0..*"

    def test_association_end_queries(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        assoc = factory.associate(a, b, end_b="bee")
        assert assoc.end_for(b).name == "bee"
        assert assoc.other_end(a).type is b
        assert set(assoc.classifiers()) == {a, b}

    def test_self_association(self, factory):
        node = factory.clazz("Node")
        assoc = factory.associate(node, node, end_b="next", end_a="prev")
        assert assoc.other_end(node) is not None
        assert node.attribute("next").type is node

    def test_member_ends_capped_at_two(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        assoc = factory.associate(a, b)
        from repro.mof import MultiplicityError
        with pytest.raises(MultiplicityError):
            assoc.member_ends.append(Property(name="third", type=a))


class TestDependencies:
    def test_refinement_is_abstraction(self, factory):
        pim_cls = factory.clazz("Order")
        psm_cls = factory.clazz("OrderImpl")
        refinement = Refinement(name="r", client=psm_cls,
                                supplier=pim_cls, mapping="pim2psm")
        factory.model.add(refinement)
        assert isinstance(refinement, Dependency)
        assert refinement.mapping == "pim2psm"

    def test_usage(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        usage = Usage(name="u", client=a, supplier=b)
        factory.model.add(usage)
        assert usage.client is a and usage.supplier is b


class TestModelRoot:
    def test_model_is_package(self, factory):
        assert isinstance(factory.model, UmlModel)
        assert isinstance(factory.model, Package)

    def test_all_members_traverses(self, factory):
        pkg = factory.package("p")
        cls = factory.clazz("C", package=pkg)
        members = list(factory.model.all_members())
        assert cls in members and pkg in members
