"""Tests for OCL evaluation: literals, operators, collections, navigation,
type operations, allInstances."""

import pytest

from repro.mof import Model
from repro.ocl import (
    Environment,
    OclEvaluationError,
    OclTypeError,
    evaluate,
)
from repro.uml import Clazz, ModelFactory


class TestArithmeticAndLogic:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2", 3),
        ("7 - 10", -3),
        ("3 * 4", 12),
        ("7 / 2", 3.5),
        ("7 div 2", 3),
        ("7 mod 2", 1),
        ("-3 + 1", -2),
        ("2 * 3 + 4", 10),
        ("2 + 3 * 4", 14),
    ])
    def test_arithmetic(self, expr, expected):
        assert evaluate(expr) == expected

    @pytest.mark.parametrize("expr,expected", [
        ("true and false", False),
        ("true or false", True),
        ("true xor true", False),
        ("false implies false", True),
        ("true implies false", False),
        ("not true", False),
    ])
    def test_logic(self, expr, expected):
        assert evaluate(expr) is expected

    @pytest.mark.parametrize("expr,expected", [
        ("1 < 2", True), ("2 <= 2", True), ("3 > 4", False),
        ("4 >= 5", False), ("1 = 1", True), ("1 <> 1", False),
        ("'a' < 'b'", True), ("'x' = 'x'", True),
    ])
    def test_comparisons(self, expr, expected):
        assert evaluate(expr) is expected

    def test_division_by_zero(self):
        with pytest.raises(OclEvaluationError):
            evaluate("1 / 0")
        with pytest.raises(OclEvaluationError):
            evaluate("1 div 0")

    def test_type_errors(self):
        with pytest.raises(OclTypeError):
            evaluate("1 - 'x'")
        with pytest.raises(OclTypeError):
            evaluate("1 < 'x'")
        with pytest.raises(OclTypeError):
            evaluate("1 and true")

    def test_equality_across_kinds(self):
        assert evaluate("1 = true") is False
        assert evaluate("null = null") is True
        assert evaluate("1 = null") is False

    def test_string_concat_plus(self):
        assert evaluate("'a' + 'b'") == "ab"
        assert evaluate("'n=' + 1") == "n=1"

    def test_short_circuit(self):
        # right side would be a type error if evaluated
        assert evaluate("false and (1 + 'x' = 0)") is False
        assert evaluate("true or (1 + 'x' = 0)") is True


class TestStringsAndNumbers:
    def test_string_operations(self):
        assert evaluate("'hello'.size()") == 5
        assert evaluate("'hello'.toUpperCase()") == "HELLO"
        assert evaluate("'Hello'.substring(1, 3)") == "Hel"
        assert evaluate("'ab'.concat('cd')") == "abcd"
        assert evaluate("'hello'.startsWith('he')") is True
        assert evaluate("'42'.toInteger()") == 42

    def test_number_operations(self):
        assert evaluate("(-5).abs()") == 5
        assert evaluate("(2.7).floor()") == 2
        assert evaluate("(2.5).round()") == 2
        assert evaluate("(3).max(7)") == 7
        assert evaluate("(3).min(7)") == 3

    def test_unknown_operation(self):
        with pytest.raises(OclEvaluationError):
            evaluate("'x'.frobnicate()")


class TestCollections:
    def test_literals_and_ranges(self):
        assert evaluate("Sequence{1..4}") == [1, 2, 3, 4]
        assert evaluate("Set{1, 1, 2}") == [1, 2]
        assert evaluate("Bag{1, 1}") == [1, 1]

    def test_basic_ops(self):
        assert evaluate("Sequence{}->isEmpty()") is True
        assert evaluate("Sequence{1,2}->notEmpty()") is True
        assert evaluate("Sequence{1,2,3}->first()") == 1
        assert evaluate("Sequence{1,2,3}->last()") == 3
        assert evaluate("Sequence{5,6}->at(2)") == 6
        assert evaluate("Sequence{1,2,2}->count(2)") == 2
        assert evaluate("Sequence{1,2}->including(3)") == [1, 2, 3]
        assert evaluate("Sequence{1,2,2}->excluding(2)") == [1]
        assert evaluate("Sequence{1,2}->reverse()") == [2, 1]
        assert evaluate("Sequence{1,2,3}->indexOf(2)") == 2
        assert evaluate("Sequence{1,2,3,4}->subSequence(2,3)") == [2, 3]

    def test_at_bounds(self):
        with pytest.raises(OclEvaluationError):
            evaluate("Sequence{1}->at(0)")
        with pytest.raises(OclEvaluationError):
            evaluate("Sequence{1}->at(2)")

    def test_aggregations(self):
        assert evaluate("Sequence{1,2,3}->sum()") == 6
        assert evaluate("Sequence{1,2,3}->max()") == 3
        assert evaluate("Sequence{1,2,3}->min()") == 1
        assert evaluate("Sequence{2,4}->avg()") == 3
        assert evaluate("Sequence{}->max()") is None

    def test_set_algebra(self):
        assert evaluate("Set{1,2}->union(Set{2,3})") == [1, 2, 3]
        assert evaluate("Set{1,2,3}->intersection(Set{2,3,4})") == [2, 3]
        assert evaluate(
            "Set{1,2}->symmetricDifference(Set{2,3})") == [1, 3]
        assert evaluate("Set{1,2}->includesAll(Sequence{1})") is True
        assert evaluate("Set{1}->excludesAll(Sequence{2,3})") is True

    def test_iterators(self):
        assert evaluate("Sequence{1,2,3,4}->select(x | x mod 2 = 0)") == [2, 4]
        assert evaluate("Sequence{1,2,3}->reject(x | x > 1)") == [1]
        assert evaluate("Sequence{1,2}->collect(x | x * x)") == [1, 4]
        assert evaluate("Sequence{1,2}->forAll(x | x > 0)") is True
        assert evaluate("Sequence{1,2}->exists(x | x = 2)") is True
        assert evaluate("Sequence{1,2,3}->one(x | x = 2)") is True
        assert evaluate("Sequence{1,2,2}->one(x | x = 2)") is False
        assert evaluate("Sequence{3,1,2}->sortedBy(x | x)") == [1, 2, 3]
        assert evaluate("Sequence{1,2}->isUnique(x | x mod 2)") is True
        assert evaluate("Sequence{1,3}->isUnique(x | x mod 2)") is False
        assert evaluate("Sequence{1,2,3}->any(x | x > 1)") == 2

    def test_forall_pairwise(self):
        assert evaluate("Sequence{1,1}->forAll(a, b | a = b)") is True
        assert evaluate("Sequence{1,2}->forAll(a, b | a = b)") is False
        assert evaluate("Sequence{1,2}->exists(a, b | a <> b)") is True

    def test_collect_flattens_one_level(self):
        assert evaluate(
            "Sequence{1,2}->collect(x | Sequence{x, x})") == [1, 1, 2, 2]
        assert evaluate(
            "Sequence{1,2}->collectNested(x | Sequence{x})") == [[1], [2]]

    def test_flatten(self):
        assert evaluate(
            "Sequence{1,2}->collectNested(x | Sequence{x})->flatten()"
        ) == [1, 2]

    def test_closure(self):
        # numeric closure: halving until zero
        assert evaluate(
            "Set{8}->closure(x | if x > 0 then Set{x div 2} "
            "else Set{} endif)") == [4, 2, 1, 0]

    def test_scalar_wrapped(self):
        assert evaluate("(5)->size()") == 1
        assert evaluate("null->isEmpty()") is True

    def test_sortedby_incomparable(self):
        with pytest.raises(OclTypeError):
            evaluate("Sequence{1,'a'}->sortedBy(x | x)")

    def test_unknown_collection_op(self):
        with pytest.raises(OclEvaluationError):
            evaluate("Sequence{1}->frob()")


class TestModelNavigation:
    @pytest.fixture
    def model(self):
        factory = ModelFactory("nav")
        base = factory.clazz("Base", attrs={"id": "Integer"})
        left = factory.clazz("Left", supers=[base])
        right = factory.clazz("Right", supers=[base])
        factory.associate(left, right, end_b="partner")
        return factory

    def test_feature_navigation(self, model):
        left = model.model.member("Left")
        assert evaluate("self.name", self=left) == "Left"
        assert evaluate(
            "self.generalizations->size()", self=left) == 1

    def test_implicit_self(self, model):
        left = model.model.member("Left")
        assert evaluate("name.size()", self=left) == 4

    def test_method_fallback(self, model):
        left = model.model.member("Left")
        names = evaluate("self.all_supers()->collect(s | s.name)",
                         self=left)
        assert names == ["Base"]

    def test_collection_navigation_flattens(self, model):
        root = model.model
        names = evaluate(
            "self.packaged_elements->select(e | e.oclIsKindOf(Clazz))"
            "->collect(c | c.name)", self=root)
        assert set(names) >= {"Base", "Left", "Right"}

    def test_all_instances(self, model):
        root = model.model
        count = evaluate("Clazz.allInstances()->size()", self=root)
        assert count == 3

    def test_all_instances_requires_scope(self):
        env = Environment()
        from repro.uml import UML
        env.register_package(UML)
        with pytest.raises(OclEvaluationError):
            evaluate("Clazz.allInstances()", env)

    def test_type_operations(self, model):
        left = model.model.member("Left")
        assert evaluate("self.oclIsKindOf(Clazz)", self=left) is True
        assert evaluate("self.oclIsTypeOf(Clazz)", self=left) is True
        assert evaluate("self.oclIsKindOf(Package)", self=left) is False
        assert evaluate("self.oclAsType(Clazz) = self", self=left) is True
        assert evaluate("self.oclAsType(Package)", self=left) is None
        assert evaluate("self.oclIsUndefined()", self=left) is False
        assert evaluate("null.oclIsUndefined()", self=left) is True

    def test_navigation_through_none_is_none(self, model):
        left = model.model.member("Left")
        assert evaluate("self.classifier_behavior.name",
                        self=left) is None

    def test_unknown_feature_raises(self, model):
        left = model.model.member("Left")
        with pytest.raises(OclEvaluationError):
            evaluate("self.nonexistent", self=left)

    def test_unknown_name_raises(self):
        with pytest.raises(OclEvaluationError):
            evaluate("mystery_variable")

    def test_let_shadowing(self):
        assert evaluate("let x = 1 in let x = 2 in x") == 2

    def test_variable_bindings(self):
        assert evaluate("a + b", a=2, b=3) == 5

    def test_environment_for_repository(self, model):
        from repro.mof import Repository
        repo = Repository()
        repo.create_model("urn:nav").add_root(model.model)
        env = Environment.for_model(repo)
        assert evaluate("Clazz.allInstances()->size()", env) == 3


class TestTuples:
    def test_literal_and_navigation(self):
        assert evaluate("Tuple{a = 1, b = 'x'}.a") == 1
        assert evaluate("Tuple{a = 1, b = 'x'}.b") == "x"

    def test_nested_in_collections(self):
        result = evaluate(
            "Sequence{1,2,3}->collect(v | Tuple{value = v, odd = "
            "v mod 2 = 1})->select(t | t.odd)->collect(t | t.value)")
        assert result == [1, 3]

    def test_let_bound_tuple(self):
        assert evaluate(
            "let p = Tuple{x = 3, y = 4} in p.x * p.x + p.y * p.y") == 25

    def test_unknown_field_raises(self):
        with pytest.raises(OclEvaluationError):
            evaluate("Tuple{a = 1}.z")

    def test_roundtrips_through_unparse(self):
        from repro.ocl import parse, unparse
        ast = parse("Tuple{a = 1 + 2, b = Tuple{c = 'x'}}")
        assert parse(unparse(ast)) == ast
