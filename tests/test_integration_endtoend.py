"""End-to-end integration: the full MDA pipeline the paper describes.

PIM (tested, pure) → gated semantic transformation with a platform
parameter → PSM (grounded, refined) → IR → C/Java/SystemC text — with
use-case scenarios validated by simulation at the PIM level and the PSM
checked against the PIM via the trace.
"""

import pytest

from repro.codegen import generate_c, generate_java, generate_systemc, \
    lower_model
from repro.method import (
    DevelopmentProcess,
    ModelTestSuite,
    check_domain_purity,
    platform_content_ratio,
)
from repro.mof import Model, validate_tree
from repro.platforms import make_pim_to_psm
from repro.profiles import SA_SCHEDULABLE, TestContext, Verdict, \
    analyze_model
from repro.transform import check_refinement
from repro.uml import Clazz, UML, run_wellformed_rules
from repro.validation import Scenario, check_collaboration
from repro.xmi import read_xml, write_xml


def test_full_pipeline(cruise_model, cruise_collaboration, posix):
    model = cruise_model.model

    # 1. PIM-level tests: structure, well-formedness, purity
    assert validate_tree(model).ok
    assert run_wellformed_rules(model).ok
    assert check_domain_purity(model, [posix]).clean

    # 2. Use cases as tests: scenario conformance via simulation
    scenario = Scenario("engage", [("ctl", "act", "apply")],
                        stimuli=[("ctl", "engage")])
    assert scenario.run(cruise_collaboration()).passed

    # 3. Verification: model checking the collaboration
    mc = check_collaboration(
        cruise_collaboration(), [("ctl", "engage")],
        invariants={"level-bounded":
                    lambda c: c.attribute("act", "level") <= 1})
    assert mc.ok

    # 4. Schedulability via the SPT profile
    for name, period, wcet in (("SpeedSensor", 10.0, 1.0),
                               ("CruiseController", 20.0, 4.0),
                               ("ThrottleActuator", 20.0, 2.0)):
        SA_SCHEDULABLE.apply(model.member(name), sa_period_ms=period,
                             sa_wcet_ms=wcet)
    assert analyze_model(model).schedulable

    # 5. Gated process down to the PSM
    suite = ModelTestSuite("pim").add_structural().add_wellformedness()
    process = DevelopmentProcess("cruise-dev")
    process.add_phase("pim", suite=suite,
                      transformation=make_pim_to_psm(posix),
                      platform=posix)
    run = process.run(model)
    assert run.completed
    psm = run.final_roots[0]

    # 6. PSM is grounded in the platform and refines the PIM
    assert platform_content_ratio(psm, posix) > 0.1
    refinement = check_refinement(
        model, run.record("pim").result, required_types=[Clazz])
    assert refinement.ok, str(refinement)

    # 7. Model compilation: one IR, three languages
    code = lower_model(psm)
    c_files = generate_c(code)
    java_files = generate_java(code)
    systemc_files = generate_systemc(code)
    assert any("CruiseController_dispatch" in text
               for text in c_files.values())
    assert "CruiseController.java" in java_files
    assert any("SC_MODULE" in text for text in systemc_files.values())

    # 8. Interchange: both models round-trip (PIM carries SPT stereotypes)
    from repro.profiles import SPT
    for root, uri in ((model, "urn:pim"), (psm, "urn:psm")):
        wrapper = Model(uri)
        wrapper.add_root(root)
        text = write_xml(wrapper)
        loaded = read_xml(text, [UML], profiles=[SPT])
        assert write_xml(loaded) == text


def test_pipeline_rejects_defective_pim(posix):
    """A PIM whose interactions reference phantom objects (the paper's
    use-case anti-pattern) must not reach the PSM."""
    from repro.uml import Interaction, ModelFactory
    factory = ModelFactory("bad")
    factory.clazz("Real")
    interaction = Interaction(name="ix")
    factory.model.add(interaction)
    interaction.add_lifeline("phantom")      # no classifier behind it

    suite = ModelTestSuite("pim").add_wellformedness()
    process = DevelopmentProcess("dev")
    process.add_phase("pim", suite=suite,
                      transformation=make_pim_to_psm(posix),
                      platform=posix)
    run = process.run(factory.model)
    assert not run.completed
    assert run.stopped_at == "pim"


def test_two_platform_retargeting(cruise_model, posix, baremetal):
    """One PIM, two PSMs, two code bases — the MDA promise."""
    outputs = {}
    for platform in (posix, baremetal):
        psm = make_pim_to_psm(platform).run(
            cruise_model.model, platform=platform).primary_root
        code = lower_model(psm)
        outputs[platform.name] = "".join(generate_c(code).values())
    assert "int32_t target" in outputs["posix_rtos"]
    assert "int16_t target" in outputs["baremetal_hw"]
    # behaviour-bearing dispatch exists on both targets
    for text in outputs.values():
        assert "CruiseController_dispatch" in text


def test_uml_testing_profile_over_pipeline(cruise_collaboration):
    context = TestContext("CruiseAcceptance", cruise_collaboration)
    context.add_scenario(
        "engage-then-tick",
        Scenario("s1", [("ctl", "act", "apply"), ("ctl", "act", "apply")],
                 stimuli=[("ctl", "engage"), ("ctl", "tick")]),
        post_condition=lambda c: c.attribute("act", "level") == 2)
    context.add_scenario(
        "disengage-releases",
        Scenario("s2", [("ctl", "act", "release")],
                 stimuli=[("ctl", "engage"), ("ctl", "disengage")]),
        post_condition=lambda c: c.attribute("act", "level") == 0)
    report = context.run_all()
    assert report.verdict is Verdict.PASS, report.summary()
