"""Tests for the explicit-state model checker."""

import pytest

from repro.uml import ModelFactory, StateMachine
from repro.validation import (
    Collaboration,
    ModelChecker,
    check_collaboration,
)


def make_pingpong(limit_guarded=True):
    """Ping/pong pair; without the guard the exchange runs forever
    (bounded by queue growth)."""
    factory = ModelFactory("pp")
    ping = factory.clazz("Ping", attrs={"count": "Integer"},
                         is_active=True)
    pong = factory.clazz("Pong", is_active=True)
    factory.associate(ping, pong, end_b="peer", end_a="peer",
                      navigable_b_to_a=True)

    machine = StateMachine(name="PingSM")
    ping.owned_behaviors.append(machine)
    region = machine.main_region()
    initial = region.add_initial()
    idle = region.add_state("Idle")
    waiting = region.add_state("Waiting")
    region.add_transition(initial, idle)
    region.add_transition(idle, waiting, trigger="go",
                          effect="count := count + 1; send peer.ping()")
    guard = "count < 2" if limit_guarded else ""
    region.add_transition(waiting, waiting, trigger="pong", guard=guard,
                          effect="count := count + 1; send peer.ping()",
                          kind="internal")
    if limit_guarded:
        final = region.add_final()
        region.add_transition(waiting, final, trigger="pong",
                              guard="count >= 2")

    pong_machine = StateMachine(name="PongSM")
    pong.owned_behaviors.append(pong_machine)
    pong_region = pong_machine.main_region()
    pong_initial = pong_region.add_initial()
    ready = pong_region.add_state("Ready")
    pong_region.add_transition(pong_initial, ready)
    pong_region.add_transition(ready, ready, trigger="ping",
                               effect="send peer.pong()", kind="internal")

    def build():
        collab = Collaboration("pp")
        collab.create_object("p1", ping)
        collab.create_object("p2", pong)
        collab.link("p1", "peer", "p2")
        collab.link("p2", "peer", "p1")
        return collab
    return build


class TestExploration:
    def test_terminating_system_fully_explored(self):
        build = make_pingpong()
        result = check_collaboration(build(), [("p1", "go")])
        assert result.ok
        assert not result.truncated
        assert result.states_explored > 2
        assert result.transitions_explored >= result.states_explored - 1

    def test_invariant_violation_found_with_trace(self):
        build = make_pingpong()
        result = check_collaboration(
            build(), [("p1", "go")],
            invariants={"count-below-2":
                        lambda c: c.attribute("p1", "count") < 2})
        assert not result.ok
        violation = result.violations[0]
        assert violation.kind == "invariant"
        assert violation.trace        # a concrete counterexample path
        assert any("p1!" in step or "p2!" in step
                   for step in violation.trace)

    def test_deadlock_detection(self):
        """Two machines each waiting for the other's first move: quiescent
        but not done."""
        factory = ModelFactory("dl")
        waiter = factory.clazz("Waiter", is_active=True)
        factory.associate(waiter, waiter, end_b="peer", end_a="peer2")
        machine = StateMachine(name="WSM")
        waiter.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        blocked = region.add_state("Blocked")
        done = region.add_state("Done")
        region.add_transition(initial, blocked)
        region.add_transition(blocked, done, trigger="release",
                              effect="send peer.release()")
        collab = Collaboration("dl")
        collab.create_object("w1", waiter)
        collab.create_object("w2", waiter)
        collab.link("w1", "peer", "w2")
        collab.link("w2", "peer", "w1")
        result = check_collaboration(
            collab, [],
            done=lambda c: all(o.state_name == "Done"
                               for o in c.objects.values()))
        assert any(v.kind == "deadlock" for v in result.violations)

    def test_no_deadlock_when_stimulated(self):
        build = make_pingpong()
        result = check_collaboration(
            build(), [("p1", "go")],
            done=lambda c: c.objects["p1"].completed)
        assert result.ok

    def test_queue_overflow_detected(self):
        build = make_pingpong(limit_guarded=False)   # infinite exchange
        result = check_collaboration(build(), [("p1", "go")],
                                     queue_bound=2, max_states=5000)
        # unbounded ping-pong with internal loops stays at queue size 1;
        # inject extra stimuli to overflow
        collab = build()
        result = check_collaboration(
            collab, [("p1", "go")] * 6, queue_bound=2, max_states=5000)
        assert any(v.kind == "queue-overflow" for v in result.violations)

    def test_state_bound_truncates(self):
        build = make_pingpong(limit_guarded=False)
        result = check_collaboration(build(), [("p1", "go")],
                                     max_states=3)
        assert result.truncated
        assert result.states_explored <= 3

    def test_goal_reachability(self):
        build = make_pingpong()
        checker = ModelChecker(build())
        checker.goal("counted-2", lambda c: c.attribute("p1", "count") == 2)
        checker.goal("counted-99",
                     lambda c: c.attribute("p1", "count") == 99)
        result = checker.check([("p1", "go")])
        assert result.goals_reached["counted-2"] is True
        assert result.goals_reached["counted-99"] is False

    def test_checker_explores_interleavings(self):
        """With two independent stimuli both orders must be covered."""
        build = make_pingpong()
        collab = build()
        result = check_collaboration(collab, [("p1", "go"), ("p2", "ping")])
        # more states than a single linear run would visit
        assert result.states_explored >= 4

    def test_summary_renders(self):
        build = make_pingpong()
        result = check_collaboration(build(), [("p1", "go")])
        assert "states=" in result.summary()

    def test_checker_semantics_match_simulator(self):
        """The checker must reach exactly the final count the simulator
        produces on the deterministic path."""
        build = make_pingpong()
        collab = build()
        collab.start()
        collab.send("p1", "go")
        collab.run()
        simulated_count = collab.attribute("p1", "count")

        checker = ModelChecker(build())
        checker.goal("same-count",
                     lambda c: c.attribute("p1", "count")
                     == simulated_count and c.objects["p1"].completed)
        result = checker.check([("p1", "go")])
        assert result.goals_reached["same-count"] is True
