"""Tests for the design metrics — including the paper's decomposition
diagnostics (coupling, single-function classes, deep inheritance)."""

import pytest

from repro.validation import (
    compute_class_metrics,
    compute_model_metrics,
    coupling_matrix,
)


@pytest.fixture
def oo_design(factory):
    """A reasonably cohesive OO design."""
    account = factory.clazz("Account", attrs={"balance": "Integer"})
    factory.operation(account, "deposit", params={"amount": "Integer"},
                      body="balance := balance + amount")
    factory.operation(account, "withdraw", params={"amount": "Integer"},
                      body="balance := balance - amount")
    customer = factory.clazz("Customer", attrs={"name": "String"})
    factory.operation(customer, "rename", params={"n": "String"},
                      body="name := n")
    factory.associate(customer, account, end_b="accounts", b_upper=-1)
    return factory


@pytest.fixture
def functional_design():
    """The paper's anti-pattern: one function per class, deep inheritance,
    everything coupled to everything.  Built in its own model so it can be
    compared against the OO design."""
    from repro.uml import ModelFactory
    factory = ModelFactory("functional")
    base = factory.clazz("Step")
    previous = base
    classes = [base]
    for index in range(5):
        cls = factory.clazz(f"Step{index}", supers=[previous])
        factory.operation(cls, "execute")
        classes.append(cls)
        previous = cls
    # total coupling
    for cls in classes:
        for other in classes:
            if cls is not other:
                factory.associate(cls, other,
                                  end_b=f"to_{other.name.lower()}")
    return factory, classes


class TestClassMetrics:
    def test_cbo_counts_distinct_types(self, oo_design):
        customer = oo_design.model.member("Customer")
        metrics = compute_class_metrics(customer)
        assert metrics.cbo == 1          # accounts end only

    def test_wmc_and_nof(self, oo_design):
        account = oo_design.model.member("Account")
        metrics = compute_class_metrics(account)
        assert metrics.wmc == 2
        assert metrics.nof == 1

    def test_dit_and_noc(self, functional_design):
        factory, classes = functional_design
        deepest = compute_class_metrics(classes[-1])
        assert deepest.dit == 5
        root = compute_class_metrics(classes[0])
        assert root.noc == 1

    def test_lcom_cohesive_class(self, oo_design):
        account = oo_design.model.member("Account")
        # both operations touch 'balance': cohesive, LCOM 0
        assert compute_class_metrics(account).lcom == 0

    def test_lcom_uncohesive_class(self, factory):
        cls = factory.clazz("Blob", attrs={"a": "Integer", "b": "Integer"})
        factory.operation(cls, "useA", body="a := 1")
        factory.operation(cls, "useB", body="b := 2")
        assert compute_class_metrics(cls).lcom == 1

    def test_rfc_includes_sends(self, cruise_model):
        controller = cruise_model.model.member("CruiseController")
        metrics = compute_class_metrics(controller)
        assert metrics.rfc >= 3          # sends in the state machine


class TestModelMetrics:
    def test_oo_design_profile(self, oo_design):
        metrics = compute_model_metrics(oo_design.model)
        assert metrics.class_count == 2
        assert metrics.coupling_density <= 0.5
        assert metrics.single_operation_ratio < 1.0
        assert metrics.max_dit == 0

    def test_functional_design_profile(self, functional_design):
        factory, classes = functional_design
        metrics = compute_model_metrics(factory.model)
        assert metrics.class_count == 6
        # the paper: "coupling tends to be very high if not total"
        assert metrics.coupling_density > 0.9
        # "most classes contain a single function"
        assert metrics.single_operation_ratio >= 5 / 6
        # "very deep inheritance hierarchies"
        assert metrics.deep_inheritance_ratio > 0
        assert metrics.max_dit == 5

    def test_oo_beats_functional(self, oo_design, functional_design):
        oo = compute_model_metrics(oo_design.model)
        functional = compute_model_metrics(functional_design[0].model)
        assert oo.coupling_density < functional.coupling_density
        assert oo.avg_cbo < functional.avg_cbo
        assert oo.max_dit < functional.max_dit

    def test_fan_in_fan_out_symmetry(self, functional_design):
        factory, _ = functional_design
        metrics = compute_model_metrics(factory.model)
        total_out = sum(m.fan_out for m in metrics.classes.values())
        total_in = sum(m.fan_in for m in metrics.classes.values())
        # every fan-out edge lands on some class (supers included)
        assert total_in == total_out

    def test_empty_model(self, factory):
        metrics = compute_model_metrics(factory.model)
        assert metrics.class_count == 0
        assert metrics.coupling_density == 0.0

    def test_coupling_matrix(self, oo_design):
        matrix = coupling_matrix(oo_design.model)
        assert matrix["Customer"] == {"Account"}
        assert matrix["Account"] == set()

    def test_summary_renders(self, oo_design):
        metrics = compute_model_metrics(oo_design.model)
        assert "coupling_density" in metrics.summary()

    def test_behaviors_excluded_from_class_count(self, cruise_model):
        metrics = compute_model_metrics(cruise_model.model)
        assert metrics.class_count == 3     # machines don't count
