"""Tests for models and the repository."""

import pytest

from repro.mof import Model, Repository, RepositoryError
from kernel_fixture import TBook, TLibrary


@pytest.fixture
def model(library):
    lib, _, _ = library
    m = Model("urn:m1", "m1")
    m.add_root(lib)
    return m, lib


class TestModel:
    def test_roots_must_be_containerless(self, library):
        lib, b1, _ = library
        m = Model("urn:x")
        with pytest.raises(RepositoryError):
            m.add_root(b1)

    def test_all_elements(self, model):
        m, lib = model
        elements = list(m.all_elements())
        assert lib in elements and len(elements) == 3

    def test_instances_of(self, model):
        m, _ = model
        assert len(m.instances_of(TBook._meta)) == 2
        assert len(m.instances_of(TLibrary._meta)) == 1

    def test_instances_of_exact(self, model, library):
        m, _ = model
        from kernel_fixture import TNamed
        assert len(m.instances_of(TNamed._meta)) == 3
        assert len(m.instances_of(TNamed._meta, exact=True)) == 0

    def test_model_observation(self, model):
        m, lib = model
        seen = []
        m.observe(seen.append)
        lib.books[0].pages = 77
        assert len(seen) == 1

    def test_duplicate_root_ignored(self, model):
        m, lib = model
        m.add_root(lib)
        assert m.roots.count(lib) == 1

    def test_remove_root(self, model):
        m, lib = model
        m.remove_root(lib)
        assert not m.roots


class TestRepository:
    def test_create_and_lookup(self):
        repo = Repository()
        m = repo.create_model("urn:a")
        assert repo.model("urn:a") is m
        with pytest.raises(RepositoryError):
            repo.create_model("urn:a")
        with pytest.raises(RepositoryError):
            repo.model("urn:missing")

    def test_all_instances_across_models(self, library):
        lib, _, _ = library
        repo = Repository()
        m1 = repo.create_model("urn:a")
        m1.add_root(lib)
        lib2 = TLibrary(name="lib2")
        m2 = repo.create_model("urn:b")
        m2.add_root(lib2)
        assert len(repo.all_instances(TLibrary._meta)) == 2
        assert len(repo.all_instances(TBook._meta)) == 2

    def test_resolve_by_uri_fragment(self, library):
        lib, b1, _ = library
        repo = Repository()
        repo.create_model("urn:a").add_root(lib)
        ref = f"urn:a#{b1.eid}"
        assert repo.resolve(ref) is b1
        with pytest.raises(RepositoryError):
            repo.resolve("urn:a#nope")
        with pytest.raises(RepositoryError):
            repo.resolve("no-fragment")

    def test_remove_model(self, library):
        lib, _, _ = library
        repo = Repository()
        repo.create_model("urn:a").add_root(lib)
        repo.remove_model("urn:a")
        assert "urn:a" not in repo.models
