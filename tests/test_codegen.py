"""Tests for the model compiler: action parsing, PSM→IR lowering, and
the three syntactic printers."""

import pytest

from repro.codegen import (
    AssignStmt,
    CallStmt,
    CommentStmt,
    SendStmt,
    generate_c,
    generate_java,
    generate_systemc,
    lower_model,
    parse_actions,
    parse_statement,
    to_c_expr,
    to_java_expr,
)
from repro.codegen.actions import qualify_identifiers
from repro.platforms import PIM_TO_PSM


class TestActionParsing:
    def test_assignment(self):
        stmt = parse_statement("x := y + 1")
        assert isinstance(stmt, AssignStmt)
        assert stmt.lhs == "x" and stmt.rhs == "y + 1"

    def test_send(self):
        stmt = parse_statement("send peer.ping(1, 2)")
        assert isinstance(stmt, SendStmt)
        assert stmt.target == "peer" and stmt.event == "ping"
        assert stmt.arguments == ("1", "2")

    def test_send_no_args(self):
        stmt = parse_statement("send lower.tx_request()")
        assert isinstance(stmt, SendStmt) and stmt.arguments == ()

    def test_call_with_receiver(self):
        stmt = parse_statement("engine.start(5)")
        assert isinstance(stmt, CallStmt)
        assert stmt.receiver == "engine" and stmt.operation == "start"

    def test_bare_call(self):
        stmt = parse_statement("log()")
        assert isinstance(stmt, CallStmt) and stmt.receiver == ""

    def test_unparsable_becomes_comment(self):
        stmt = parse_statement("??!")
        assert isinstance(stmt, CommentStmt)

    def test_program_split_on_semicolons(self):
        stmts = parse_actions("a := 1; send p.e(); log()")
        assert [type(s).__name__ for s in stmts] == [
            "AssignStmt", "SendStmt", "CallStmt"]
        assert parse_actions("") == []
        assert parse_actions("  ;  ") == []

    def test_nested_commas_in_args(self):
        stmt = parse_statement("f(g(1, 2), 3)")
        assert stmt.arguments == ("g(1, 2)", "3")

    def test_expression_spellings(self):
        assert to_c_expr("a = 1 and not b") == "a == 1 && ! b"
        assert to_c_expr("x <> y or true") == "x != y || 1"
        assert to_java_expr("a = 1 and true") == "a == 1 && true"
        assert to_c_expr("a >= 2") == "a >= 2"          # untouched
        assert to_c_expr("x := 1") == "x := 1"          # := not equality

    def test_qualify_identifiers(self):
        out = qualify_identifiers("speed := speed + delta",
                                  {"speed"})
        assert out == "self.speed := self.speed + delta"
        # already-qualified and call names untouched
        assert qualify_identifiers("self.speed + speed()",
                                   {"speed"}) == "self.speed + speed()"


@pytest.fixture
def code(cruise_model, posix):
    psm = PIM_TO_PSM.run(cruise_model.model, posix).primary_root
    return lower_model(psm)


class TestLowering:
    def test_units_and_structs(self, code):
        stats = code.stats()
        assert stats["units"] >= 1
        struct_names = {s.name for s in code.all_structs()}
        assert {"CruiseController", "SpeedSensor", "ThrottleActuator",
                "CruiseController_thread"} <= struct_names

    def test_struct_fields_use_platform_types(self, code):
        controller = [s for s in code.all_structs()
                      if s.name == "CruiseController"][0]
        types = {f.name: f.type_name for f in controller.fields}
        assert types["target"] == "int32_t"
        assert types["enabled"] == "bool"
        assert types["state"] == "CruiseController_state"

    def test_dispatch_function_generated(self, code):
        names = {f.name for f in code.all_functions()}
        assert "CruiseController_dispatch" in names
        assert "CruiseController_enter_initial" in names
        assert "CruiseController_init" in names

    def test_enums_generated(self, code):
        unit = code.units[0]
        enum_names = {e.name for e in unit.enums}
        assert "CruiseController_state" in enum_names
        assert "CruiseController_event" in enum_names
        state_enum = [e for e in unit.enums
                      if e.name == "CruiseController_state"][0]
        assert "CRUISECONTROLLER_STATE_OFF" in state_enum.literals


class TestPrinters:
    def test_c_output_compilable_shape(self, code):
        files = generate_c(code)
        text = "\n".join(files.values())
        assert "typedef struct {" in text
        assert "switch (self->state) {" in text
        assert "case CRUISECONTROLLER_STATE_OFF: {" in text
        assert "event == CRUISECONTROLLER_EVENT_ENGAGE" in text
        assert text.count("{") == text.count("}")

    def test_c_qualifies_self(self, code):
        text = "\n".join(generate_c(code).values())
        assert "self->enabled = 1" in text       # true -> 1, self. -> self->

    def test_java_output(self, code):
        files = generate_java(code)
        assert "CruiseController.java" in files
        java = files["CruiseController.java"]
        assert "public class CruiseController {" in java
        assert "private int target;" in java     # int32_t -> int
        assert "public void dispatch(" in java
        assert java.count("{") == java.count("}")

    def test_systemc_output(self, code):
        files = generate_systemc(code)
        text = "\n".join(files.values())
        assert "SC_MODULE(CruiseController)" in text
        assert "SC_CTOR(CruiseController)" in text
        assert "sc_fifo_in<int> events;" in text

    def test_all_printers_share_ir(self, code):
        """The semantic/syntactic split: three outputs, one IR."""
        c = generate_c(code)
        java = generate_java(code)
        systemc = generate_systemc(code)
        assert c and java and systemc
        # every struct appears in every target
        for struct in code.all_structs():
            assert any(struct.name in text for text in c.values())
            assert any(struct.name in text for text in java.values())
            assert any(struct.name in text for text in systemc.values())

    def test_generated_c_line_count_scales(self, code):
        total_lines = sum(text.count("\n")
                          for text in generate_c(code).values())
        assert total_lines > 80
