"""Tests for the model quality dashboard."""

import pytest

from repro.profiles import add_requirement, satisfy, verify
from repro.validation import build_quality_report


class TestQualityReport:
    def test_clean_model_passes(self, cruise_model, posix):
        report = build_quality_report(cruise_model.model, platforms=[posix])
        assert report.passed
        text = report.render()
        assert "overall: PASS" in text
        assert "structural validity [PASS]" in text
        assert "domain purity [PASS]" in text

    def test_wellformedness_failure_shows(self, factory):
        factory.clazz("Dup")
        factory.clazz("Dup")
        report = build_quality_report(factory.model)
        assert not report.passed
        assert not report.section("uml well-formedness").passed
        assert "FAIL" in report.render()

    def test_metric_threshold_failure(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B")
        factory.associate(a, b, end_b="b")
        factory.associate(b, a, end_a="x", end_b="a")
        report = build_quality_report(factory.model, max_coupling_density=0.1)
        assert not report.section("design metrics").passed

    def test_pollution_failure(self, factory, posix):
        factory.clazz("Worker_thread")
        report = build_quality_report(factory.model, platforms=[posix])
        assert not report.section("domain purity").passed

    def test_traceability_section(self, factory):
        pkg = factory.package("reqs")
        requirement = add_requirement(pkg, "R", "R1", "do the thing")
        impl = factory.clazz("Impl")
        report = build_quality_report(factory.model,
                                include_traceability=True)
        section = report.section("requirement traceability")
        assert not section.passed              # nothing satisfies R1
        satisfy(pkg, impl, requirement)
        verify(pkg, impl, requirement)
        report2 = build_quality_report(factory.model,
                                 include_traceability=True)
        assert report2.section("requirement traceability").passed

    def test_unknown_section_raises(self, cruise_model):
        report = build_quality_report(cruise_model.model)
        with pytest.raises(KeyError):
            report.section("nonexistent")
