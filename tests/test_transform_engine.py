"""Tests for rules, the two-phase engine, and traces."""

import pytest

from repro.transform import (
    FunctionRule,
    Rule,
    RuleError,
    TraceModel,
    Transformation,
    TransformError,
    UnresolvedTraceError,
    rule,
)
from repro.uml import Clazz, Package, Property, UmlElement, UmlModel


@pytest.fixture
def simple_model(factory):
    a = factory.clazz("Alpha", attrs={"x": "Integer"})
    b = factory.clazz("Beta", supers=[a])
    return factory, a, b


class TestRuleDeclaration:
    def test_rule_requires_source_type(self):
        with pytest.raises(RuleError):
            Rule(name="broken")

    def test_decorator_builds_function_rule(self):
        @rule(Clazz, name="c2p")
        def class_to_package(source, ctx):
            return Package(name=source.name)
        assert isinstance(class_to_package, FunctionRule)
        assert class_to_package.name == "c2p"

    def test_guard_as_callable(self, simple_model):
        factory, a, b = simple_model
        picked = []

        @rule(Clazz, guard=lambda e, ctx: e.name.startswith("A"))
        def only_alpha(source, ctx):
            picked.append(source.name)
            return Package(name=source.name)
        Transformation("t", [only_alpha]).run(factory.model)
        assert picked == ["Alpha"]

    def test_guard_as_ocl_string(self, simple_model):
        factory, a, b = simple_model

        @rule(Clazz, guard="name = 'Beta'")
        def only_beta(source, ctx):
            return Package(name=source.name)
        result = Transformation("t", [only_beta]).run(factory.model)
        assert [r.name for r in result.target_roots] == ["Beta"]

    def test_source_type_filters(self, simple_model):
        factory, *_ = simple_model

        @rule(Property)
        def props(source, ctx):
            return Package(name=source.name)
        result = Transformation("t", [props]).run(factory.model)
        assert [r.name for r in result.target_roots] == ["x"]


class TestTwoPhaseExecution:
    def test_bind_sees_all_targets(self, simple_model):
        factory, a, b = simple_model
        # Beta is visited after Alpha, but Alpha's bind needs Beta's image:
        # two-phase execution makes that order-independent.

        @rule(Clazz)
        def clazz_to_clazz(source, ctx):
            return Clazz(name=source.name + "_psm")

        @clazz_to_clazz.binder
        def bind(source, target, ctx):
            for sup in source.supers():
                target.add_super(ctx.resolve(sup))
        result = Transformation("t", [clazz_to_clazz]).run(factory.model)
        beta = [r for r in result.target_roots if r.name == "Beta_psm"][0]
        assert [s.name for s in beta.supers()] == ["Alpha_psm"]

    def test_unresolved_trace_raises(self, simple_model):
        factory, a, b = simple_model

        @rule(Clazz, guard="name = 'Beta'")
        def beta_only(source, ctx):
            return Clazz(name=source.name)

        @beta_only.binder
        def bind(source, target, ctx):
            for sup in source.supers():
                ctx.resolve(sup)       # Alpha was never transformed
        with pytest.raises(UnresolvedTraceError):
            Transformation("t", [beta_only]).run(factory.model)

    def test_resolve_optional_returns_none(self, simple_model):
        factory, a, b = simple_model
        seen = {}

        @rule(Clazz, guard="name = 'Beta'")
        def beta_only(source, ctx):
            return Clazz(name=source.name)

        @beta_only.binder
        def bind(source, target, ctx):
            seen["img"] = ctx.resolve_optional(source.supers()[0])
        Transformation("t", [beta_only]).run(factory.model)
        assert seen["img"] is None

    def test_exclusive_rule_claims_element(self, simple_model):
        factory, *_ = simple_model
        fired = []

        @rule(Clazz, name="first")
        def first(source, ctx):
            fired.append(("first", source.name))
            return None

        @rule(Clazz, name="second")
        def second(source, ctx):
            fired.append(("second", source.name))
            return None
        Transformation("t", [first, second]).run(factory.model)
        assert all(rule_name == "first" for rule_name, _ in fired)

    def test_non_exclusive_rules_stack(self, simple_model):
        factory, *_ = simple_model
        fired = []

        @rule(Clazz, name="first", exclusive=False)
        def first(source, ctx):
            fired.append("first")
            return None

        @rule(Clazz, name="second")
        def second(source, ctx):
            fired.append("second")
            return None
        Transformation("t", [first, second]).run(factory.model)
        assert fired.count("first") == 2 and fired.count("second") == 2

    def test_multi_role_targets(self, simple_model):
        factory, a, _ = simple_model

        @rule(Clazz)
        def split(source, ctx):
            return {"default": Clazz(name=source.name),
                    "doc": Package(name=source.name + "_doc")}
        result = Transformation("t", [split]).run(factory.model)
        assert result.trace.resolve(a, "doc").name == "Alpha_doc"
        assert result.trace.resolve(a).name == "Alpha"

    def test_bad_create_return_value(self, simple_model):
        factory, *_ = simple_model

        @rule(Clazz)
        def bad(source, ctx):
            return 42
        with pytest.raises(TransformError):
            Transformation("t", [bad]).run(factory.model)

    def test_lazy_rule_applied_on_demand(self, simple_model):
        factory, a, b = simple_model
        lazy = FunctionRule("lazy-super", Clazz,
                            lambda s, ctx: Clazz(name=s.name + "_lazy"),
                            lazy=True)

        @rule(Clazz, guard="name = 'Beta'")
        def beta(source, ctx):
            return Clazz(name=source.name)

        @beta.binder
        def bind(source, target, ctx):
            image = ctx.resolve_or_apply(source.supers()[0], lazy)
            target.add_super(image)
        transformation = Transformation("t", [beta, lazy])
        result = transformation.run(factory.model)
        named = {r.name for r in result.target_roots}
        assert "Alpha_lazy" in named
        # applied exactly once even if resolved twice
        assert result.trace.rules_used()["lazy-super"] == 1


class TestResultAndStats:
    def test_elements_visited(self, simple_model):
        factory, *_ = simple_model
        result = Transformation("t", []).run(factory.model)
        expected = 1 + sum(1 for _ in factory.model.all_contents())
        assert result.elements_visited == expected

    def test_target_model_wrapper(self, simple_model):
        factory, *_ = simple_model

        @rule(Clazz)
        def copy(source, ctx):
            return Clazz(name=source.name)
        result = Transformation("t", [copy]).run(factory.model)
        model = result.target_model("urn:out")
        assert model.uri == "urn:out"
        assert len(model.roots) == 2

    def test_primary_root_requires_output(self, simple_model):
        factory, *_ = simple_model
        result = Transformation("t", []).run(factory.model)
        with pytest.raises(TransformError):
            result.primary_root

    def test_parameters_available(self, simple_model):
        factory, *_ = simple_model
        seen = {}

        @rule(Clazz)
        def check(source, ctx):
            seen["p"] = ctx.parameters["flavour"]
            return None
        Transformation("t", [check]).run(factory.model,
                                         parameters={"flavour": "mint"})
        assert seen["p"] == "mint"


class TestTraceModel:
    def test_backward_lookup(self, simple_model):
        factory, a, _ = simple_model

        @rule(Clazz)
        def copy(source, ctx):
            return Clazz(name=source.name)
        result = Transformation("t", [copy]).run(factory.model)
        image = result.trace.resolve(a)
        assert result.trace.origin_of(image) is a
        assert result.trace.link_of_target(image).rule_name == "copy"

    def test_sources_targets_enumeration(self, simple_model):
        factory, a, b = simple_model

        @rule(Clazz)
        def copy(source, ctx):
            return Clazz(name=source.name)
        result = Transformation("t", [copy]).run(factory.model)
        assert set(result.trace.sources()) == {a, b}
        assert len(result.trace.all_targets()) == 2
        assert len(result.trace) == 2
        assert result.trace.is_transformed(a)

    def test_resolve_all_skips_unmapped(self, simple_model):
        factory, a, b = simple_model
        trace = TraceModel()
        assert trace.resolve_all([a, b]) == []
