"""Tests for the incrementally maintained model indexes.

The :class:`~repro.mof.index.ModelIndex` must agree with the containment
scans it replaces after *any* sequence of model edits (the EditFuzzer
drives set/unset/add/remove/move/reparent/create/delete through the
notification protocol), and ``Repository.resolve`` must stay correct
across element moves and removals — the regression that motivated the
eid index cross-check.
"""

import pytest

from repro.generate import EditFuzzer, demo_generator, demo_package
from repro.mof import (
    M_0N,
    MInteger,
    Model,
    Repository,
    RepositoryError,
    add_attribute,
    add_reference,
    define_class,
    define_package,
    set_read_hook,
)


def scan_instances(model, metaclass, exact=False):
    if exact:
        return [e for e in model.all_elements() if e.meta is metaclass]
    return [e for e in model.all_elements()
            if e.meta.conforms_to(metaclass)]


def assert_index_matches_scans(model):
    index = model.index()
    problems = index.verify()
    assert problems == []
    metaclasses = {e.meta for e in model.all_elements()}
    for metaclass in metaclasses:
        for exact in (False, True):
            indexed = model.instances_of(metaclass, exact=exact)
            scanned = scan_instances(model, metaclass, exact=exact)
            assert sorted(map(id, indexed)) == sorted(map(id, scanned)), (
                metaclass.name, exact)


def assert_columns_match_objects(model):
    """Build every extent block, then oracle-check each column cell
    against a per-object read (the ColumnStore property-test oracle)."""
    store = model.column_store()
    assert store is not None
    for metaclass in store.extent_metaclasses():
        store.block(metaclass)
    assert store.verify() == []


class TestIndexMaintenance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_extents_survive_fuzzed_edits(self, seed):
        root = demo_generator(seed).generate(40)
        model = Model(f"urn:fuzz{seed}")
        model.add_root(root)
        model.index()                       # build before the edits
        fuzzer = EditFuzzer(root, seed=seed)
        for _round in range(12):
            fuzzer.apply_random_edits(15)
            assert_index_matches_scans(model)

    def test_lazy_build_after_edits(self):
        root = demo_generator(9).generate(30)
        model = Model("urn:lazybuild")
        model.add_root(root)
        EditFuzzer(root, seed=9).apply_random_edits(50)
        assert_index_matches_scans(model)   # first index build happens here

    def test_root_add_and_remove(self):
        pkg = demo_package()
        library = pkg.classifier("GLibrary")
        first = demo_generator(1).generate(15)
        second = demo_generator(2).generate(15)
        model = Model("urn:roots")
        model.add_root(first)
        index = model.index()
        before = len(model.instances_of(library))
        in_second = sum(
            1 for e in [second] + list(second.all_contents())
            if e.meta.conforms_to(library))
        model.add_root(second)
        assert len(model.instances_of(library)) == before + in_second
        assert index.verify() == []
        model.remove_root(second)
        assert len(model.instances_of(library)) == before
        assert index.verify() == []

    def test_read_hook_gates_to_scan(self):
        root = demo_generator(4).generate(25)
        model = Model("urn:gated")
        model.add_root(root)
        book = demo_package().classifier("GBook")
        indexed = model.instances_of(book)
        reads = []
        previous = set_read_hook(lambda element, key: reads.append(key))
        try:
            scanned = model.instances_of(book)
        finally:
            set_read_hook(previous)
        # same answer either way, but the hooked path performed the
        # per-element reads dependency tracking relies on
        assert sorted(map(id, scanned)) == sorted(map(id, indexed))
        assert reads

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_columns_survive_fuzzed_edits(self, seed):
        # same drive as the index fuzz, but with the columnar store
        # attached: every round rebuilds the stale blocks lazily and the
        # verify() oracle cross-checks each cell against object reads
        root = demo_generator(seed).generate(40)
        model = Model(f"urn:colfuzz{seed}")
        model.add_root(root)
        model.enable_columns()
        assert_columns_match_objects(model)     # warm before the edits
        fuzzer = EditFuzzer(root, seed=seed)
        for _round in range(12):
            fuzzer.apply_random_edits(15)
            assert_index_matches_scans(model)
            assert_columns_match_objects(model)

    def test_columns_root_add_and_remove(self):
        pkg = demo_package()
        book = pkg.classifier("GBook")
        model = Model("urn:colroots")
        model.add_root(demo_generator(1).generate(15))
        store = model.enable_columns()
        assert_columns_match_objects(model)
        second = demo_generator(2).generate(15)
        model.add_root(second)
        assert_columns_match_objects(model)
        values = store.conforming_values(book, "pages")
        assert values is not None
        assert len(values) == len(model.instances_of(book))
        model.remove_root(second)
        assert_columns_match_objects(model)
        values = store.conforming_values(book, "pages")
        assert len(values) == len(model.instances_of(book))

    def test_columns_fresh_after_aborted_transaction(self):
        from repro.mof import transaction
        root = demo_generator(7).generate(30)
        model = Model("urn:coltxn")
        model.add_root(root)
        model.enable_columns()
        assert_columns_match_objects(model)
        fuzzer = EditFuzzer(root, seed=7, profile="destructive")

        class Abort(RuntimeError):
            pass

        for _round in range(3):
            with pytest.raises(Abort):
                with transaction():
                    fuzzer.apply_random_edits(10)
                    assert_columns_match_objects(model)   # mid-txn reads
                    raise Abort
            # rollback replays inverses through the same notifications,
            # so the rebuilt columns must match the restored objects
            assert_columns_match_objects(model)

    def test_verify_reports_divergence(self):
        root = demo_generator(6).generate(10)
        model = Model("urn:broken")
        model.add_root(root)
        index = model.index()
        victim = next(iter(root.all_contents()))
        index._remove_one(victim)           # simulate a missed notification
        assert any("missing from index" in p for p in index.verify())
        index.rebuild()
        assert index.verify() == []


class TestRepositoryResolve:
    def _repo_with_book(self):
        repo = Repository()
        source = repo.create_model("urn:a")
        target = repo.create_model("urn:b")
        source.add_root(demo_generator(3).generate(20))
        target.add_root(demo_generator(8).generate(5))
        book = next(e for e in source.all_elements()
                    if e.meta.name == "GBook")
        return repo, source, target, book

    def test_resolve_uses_eid_index(self):
        repo, source, _target, book = self._repo_with_book()
        eid = book.eid
        assert repo.resolve(f"urn:a#{eid}") is book
        hits_before = source.index().hits
        assert repo.resolve(f"urn:a#{eid}") is book
        assert source.index().hits > hits_before

    def test_resolve_after_move_between_models(self):
        repo, _source, target, book = self._repo_with_book()
        eid = book.eid
        assert repo.resolve(f"urn:a#{eid}") is book
        book._detach()
        shelf = next((e for e in target.all_elements()
                      if e.meta.name == "GShelf"), None)
        if shelf is None:
            shelf = demo_package().classifier("GShelf").instantiate()
            target.roots[0].eget("shelves").append(shelf)
        shelf.eget("books").append(book)
        assert repo.resolve(f"urn:b#{eid}") is book
        with pytest.raises(RepositoryError):
            repo.resolve(f"urn:a#{eid}")

    def test_resolve_after_delete(self):
        repo, _source, _target, book = self._repo_with_book()
        eid = book.eid
        assert repo.resolve(f"urn:a#{eid}") is book
        book.delete()
        with pytest.raises(RepositoryError):
            repo.resolve(f"urn:a#{eid}")

    def test_resolve_lazily_assigned_eid(self):
        # eids are assigned on first access without any notification; the
        # index must repair itself through the scan fallback.
        repo = Repository()
        model = repo.create_model("urn:lazy")
        model.add_root(demo_generator(12).generate(12))
        model.index()                       # built before any eid exists
        element = next(iter(model.all_elements()))
        eid = element.eid                   # assigned now, silently
        assert repo.resolve(f"urn:lazy#{eid}") is element
        scans = model.index().eid_scans
        assert repo.resolve(f"urn:lazy#{eid}") is element
        assert model.index().eid_scans == scans     # second hit is indexed

    def test_resolve_after_set_eid_rebind(self):
        repo, _source, _target, book = self._repo_with_book()
        eid = book.eid
        assert repo.resolve(f"urn:a#{eid}") is book
        book.set_eid("rebound-1")
        assert repo.resolve("urn:a#rebound-1") is book
        with pytest.raises(RepositoryError):
            repo.resolve(f"urn:a#{eid}")


class TestRepositoryAllInstances:
    def test_all_instances_matches_scans(self):
        repo = Repository()
        for seed in (1, 2):
            model = repo.create_model(f"urn:m{seed}")
            model.add_root(demo_generator(seed).generate(20))
        pkg = demo_package()
        for name in ("GBook", "GShelf", "GNamed", "GLibrary"):
            metaclass = pkg.classifier(name)
            for exact in (False, True):
                indexed = repo.all_instances(metaclass, exact=exact)
                scanned = [e for e in repo.all_elements()
                           if (e.meta is metaclass if exact
                               else e.meta.conforms_to(metaclass))]
                assert sorted(map(id, indexed)) == sorted(map(id, scanned))

    def test_subclass_instances_found_via_superclass(self):
        pkg = define_package("extent", "urn:test:extent")
        base = define_class(pkg, "EBase")
        add_attribute(base, "n", MInteger, 0)
        sub = define_class(pkg, "ESub", superclasses=[base])
        container = define_class(pkg, "EBox")
        add_reference(container, "items", base, containment=True,
                      multiplicity=M_0N)
        box = container.instantiate()
        model = Model("urn:extent")
        model.add_root(box)
        model.index()
        items = box.eget("items")
        items.append(base.instantiate())
        items.append(sub.instantiate())
        items.append(sub.instantiate())
        assert len(model.instances_of(base)) == 3
        assert len(model.instances_of(base, exact=True)) == 1
        assert len(model.instances_of(sub)) == 2


class TestIndexAfterRollback:
    """Rollback replays inverses through the same kernel operations the
    forward edits used, so the notification-maintained structures — the
    ModelIndex extents and the Repository eid index — must come out of
    an aborted transaction exactly as fresh as they went in.  Run under
    REPRO_INDEX_VERIFY so every indexed answer is oracle-checked."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_extents_fresh_after_aborted_fuzz(self, seed, monkeypatch):
        from repro.mof import transaction
        monkeypatch.setenv("REPRO_INDEX_VERIFY", "1")
        generator = demo_generator(seed)
        root = generator.generate(30)
        model = Model(f"urn:rollback{seed}")
        model.add_root(root)
        model.index()                       # maintained from here on
        fuzzer = EditFuzzer(root, seed=seed, generator=generator,
                            profile="destructive")

        class Abort(RuntimeError):
            pass

        for round_no in range(4):
            with pytest.raises(Abort):
                with transaction():
                    fuzzer.apply_random_edits(12)
                    assert_index_matches_scans(model)   # mid-txn queries
                    raise Abort
            assert_index_matches_scans(model)           # post-abort
        # and committed work is still tracked afterwards
        fuzzer.apply_random_edits(12)
        assert_index_matches_scans(model)

    def test_resolve_fresh_after_aborted_delete(self):
        from repro.mof import transaction
        repo = Repository()
        model = repo.create_model("urn:txnresolve")
        model.add_root(demo_generator(3).generate(20))
        book = next(e for e in model.all_elements()
                    if e.meta.name == "GBook")
        eid = book.eid
        assert repo.resolve(f"urn:txnresolve#{eid}") is book

        class Abort(RuntimeError):
            pass

        with pytest.raises(Abort):
            with transaction():
                book.delete()
                with pytest.raises(RepositoryError):
                    repo.resolve(f"urn:txnresolve#{eid}")
                raise Abort
        # the aborted delete must not leave the eid unresolvable
        assert repo.resolve(f"urn:txnresolve#{eid}") is book

    def test_resolve_does_not_leak_rolled_back_elements(self):
        from repro.mof import transaction
        pkg = demo_package()
        repo = Repository()
        model = repo.create_model("urn:txnleak")
        model.add_root(demo_generator(4).generate(10))
        library = model.roots[0]

        class Abort(RuntimeError):
            pass

        with pytest.raises(Abort):
            with transaction():
                shelf = pkg.classifier("GShelf").instantiate()
                library.eget("shelves").append(shelf)
                eid = shelf.eid             # assigned while attached
                assert repo.resolve(f"urn:txnleak#{eid}") is shelf
                raise Abort
        with pytest.raises(RepositoryError):
            repo.resolve(f"urn:txnleak#{eid}")
