"""Tests for UML well-formedness rules — the checks the paper says
use-case-driven development skips."""

import pytest

from repro.mof import Severity
from repro.uml import (
    Actor,
    Interaction,
    StateMachine,
    UseCase,
    run_wellformed_rules,
)
from repro.uml.wellformed import (
    rule_lifelines_represent_classifiers,
    rule_messages_match_operations,
    rule_no_generalization_cycles,
    rule_statemachine_initial,
    rule_transitions_local,
    rule_unique_member_names,
    rule_usecases_testable,
)


def codes(report):
    return {d.code for d in report.diagnostics}


class TestNamespaceRules:
    def test_duplicate_names_flagged(self, factory):
        factory.clazz("X")
        factory.clazz("X")
        report = run_wellformed_rules(factory.model,
                             rules=[rule_unique_member_names])
        assert "uml-unique-name" in codes(report)

    def test_unnamed_element_warned(self, factory):
        factory.clazz("")
        report = run_wellformed_rules(factory.model,
                             rules=[rule_unique_member_names])
        assert "uml-name" in codes(report)


class TestGeneralizationRules:
    def test_cycle_detected(self, factory):
        a = factory.clazz("A")
        b = factory.clazz("B", supers=[a])
        a.add_super(b)
        report = run_wellformed_rules(factory.model,
                             rules=[rule_no_generalization_cycles])
        assert "uml-gen-cycle" in codes(report)


class TestInteractionRules:
    def test_floating_lifeline_is_error(self, factory):
        interaction = Interaction(name="ix")
        factory.model.add(interaction)
        interaction.add_lifeline("ghost")           # represents nothing
        report = run_wellformed_rules(factory.model,
                             rules=[rule_lifelines_represent_classifiers])
        assert "uml-floating-lifeline" in codes(report)

    def test_message_must_match_operation_or_event(self, factory):
        cls = factory.clazz("Svc")
        factory.operation(cls, "ping")
        interaction = Interaction(name="ix")
        factory.model.add(interaction)
        src = interaction.add_lifeline("a", cls)
        dst = interaction.add_lifeline("b", cls)
        interaction.add_message(src, dst, "ping")      # fine: operation
        interaction.add_message(src, dst, "warp")      # unknown
        report = run_wellformed_rules(factory.model,
                             rules=[rule_messages_match_operations])
        offenders = [d for d in report.diagnostics
                     if d.code == "uml-msg-unknown"]
        assert len(offenders) == 1

    def test_state_machine_event_counts_as_receivable(self, factory):
        cls = factory.clazz("Svc")
        machine = StateMachine(name="SvcSM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        idle = region.add_state("Idle")
        region.add_transition(initial, idle)
        region.add_transition(idle, idle, trigger="poke")
        interaction = Interaction(name="ix")
        factory.model.add(interaction)
        src = interaction.add_lifeline("a", cls)
        dst = interaction.add_lifeline("b", cls)
        interaction.add_message(src, dst, "poke")
        report = run_wellformed_rules(factory.model,
                             rules=[rule_messages_match_operations])
        assert "uml-msg-unknown" not in codes(report)


class TestStateMachineRules:
    def test_missing_initial(self, factory):
        machine = StateMachine(name="sm")
        factory.model.add(machine)
        machine.main_region().add_state("S")
        report = run_wellformed_rules(factory.model,
                             rules=[rule_statemachine_initial])
        assert "uml-sm-initial" in codes(report)

    def test_initial_needs_single_outgoing(self, factory):
        machine = StateMachine(name="sm")
        factory.model.add(machine)
        region = machine.main_region()
        initial = region.add_initial()
        a = region.add_state("A")
        b = region.add_state("B")
        region.add_transition(initial, a)
        region.add_transition(initial, b)
        report = run_wellformed_rules(factory.model,
                             rules=[rule_statemachine_initial])
        assert "uml-sm-initial-out" in codes(report)

    def test_final_state_cannot_have_outgoing(self, factory):
        machine = StateMachine(name="sm")
        factory.model.add(machine)
        region = machine.main_region()
        initial = region.add_initial()
        a = region.add_state("A")
        final = region.add_final()
        region.add_transition(initial, a)
        region.add_transition(a, final)
        region.add_transition(final, a)     # illegal
        report = run_wellformed_rules(factory.model,
                             rules=[rule_transitions_local])
        assert "uml-sm-final-out" in codes(report)

    def test_dangling_transition(self, factory):
        machine = StateMachine(name="sm")
        factory.model.add(machine)
        region = machine.main_region()
        from repro.uml import Transition
        region.transitions.append(Transition(name="t"))
        report = run_wellformed_rules(factory.model,
                             rules=[rule_transitions_local])
        assert "uml-sm-dangling" in codes(report)


class TestUseCaseRules:
    def test_untestable_usecase_warned(self, factory):
        usecase = UseCase(name="DoThing")
        factory.model.add(usecase)
        report = run_wellformed_rules(factory.model, rules=[rule_usecases_testable])
        assert "uml-uc-untestable" in codes(report)
        assert all(d.severity is Severity.WARNING
                   for d in report.diagnostics)

    def test_usecase_with_scenario_is_fine(self, factory):
        usecase = UseCase(name="DoThing")
        interaction = Interaction(name="scenario")
        factory.model.add(usecase)
        factory.model.add(interaction)
        usecase.scenarios.append(interaction)
        report = run_wellformed_rules(factory.model, rules=[rule_usecases_testable])
        assert report.ok and not report.warnings

    def test_include_cycle_detected(self, factory):
        a = UseCase(name="A")
        b = UseCase(name="B")
        factory.model.add(a)
        factory.model.add(b)
        a.includes.append(b)
        b.includes.append(a)
        report = run_wellformed_rules(factory.model, rules=[rule_usecases_testable])
        assert "uml-uc-cycle" in codes(report)

    def test_all_included_transitive(self, factory):
        a, b, c = UseCase(name="A"), UseCase(name="B"), UseCase(name="C")
        for usecase in (a, b, c):
            factory.model.add(usecase)
        a.includes.append(b)
        b.includes.append(c)
        assert a.all_included() == [b, c]


def test_well_formed_model_passes_everything(cruise_model):
    report = run_wellformed_rules(cruise_model.model)
    assert report.ok, str(report)


class TestUnsupportedPseudostates:
    def test_history_warned(self, factory):
        from repro.uml import Pseudostate, StateMachine
        from repro.uml.wellformed import rule_supported_pseudostates
        machine = StateMachine(name="sm")
        factory.model.add(machine)
        region = machine.main_region()
        region.add_initial()
        state = region.add_state("S")
        region.subvertices.append(
            Pseudostate(name="h", kind="deepHistory"))
        report = run_wellformed_rules(factory.model,
                             rules=[rule_supported_pseudostates])
        assert any(d.code == "uml-sm-unsupported-kind"
                   for d in report.warnings)

    def test_choice_not_warned(self, factory):
        from repro.uml import StateMachine
        from repro.uml.wellformed import rule_supported_pseudostates
        machine = StateMachine(name="sm")
        factory.model.add(machine)
        region = machine.main_region()
        region.add_initial()
        region.add_choice("c")
        report = run_wellformed_rules(factory.model,
                             rules=[rule_supported_pseudostates])
        assert report.ok and not report.warnings
