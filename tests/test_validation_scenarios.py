"""Tests for use-cases-as-tests: scenarios and conformance."""

import pytest

from repro.uml import Actor, Interaction, UseCase
from repro.validation import Scenario, run_use_case_tests


class TestScenarioConstruction:
    def test_from_interaction_splits_actor_stimuli(self, cruise_model):
        model = cruise_model.model
        driver = Actor(name="Driver")
        model.add(driver)
        controller = model.member("CruiseController")
        actuator = model.member("ThrottleActuator")
        interaction = Interaction(name="EngageScenario")
        model.add(interaction)
        driver_line = interaction.add_lifeline("driver", driver)
        ctl_line = interaction.add_lifeline("ctl", controller)
        act_line = interaction.add_lifeline("act", actuator)
        interaction.add_message(driver_line, ctl_line, "engage")
        interaction.add_message(ctl_line, act_line, "apply")

        scenario = Scenario.from_interaction(
            interaction, actor_lifelines=["driver"])
        assert scenario.stimuli == [("ctl", "engage")]
        assert scenario.expected == [("ctl", "act", "apply")]

    def test_from_use_case(self, cruise_model):
        model = cruise_model.model
        driver = Actor(name="Driver")
        model.add(driver)
        usecase = UseCase(name="EngageCruise")
        model.add(usecase)
        usecase.actors.append(driver)
        interaction = Interaction(name="happy-path")
        model.add(interaction)
        driver_line = interaction.add_lifeline("driver", driver)
        ctl_line = interaction.add_lifeline(
            "ctl", model.member("CruiseController"))
        interaction.add_message(driver_line, ctl_line, "engage")
        usecase.scenarios.append(interaction)

        scenarios = Scenario.from_use_case(usecase)
        assert len(scenarios) == 1
        assert scenarios[0].stimuli == [("ctl", "engage")]


class TestConformance:
    def test_passing_scenario(self, cruise_collaboration):
        scenario = Scenario(
            "engage", [("ctl", "act", "apply")],
            stimuli=[("ctl", "engage")])
        result = scenario.run(cruise_collaboration())
        assert result.passed
        assert result.matched == [("ctl", "act", "apply")]

    def test_subsequence_tolerates_interleaving(self, cruise_collaboration):
        scenario = Scenario(
            "engage-twice",
            [("ctl", "act", "apply"), ("ctl", "act", "apply")],
            stimuli=[("ctl", "engage"), ("ctl", "tick")])
        result = scenario.run(cruise_collaboration())
        assert result.passed

    def test_failing_scenario_lists_missing(self, cruise_collaboration):
        scenario = Scenario(
            "wrong", [("ctl", "act", "retract")],
            stimuli=[("ctl", "engage")])
        result = scenario.run(cruise_collaboration())
        assert not result.passed
        assert result.missing == [("ctl", "act", "retract")]
        assert "FAIL" in result.explain()
        assert "retract" in result.explain()

    def test_order_matters(self, cruise_collaboration):
        # release happens only after disengage, so this order must fail
        scenario = Scenario(
            "reversed",
            [("ctl", "act", "release"), ("ctl", "act", "apply")],
            stimuli=[("ctl", "engage"), ("ctl", "disengage")])
        result = scenario.run(cruise_collaboration())
        assert not result.passed

    def test_binding_renames_objects(self, cruise_collaboration):
        scenario = Scenario(
            "bound", [("controller", "actuator", "apply")],
            binding={"controller": "ctl", "actuator": "act"},
            stimuli=[("controller", "engage")])
        result = scenario.run(cruise_collaboration())
        assert result.passed

    def test_check_pure_function(self):
        scenario = Scenario("pure", [("a", "b", "m")])
        good = scenario.check([("x", "y", "z"), ("a", "b", "m")])
        assert good.passed
        bad = scenario.check([("x", "y", "z")])
        assert not bad.passed

    def test_empty_expectation_always_passes(self, cruise_collaboration):
        scenario = Scenario("empty", [])
        assert scenario.run(cruise_collaboration()).passed


class TestUseCaseRunner:
    def test_run_use_case_tests_fresh_sut_each(self, cruise_model,
                                               cruise_collaboration):
        model = cruise_model.model
        driver = Actor(name="Driver")
        model.add(driver)
        usecase = UseCase(name="Engage")
        model.add(usecase)
        usecase.actors.append(driver)
        for index in range(2):          # two identical scenarios
            interaction = Interaction(name=f"s{index}")
            model.add(interaction)
            driver_line = interaction.add_lifeline("driver", driver)
            ctl_line = interaction.add_lifeline(
                "ctl", model.member("CruiseController"))
            act_line = interaction.add_lifeline(
                "act", model.member("ThrottleActuator"))
            interaction.add_message(driver_line, ctl_line, "engage")
            interaction.add_message(ctl_line, act_line, "apply")
            usecase.scenarios.append(interaction)
        results = run_use_case_tests(usecase, cruise_collaboration)
        assert len(results) == 2
        assert all(r.passed for r in results)
