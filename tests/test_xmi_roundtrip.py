"""Tests for XMI-style XML and JSON interchange."""

import pytest

from repro.mof import Model, Repository, RepositoryError, validate_tree
from repro.uml import UML, Interaction, ModelFactory, StateMachine, UseCase
from repro.xmi import read_json, read_xml, write_json, write_xml
from kernel_fixture import TEST_PKG, TBook, TLibrary


@pytest.fixture
def uml_model(cruise_model):
    model = Model("urn:cruise", "cruise")
    model.add_root(cruise_model.model)
    return model


def find(model, name):
    for element in model.all_elements():
        if getattr(element, "name", None) == name:
            return element
    raise AssertionError(f"no element named {name}")


class TestXmlRoundtrip:
    def test_structure_preserved(self, uml_model):
        text = write_xml(uml_model)
        loaded = read_xml(text, [UML])
        assert loaded.uri == "urn:cruise"
        original_count = sum(1 for _ in uml_model.all_elements())
        loaded_count = sum(1 for _ in loaded.all_elements())
        assert loaded_count == original_count

    def test_cross_references_resolved(self, uml_model):
        loaded = read_xml(write_xml(uml_model), [UML])
        controller = find(loaded, "CruiseController")
        prop = controller.attribute("actuator")
        assert prop is not None
        assert prop.type.name == "ThrottleActuator"
        assert prop.association is not None

    def test_state_machine_preserved(self, uml_model):
        loaded = read_xml(write_xml(uml_model), [UML])
        controller = find(loaded, "CruiseController")
        machine = controller.state_machine()
        assert machine is not None
        assert machine.events() == ["disengage", "engage", "tick"]
        transition = [t for t in machine.all_transitions()
                      if t.trigger == "tick"][0]
        assert transition.guard == "enabled = true"

    def test_generalizations_preserved(self, factory):
        base = factory.clazz("Base")
        derived = factory.clazz("Derived", supers=[base])
        model = Model("urn:g")
        model.add_root(factory.model)
        loaded = read_xml(write_xml(model), [UML])
        derived2 = find(loaded, "Derived")
        assert [s.name for s in derived2.supers()] == ["Base"]

    def test_roundtrip_is_stable(self, uml_model):
        once = write_xml(uml_model)
        twice = write_xml(read_xml(once, [UML]))
        assert once == twice

    def test_loaded_model_validates(self, uml_model):
        loaded = read_xml(write_xml(uml_model), [UML])
        for root in loaded.roots:
            assert validate_tree(root).ok

    def test_many_valued_attributes(self):
        book = TBook(name="b")
        book.tags.extend(["a", "b c", "d"])
        text = write_xml(book, uri="urn:b")
        loaded = read_xml(text, [TEST_PKG])
        assert list(loaded.roots[0].tags) == ["a", "b c", "d"]

    def test_booleans_and_numbers_coerced(self, factory):
        cls = factory.clazz("C", is_abstract=True, is_active=True)
        sub = factory.clazz("S", supers=[cls])
        model = Model("urn:t")
        model.add_root(factory.model)
        loaded = read_xml(write_xml(model), [UML])
        assert find(loaded, "C").is_abstract is True

    def test_unknown_type_label_rejected(self):
        bad = '<xmi uri="u" name="n"><root type="uml:Nope" id="x"/></xmi>'
        with pytest.raises(RepositoryError):
            read_xml(bad, [UML])

    def test_dangling_reference_rejected(self):
        bad = ('<xmi uri="u" name="n">'
               '<root type="uml:Clazz" id="a" ref.classifier_behavior="zz"/>'
               '</xmi>')
        with pytest.raises(RepositoryError):
            read_xml(bad, [UML])

    def test_not_xmi_document(self):
        with pytest.raises(RepositoryError):
            read_xml("<other/>", [UML])

    def test_register_in_repository(self, uml_model):
        repo = Repository()
        loaded = read_xml(write_xml(uml_model), [UML], repository=repo)
        assert repo.model("urn:cruise") is loaded


class TestJsonRoundtrip:
    def test_roundtrip_stable(self, uml_model):
        once = write_json(uml_model)
        loaded = read_json(once, [UML])
        assert write_json(loaded) == once

    def test_cross_references(self, uml_model):
        loaded = read_json(write_json(uml_model), [UML])
        controller = find(loaded, "CruiseController")
        assert controller.attribute("actuator").type.name == \
            "ThrottleActuator"

    def test_single_root_convenience(self):
        lib = TLibrary(name="solo")
        text = write_json(lib, uri="urn:solo")
        loaded = read_json(text, [TEST_PKG])
        assert loaded.roots[0].name == "solo"

    def test_attrs_skipped_when_default(self):
        import json
        book = TBook(name="b")      # pages stays at default 100 (unset)
        document = json.loads(write_json(book))
        assert "pages" not in document["roots"][0].get("attrs", {})

    def test_xml_json_equivalent_content(self, uml_model):
        via_xml = read_xml(write_xml(uml_model), [UML])
        via_json = read_json(write_json(uml_model), [UML])
        assert (sum(1 for _ in via_xml.all_elements())
                == sum(1 for _ in via_json.all_elements()))


class TestStereotypeSerialization:
    @pytest.fixture
    def annotated_model(self, factory):
        from repro.profiles import SA_SCHEDULABLE
        task = factory.clazz("Pump", is_active=True)
        SA_SCHEDULABLE.apply(task, sa_period_ms=50.0, sa_wcet_ms=5.0)
        model = Model("urn:annotated")
        model.add_root(factory.model)
        return model

    def test_xml_roundtrips_stereotypes(self, annotated_model):
        from repro.profiles import SA_SCHEDULABLE, SPT
        text = write_xml(annotated_model)
        assert "SASchedulable" in text
        loaded = read_xml(text, [UML], profiles=[SPT])
        pump = find(loaded, "Pump")
        assert SA_SCHEDULABLE.is_applied_to(pump)
        assert SA_SCHEDULABLE.value_on(pump, "sa_period_ms") == 50.0
        # stable fixed point still holds
        assert write_xml(loaded) == text

    def test_xml_unknown_stereotype_rejected(self, annotated_model):
        text = write_xml(annotated_model)
        with pytest.raises(RepositoryError):
            read_xml(text, [UML])          # profile not passed

    def test_json_roundtrips_stereotypes(self, annotated_model):
        from repro.profiles import SA_SCHEDULABLE, SPT
        text = write_json(annotated_model)
        loaded = read_json(text, [UML], profiles=[SPT])
        pump = find(loaded, "Pump")
        assert SA_SCHEDULABLE.value_on(pump, "sa_wcet_ms") == 5.0
        assert write_json(loaded) == text

    def test_analysis_works_after_reload(self, annotated_model):
        from repro.profiles import SPT, analyze_model
        loaded = read_xml(write_xml(annotated_model), [UML],
                          profiles=[SPT])
        report = analyze_model(loaded.roots[0])
        assert report.schedulable
