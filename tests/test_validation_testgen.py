"""Tests for model-based test generation."""

import pytest

from repro.uml import ModelFactory, StateMachine
from repro.validation import (
    SimulationError,
    generate_transition_tests,
    run_generated_tests,
)


@pytest.fixture
def turnstile(factory):
    cls = factory.clazz("Turnstile", attrs={"coins": "Integer"})
    machine = StateMachine(name="TurnstileSM")
    cls.owned_behaviors.append(machine)
    cls.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    locked = region.add_state("Locked")
    unlocked = region.add_state("Unlocked")
    region.add_transition(initial, locked)
    region.add_transition(locked, unlocked, trigger="coin",
                          effect="coins := coins + 1")
    region.add_transition(unlocked, locked, trigger="push")
    region.add_transition(locked, locked, trigger="push",
                          kind="internal")      # bounce
    region.add_transition(unlocked, unlocked, trigger="coin",
                          kind="internal",
                          effect="coins := coins + 1")  # extra coin kept
    return cls


class TestGeneration:
    def test_full_coverage_small_machine(self, turnstile):
        result = generate_transition_tests(turnstile)
        assert result.coverage == 1.0
        assert result.transitions_total == 4
        assert result.tests
        print(result.summary())

    def test_sequences_are_shortest_first(self, turnstile):
        result = generate_transition_tests(turnstile)
        lengths = [len(t.events) for t in result.tests]
        assert lengths == sorted(lengths)       # BFS property

    def test_expected_values_recorded(self, turnstile):
        result = generate_transition_tests(turnstile)
        coin_test = [t for t in result.tests
                     if t.events == ["coin"]][0]
        assert coin_test.expected_state == "Unlocked"
        assert coin_test.expected_attributes["coins"] == 1

    def test_generated_tests_pass_on_clean_model(self, turnstile):
        result = generate_transition_tests(turnstile)
        outcomes = run_generated_tests(turnstile, result)
        assert all(passed for _test, passed in outcomes)

    def test_mutation_detected(self, turnstile):
        result = generate_transition_tests(turnstile)
        machine = turnstile.state_machine()
        push = [t for t in machine.all_transitions()
                if t.trigger == "push" and t.kind == "external"][0]
        push.effect = "coins := 0"          # mutation: eats the coins
        outcomes = run_generated_tests(turnstile, result)
        assert any(not passed for _test, passed in outcomes)

    def test_guarded_machine(self, factory):
        cls = factory.clazz("Gate", attrs={"n": "Integer"})
        machine = StateMachine(name="GateSM")
        cls.owned_behaviors.append(machine)
        cls.classifier_behavior = machine
        region = machine.main_region()
        initial = region.add_initial()
        closed = region.add_state("Closed")
        open_ = region.add_state("Open")
        jammed = region.add_state("Jammed")
        region.add_transition(initial, closed)
        region.add_transition(closed, open_, trigger="press",
                              guard="n < 2", effect="n := n + 1")
        region.add_transition(open_, closed, trigger="press")
        region.add_transition(closed, jammed, trigger="press",
                              guard="n >= 2")
        result = generate_transition_tests(cls)
        # the jam transition needs n to reach 2 first: a 5-event sequence
        assert result.coverage == 1.0
        jam_tests = [t for t in result.tests
                     if any("Jammed" in c for c in t.covers)]
        assert jam_tests and len(jam_tests[0].events) == 5

    def test_class_without_machine_rejected(self, factory):
        plain = factory.clazz("Plain")
        with pytest.raises(SimulationError):
            generate_transition_tests(plain)

    def test_hierarchical_machine_flattened(self, cruise_model):
        controller = cruise_model.model.member("CruiseController")
        result = generate_transition_tests(controller)
        assert result.coverage == 1.0

    def test_depth_bound_limits_coverage(self, factory):
        cls = factory.clazz("Deep", attrs={"n": "Integer"})
        machine = StateMachine(name="DeepSM")
        cls.owned_behaviors.append(machine)
        cls.classifier_behavior = machine
        region = machine.main_region()
        initial = region.add_initial()
        state = region.add_state("S")
        far = region.add_state("Far")
        region.add_transition(initial, state)
        region.add_transition(state, state, trigger="step",
                              kind="internal", guard="n < 6",
                              effect="n := n + 1")
        region.add_transition(state, far, trigger="step",
                              guard="n >= 6")
        shallow = generate_transition_tests(cls, max_depth=3)
        assert shallow.coverage < 1.0
        deep = generate_transition_tests(cls, max_depth=10)
        assert deep.coverage == 1.0
