"""Property-based cache-correctness tests for the incremental engine.

The single property: for ANY model and ANY edit sequence, the
incremental engine's diagnostics are indistinguishable from running the
batch checkers from scratch.  Models and edits come from the
metamodel-driven generators in :mod:`repro.generate`; equality is compared as
a multiset of :func:`repro.incremental.diagnostic_key` signatures after
*every* edit, so a stale cache entry or an over-invalidation that drops
a diagnostic fails on the exact (seed, step) that exposes it.

Two metamodels are covered: the self-contained ``genlib`` demo package
(structural + OCL invariant checking) and a curated slice of UML
(structural + invariants + well-formedness + lint).  Together the
parametrisations form 200 (model, edit-sequence) pairs.
"""

from __future__ import annotations

import pytest

from repro.generate import EditFuzzer, demo_generator, uml_generator
from repro.analysis import LintConfig, ModelLinter
from repro.incremental import IncrementalEngine, report_signature
from repro.mof.validate import validate_tree
from repro.uml.wellformed import run_wellformed_rules

DEMO_PAIRS = 120
UML_PAIRS = 80
EDITS_PER_PAIR = 6


def _assert_equivalent(engine, oracle, *, seed, step, history):
    actual = report_signature(engine.revalidate())
    expected = oracle()
    if actual == expected:
        return
    extra = actual - expected
    missing = expected - actual
    pytest.fail(
        f"incremental/oracle divergence at seed={seed} after edit "
        f"{step}/{len(history)}\n"
        f"  edits so far: {history[:step]}\n"
        f"  stale/extra diagnostics: {dict(extra)}\n"
        f"  dropped diagnostics: {dict(missing)}")


@pytest.mark.parametrize("seed", range(DEMO_PAIRS))
def test_demo_metamodel_pair(seed):
    """Structural + invariant diagnostics stay oracle-equal under edits."""
    generator = demo_generator(seed=seed)
    root = generator.generate(30 + (seed % 4) * 10)
    engine = IncrementalEngine(root, wellformed=False, lint=False)

    def oracle():
        return report_signature(validate_tree(root))

    fuzzer = EditFuzzer(root, seed=seed + 10_000, generator=generator)
    history = []
    _assert_equivalent(engine, oracle, seed=seed, step=0, history=history)
    for step in range(1, EDITS_PER_PAIR + 1):
        description = fuzzer.random_edit()
        history.append(description or "(no applicable edit)")
        _assert_equivalent(engine, oracle, seed=seed, step=step,
                           history=history)
    engine.detach()


@pytest.mark.parametrize("seed", range(UML_PAIRS))
def test_uml_metamodel_pair(seed):
    """The full checker stack (structure, invariants, well-formedness,
    lint) stays oracle-equal under edits to random UML models."""
    generator = uml_generator(seed=seed)
    root = generator.generate(35 + (seed % 3) * 10)
    engine = IncrementalEngine(root)
    linter = ModelLinter(config=LintConfig(disabled={"uml-wellformed"}))

    def oracle():
        return (report_signature(validate_tree(root))
                + report_signature(run_wellformed_rules(root))
                + report_signature(linter.lint(root)))

    fuzzer = EditFuzzer(root, seed=seed + 20_000, generator=generator)
    history = []
    _assert_equivalent(engine, oracle, seed=seed, step=0, history=history)
    for step in range(1, EDITS_PER_PAIR + 1):
        description = fuzzer.random_edit()
        history.append(description or "(no applicable edit)")
        _assert_equivalent(engine, oracle, seed=seed, step=step,
                           history=history)
    engine.detach()


def test_pair_budget():
    """The suite really does cover the promised 200 generated pairs."""
    assert DEMO_PAIRS + UML_PAIRS >= 200


def test_engine_runs_fewer_units_than_scratch():
    """Sanity: on a quiet model, revalidation after one rename re-runs a
    small fraction of the units (the cache actually caches)."""
    generator = demo_generator(seed=424)
    root = generator.generate(60)
    engine = IncrementalEngine(root, wellformed=False, lint=False)
    engine.revalidate()
    total = engine.unit_count()

    # rename one leaf element: only its own units should re-run
    leaf = [e for e in root.all_contents() if e.meta.name == "GBook"][0]
    leaf.eset("name", "renamed")
    engine.revalidate()
    assert engine.stats.last_rerun > 0
    assert engine.stats.last_rerun < total / 4
    engine.detach()


def test_incremental_matches_recompute_from_scratch():
    """`recompute_from_scratch` (the engine's own uncached path) agrees
    with the cached path — so benchmarks compare equal work."""
    generator = uml_generator(seed=99)
    root = generator.generate(45)
    engine = IncrementalEngine(root)
    fuzzer = EditFuzzer(root, seed=77, generator=generator)
    engine.revalidate()
    fuzzer.apply_random_edits(4)
    cached = report_signature(engine.revalidate())
    scratch = report_signature(engine.recompute_from_scratch())
    assert cached == scratch
    engine.detach()
