"""Property-based tests for the OCL evaluator: algebraic laws that must
hold for arbitrary inputs."""

from hypothesis import given, settings, strategies as st

from repro.ocl import evaluate

ints = st.integers(-1000, 1000)
small_int_lists = st.lists(ints, max_size=12)


def seq(values):
    return "Sequence{" + ", ".join(str(v) for v in values) + "}"


@settings(max_examples=80, deadline=None)
@given(small_int_lists)
def test_select_reject_partition(values):
    """select(p) ∪ reject(p) is the whole collection, disjointly."""
    selected = evaluate(f"{seq(values)}->select(x | x mod 2 = 0)")
    rejected = evaluate(f"{seq(values)}->reject(x | x mod 2 = 0)")
    assert sorted(selected + rejected) == sorted(values)
    assert all(v % 2 == 0 for v in selected)
    assert all(v % 2 != 0 for v in rejected)


@settings(max_examples=80, deadline=None)
@given(small_int_lists)
def test_sum_matches_python(values):
    assert evaluate(f"{seq(values)}->sum()") == sum(values)


@settings(max_examples=80, deadline=None)
@given(small_int_lists)
def test_size_and_asset_dedup(values):
    assert evaluate(f"{seq(values)}->size()") == len(values)
    assert evaluate(f"{seq(values)}->asSet()->size()") == len(set(values))


@settings(max_examples=80, deadline=None)
@given(small_int_lists)
def test_sortedby_sorts(values):
    assert evaluate(f"{seq(values)}->sortedBy(x | x)") == sorted(values)


@settings(max_examples=80, deadline=None)
@given(small_int_lists, ints)
def test_including_excluding(values, extra):
    including = evaluate(f"{seq(values)}->including({extra})")
    assert including == values + [extra]
    excluding = evaluate(f"{seq(values)}->excluding({extra})")
    assert excluding == [v for v in values if v != extra]


@settings(max_examples=80, deadline=None)
@given(small_int_lists)
def test_forall_exists_duality(values):
    """forAll(p) == not exists(not p)."""
    forall = evaluate(f"{seq(values)}->forAll(x | x > 0)")
    not_exists = evaluate(f"not {seq(values)}->exists(x | not (x > 0))")
    assert forall == not_exists


@settings(max_examples=80, deadline=None)
@given(small_int_lists, small_int_lists)
def test_union_commutes_as_sets(a, b):
    left = set(evaluate(f"Set{{{','.join(map(str, a)) or ''}}}"
                        f"->union({seq(b)})"))
    right = set(evaluate(f"Set{{{','.join(map(str, b)) or ''}}}"
                         f"->union({seq(a)})"))
    assert left == right == set(a) | set(b)


@settings(max_examples=60, deadline=None)
@given(ints, ints)
def test_arithmetic_matches_python(a, b):
    assert evaluate(f"({a}) + ({b})") == a + b
    assert evaluate(f"({a}) * ({b})") == a * b
    if b != 0:
        assert evaluate(f"({a}) div ({b})") == a // b
        assert evaluate(f"({a}) mod ({b})") == a % b


@settings(max_examples=60, deadline=None)
@given(st.booleans(), st.booleans())
def test_implies_truth_table(p, q):
    expr = f"{str(p).lower()} implies {str(q).lower()}"
    assert evaluate(expr) == ((not p) or q)


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               max_size=15))
def test_string_size_and_case(text):
    assert evaluate(f"'{text}'.size()") == len(text)
    assert evaluate(f"'{text}'.toUpperCase()") == text.upper()
