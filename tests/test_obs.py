"""Tests for the observability layer: spans, sinks, metrics, probes."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import trace as trace_mod


@pytest.fixture
def tracing():
    """Enable tracing with a fresh MemorySink; guarantee teardown."""
    sink = obs.MemorySink()
    obs.enable(sink)
    try:
        yield sink
    finally:
        obs.disable()
        obs.remove_sink(sink)
        obs.REGISTRY.reset()


@pytest.fixture
def registry():
    obs.REGISTRY.reset()
    try:
        yield obs.REGISTRY
    finally:
        obs.REGISTRY.reset()


class TestSpans:
    def test_disabled_span_is_shared_null(self):
        assert not trace_mod.ON
        assert obs.span("anything", x=1) is obs.NULL_SPAN
        with obs.span("anything") as sp:
            assert sp.duration == 0.0
            sp.tag(extra=2)          # no-op, no error

    def test_nesting_builds_a_tree(self, tracing):
        with obs.span("root", kind="demo"):
            with obs.span("child-a"):
                with obs.span("leaf"):
                    pass
            with obs.span("child-b"):
                pass
        assert tracing.span_count == 4
        assert len(tracing.roots) == 1
        root = tracing.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert root.children[0].parent_id == root.span_id
        assert root.duration >= sum(c.duration for c in root.children)
        assert root.self_time >= 0.0

    def test_tags_and_late_tagging(self, tracing):
        with obs.span("op", static="yes") as sp:
            sp.tag(result=42)
        assert tracing.roots[0].tags == {"static": "yes", "result": 42}

    def test_thread_local_stacks(self, tracing):
        done = threading.Event()

        def worker():
            with obs.span("worker-span"):
                done.wait(1)

        with obs.span("main-span"):
            thread = threading.Thread(target=worker, name="w0")
            thread.start()
            done.set()
            thread.join()
        names = {s.name for s in tracing.roots}
        # the worker's span is a root of its own thread, not a child of
        # the main thread's open span
        assert names == {"main-span", "worker-span"}
        main = next(s for s in tracing.roots if s.name == "main-span")
        assert main.children == []

    def test_traced_decorator(self, tracing):
        @obs.traced()
        def slow_helper():
            return 7

        @obs.traced("custom.name", layer="test")
        def other():
            return 8

        assert slow_helper() == 7 and other() == 8
        names = [s.name for s in tracing.roots]
        assert names == ["test_obs.slow_helper", "custom.name"]
        assert tracing.roots[1].tags == {"layer": "test"}

    def test_traced_decorator_passthrough_when_off(self):
        @obs.traced()
        def f(x):
            return x * 2

        assert f(3) == 6

    def test_jsonl_sink(self, registry):
        buffer = io.StringIO()
        sink = obs.JsonlSink(buffer)
        obs.enable(sink)
        try:
            with obs.span("outer", model="m"):
                with obs.span("inner"):
                    pass
        finally:
            obs.disable()
            obs.remove_sink(sink)
            sink.close()
        lines = [json.loads(line) for line in
                 buffer.getvalue().strip().splitlines()]
        assert [rec["name"] for rec in lines] == ["inner", "outer"]
        inner, outer = lines
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["tags"] == {"model": "m"}
        assert inner["ms"] >= 0.0 and inner["thread"]

    def test_render_tree_and_top_table(self, tracing):
        with obs.span("pipeline"):
            with obs.span("stage", n=1):
                pass
        text = obs.render_tree(tracing.roots)
        assert "pipeline" in text and "stage n=1" in text
        assert "100.0%" in text.splitlines()[0]
        table = obs.top_table(tracing.roots, n=5)
        assert table.splitlines()[0].split() == [
            "self", "ms", "total", "ms", "calls", "name"]
        assert any("pipeline" in line for line in table.splitlines())

    def test_aggregate_folds_repeated_names(self, tracing):
        for _ in range(3):
            with obs.span("repeated"):
                pass
        rows = obs.aggregate(tracing.roots)
        assert rows[0]["name"] == "repeated" and rows[0]["calls"] == 3


class TestMetrics:
    def test_counter_gauge_histogram(self, registry):
        counter = registry.counter("t.counter", help="h")
        counter.inc()
        counter.inc(2)
        assert registry.get("t.counter").value == 3

        gauge = registry.gauge("t.gauge")
        gauge.set(4.5)
        gauge.dec(0.5)
        assert registry.get("t.gauge").value == 4.0

        histogram = registry.histogram("t.hist", buckets=(1, 10))
        for value in (0.5, 5, 50):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(55.5)
        assert histogram.counts == [1, 1, 1]
        assert histogram.mean == pytest.approx(18.5)

    def test_labels_create_distinct_series(self, registry):
        registry.counter("t.labeled", rule="a").inc()
        registry.counter("t.labeled", rule="b").inc(5)
        assert registry.get("t.labeled", rule="a").value == 1
        assert registry.get("t.labeled", rule="b").value == 5
        assert registry.get("t.labeled", rule="c") is None

    def test_kind_mismatch_raises(self, registry):
        registry.counter("t.kind")
        with pytest.raises(ValueError):
            registry.gauge("t.kind")

    def test_prometheus_export(self, registry):
        registry.counter("ocl.invariant.evals", help="evals").inc(2)
        registry.gauge("engine.units").set(7)
        registry.histogram("lat.seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# TYPE repro_ocl_invariant_evals_total counter" in text
        assert "repro_ocl_invariant_evals_total 2" in text
        assert "repro_engine_units 7" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_count 1" in text

    def test_json_export_and_snapshot(self, registry):
        registry.counter("t.c", k="v").inc()
        registry.histogram("t.h", buckets=(1,)).observe(2)
        doc = registry.to_json()
        assert doc["t.c"]["series"][0]["labels"] == {"k": "v"}
        snap = registry.snapshot()
        assert snap['t.c{k="v"}'] == 1
        assert snap["t.h.count"] == 1
        parsed = json.loads(registry.render_json())
        assert "t.c" in parsed

    def test_reset_clears_everything(self, registry):
        registry.counter("t.gone").inc()
        registry.reset()
        assert registry.get("t.gone") is None


class TestKernelProbes:
    @pytest.fixture
    def dyn_element(self):
        from repro.mof import MString
        from repro.mof.dynamic import add_attribute, define_class, \
            define_package

        pkg = define_package("probe_pkg")
        cls = define_class(pkg, "Thing")
        add_attribute(cls, "name", MString)
        return cls.instantiate()

    def test_probes_count_reads_writes_notifications(self, registry,
                                                     dyn_element):
        obs.enable()
        try:
            dyn_element.eset("name", "a")
            dyn_element.eset("name", "b")
            dyn_element.eget("name")
        finally:
            obs.disable()
        assert registry.get("mof.mutations").value >= 2
        assert registry.get("mof.reads").value >= 1
        assert registry.get("mof.notifications", kind="set").value >= 2

    def test_disable_restores_hooks(self, dyn_element):
        from repro.mof import kernel, notify

        assert kernel._READ_HOOK is None
        obs.enable()
        assert kernel._READ_HOOK is not None
        assert kernel._WRITE_HOOK is not None
        obs.disable()
        assert kernel._READ_HOOK is None
        assert kernel._WRITE_HOOK is None
        assert notify._NOTIFY_HOOK is None
        obs.REGISTRY.reset()

    def test_chained_read_hook_still_called(self, registry, dyn_element):
        from repro.mof import kernel

        seen = []
        prev = kernel.set_read_hook(lambda el, feat: seen.append(feat))
        assert prev is None
        obs.enable()
        try:
            dyn_element.eget("name")
        finally:
            obs.disable()
            kernel.set_read_hook(None)
        assert "name" in seen
        assert registry.get("mof.reads").value >= 1

    def test_enable_is_idempotent(self):
        obs.enable()
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()
        obs.REGISTRY.reset()


class TestInstrumentedLayers:
    def test_session_check_emits_spans_and_metrics(self, registry):
        from repro.generate import uml_generator
        from repro.session import Session

        root = uml_generator(3).generate(30)
        sink = obs.MemorySink()
        obs.enable(sink)
        try:
            Session(root).check()
        finally:
            obs.disable()
            obs.remove_sink(sink)
        names = {s.name for s in sink.roots}
        assert "session.check" in names
        child_names = {c.name for s in sink.roots for c in s.children}
        assert {"session.check.structural",
                "session.check.wellformed"} <= child_names
        assert registry.get("session.checks", family="lint").value == 1
