"""E19 — constraint-aware generation must scale, repair must converge,
direction must beat chance.

Claim: a model-driven toolchain is only testable at the paper's scale if
it can *manufacture* its own workloads — seeded corpora of 10^4–10^6
elements that the full checker stack accepts.  Three promises to
measure:

* **throughput** — generation plus constraint-guided repair stays
  near-linear in corpus size (no O(n^2) cliff), at a rate that makes
  10^5-element corpora routine;
* **convergence** — across a band of seeds, the repair loop drives
  every corpus to zero error diagnostics within its iteration budget
  (default check families, cross-diagram consistency included);
* **direction** — coverage-directed generation reaches full structural
  (metaclass + association-end) coverage of the UML slice in strictly
  fewer elements than blind random generation.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run reduced sizes/seed bands.
"""

import os
import time

from repro.generate import CoverageMap, generate_model, make_generator
from repro.session import Session

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SIZES = [500, 2000] if QUICK else [1000, 10_000, 100_000]
CONVERGENCE_SEEDS = 6 if QUICK else 25
CONVERGENCE_SIZE = 200 if QUICK else 1000
COVERAGE_SEEDS = [3] if QUICK else [3, 7, 11]
COVERAGE_CAP = 4096


def test_e19_throughput_scales_near_linearly():
    print("\nE19: generation + repair throughput across corpus sizes")
    print(f"{'size':>8} {'elements':>9} {'ms':>10} {'elem/s':>10} "
          f"{'us/elem':>9} {'edits':>7}")
    per_element = []
    for size in SIZES:
        started = time.perf_counter()
        result = generate_model("demo", size=size, seed=0, repair=True)
        elapsed = time.perf_counter() - started
        assert result.repair.converged, result.repair.render()
        n = result.n_elements
        micros = elapsed * 1e6 / n
        per_element.append(micros)
        print(f"{size:>8} {n:>9} {elapsed * 1e3:>10.1f} "
              f"{n / elapsed:>10,.0f} {micros:>9.2f} "
              f"{len(result.repair.edits):>7}")
        # repair keeps the corpus: pruning is the last resort
        assert n >= 0.9 * size, (size, n)
    # near-linear: per-element cost must not blow up with corpus size
    assert max(per_element) < 5 * min(per_element) + 100, per_element


def test_e19_repair_converges_across_seeds():
    print("\nE19: repair convergence band "
          f"({CONVERGENCE_SEEDS} seeds, size {CONVERGENCE_SIZE})")
    iterations = []
    edits = []
    for seed in range(CONVERGENCE_SEEDS):
        result = generate_model("demo", size=CONVERGENCE_SIZE, seed=seed,
                                repair=True)
        assert result.repair.converged, (seed, result.repair.render())
        errors = Session(result.model).check().errors
        assert not errors, (seed, [d.render() for d in errors[:3]])
        iterations.append(result.repair.iterations)
        edits.append(len(result.repair.edits))
    print(f"  iterations: max {max(iterations)}, "
          f"mean {sum(iterations) / len(iterations):.2f}")
    print(f"  edits/model: max {max(edits)}, "
          f"mean {sum(edits) / len(edits):.1f}")
    assert max(iterations) <= 10


def _elements_to_full_structural_coverage(directed, seed):
    size = 16
    while size <= COVERAGE_CAP:
        generator = make_generator("uml", seed=seed, directed=directed)
        root = generator.generate(size)
        coverage = generator.coverage or CoverageMap(generator)
        coverage.measure(root)
        if coverage.structural_complete:
            return size
        size *= 2
    return COVERAGE_CAP * 2


def test_e19_directed_beats_random_coverage():
    print("\nE19: elements to full metaclass+end coverage (UML slice)")
    print(f"{'seed':>6} {'random':>8} {'directed':>9} {'ratio':>7}")
    for seed in COVERAGE_SEEDS:
        directed = _elements_to_full_structural_coverage(True, seed)
        random_ = _elements_to_full_structural_coverage(False, seed)
        print(f"{seed:>6} {random_:>8} {directed:>9} "
              f"{random_ / directed:>7.1f}x")
        assert directed < random_, (seed, directed, random_)
        assert directed <= 512, (seed, directed)
