"""E5 — Model checking as model testing (paper §2).

Claim: "testing here can mean ... verification (proof, model checking)".
For that to be practicable the checker must survive the interleaving
explosion of growing collaborations and still find seeded defects.

Measured: explored state count and time over a token-ring size sweep;
detection of a seeded deadlock; checking cost.
"""

import time

import pytest

from repro.validation import check_collaboration
from workloads import make_token_ring, ring_stimuli

SIZES = [2, 3, 4, 5]


def test_e5_report_and_shape():
    print("\nE5: model-checker state-space sweep (token ring)")
    print(f"{'nodes':>6} {'states':>8} {'transitions':>12} {'ms':>9}")
    previous_states = 0
    for k in SIZES:
        _, collab = make_token_ring(k)
        started = time.perf_counter()
        result = check_collaboration(collab, ring_stimuli(k),
                                     max_states=60_000)
        elapsed = (time.perf_counter() - started) * 1e3
        print(f"{k:>6} {result.states_explored:>8} "
              f"{result.transitions_explored:>12} {elapsed:>9.1f}")
        assert result.ok
        # interleaving growth: strictly more states with more nodes
        assert result.states_explored > previous_states
        previous_states = result.states_explored


def test_e5_seeded_deadlock_found():
    """A ring whose token is never injected deadlocks (quiescent without
    progress) — the checker must say so, with a trace."""
    _, collab = make_token_ring(3)
    result = check_collaboration(
        collab, [("n0", "pass_on")],        # pass without holding a token
        done=lambda c: any(o.attributes["seen"] > 0
                           for o in c.objects.values()))
    assert any(v.kind == "deadlock" for v in result.violations)


def test_e5_seeded_invariant_violation_found():
    _, collab = make_token_ring(3)
    result = check_collaboration(
        collab, ring_stimuli(3),
        invariants={"nobody-sees-token":
                    lambda c: c.objects["n1"].attributes["seen"] == 0})
    assert not result.ok
    violation = result.violations[0]
    assert violation.kind == "invariant"
    assert violation.trace


@pytest.mark.parametrize("k", [3, 4])
def test_e5_checking_cost(benchmark, k):
    def check():
        _, collab = make_token_ring(k)
        return check_collaboration(collab, ring_stimuli(k),
                                   max_states=60_000)
    result = benchmark(check)
    assert result.ok
