"""E6 — Profiles carry real analysis: SPT schedulability (paper §2).

Claim: profiles like "UML Profile for Schedulability, Performance and
Time" are only worth applying if the annotations feed actual analysis.

Measured: (a) across a utilisation sweep, the exact response-time
analysis accepts everything the (sufficient) Liu-Layland bound accepts
and more — the classic RM picture; (b) analysis cost for large task
sets.
"""

import pytest

from repro.profiles import analyze_tasks, liu_layland_bound
from workloads import make_task_set

UTILIZATIONS = [0.5, 0.69, 0.85, 0.95, 1.05]
N_TASKS = 8
SEEDS = range(10)


def verdicts_at(utilization):
    ll_accepts = 0
    rta_accepts = 0
    for seed in SEEDS:
        tasks = make_task_set(N_TASKS, utilization, seed=seed)
        report = analyze_tasks(tasks)
        if report.passes_utilization_test:
            ll_accepts += 1
        if report.schedulable:
            rta_accepts += 1
        # soundness: the sufficient test never accepts what RTA rejects
        assert not (report.passes_utilization_test
                    and not report.schedulable)
    return ll_accepts, rta_accepts


def test_e6_report_and_shape():
    bound = liu_layland_bound(N_TASKS)
    print(f"\nE6: RM schedulability, n={N_TASKS} tasks, "
          f"LL bound={bound:.3f} ({len(SEEDS)} task sets per point)")
    print(f"{'U':>6} {'LL accepts':>11} {'RTA accepts':>12}")
    series = []
    for utilization in UTILIZATIONS:
        ll_accepts, rta_accepts = verdicts_at(utilization)
        series.append((utilization, ll_accepts, rta_accepts))
        print(f"{utilization:>6.2f} {ll_accepts:>11} {rta_accepts:>12}")
    # shape: below the bound everything passes both tests
    assert series[0][1] == len(SEEDS) and series[0][2] == len(SEEDS)
    # between bound and 1: LL goes inconclusive, RTA still accepts some
    mid = series[2]
    assert mid[1] < len(SEEDS)
    assert mid[2] >= mid[1]
    # above 1.0 nothing is schedulable
    assert series[-1][2] == 0
    # RTA dominates LL at every point
    for _, ll_accepts, rta_accepts in series:
        assert rta_accepts >= ll_accepts


@pytest.mark.parametrize("n_tasks", [10, 50])
def test_e6_analysis_cost(benchmark, n_tasks):
    tasks = make_task_set(n_tasks, 0.7)
    report = benchmark(analyze_tasks, tasks)
    assert len(report.tasks) == n_tasks
