"""Workload generators shared by the experiment benchmarks.

Deterministic (seeded) synthetic model populations standing in for the
proprietary industrial models of the paper's setting — same code paths,
reproducible sizes.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.profiles import Task
from repro.uml import Clazz, ModelFactory, StateMachine
from repro.validation import Collaboration


def make_oo_design(n_classes: int, seed: int = 7) -> ModelFactory:
    """A plausibly modular OO design: small clusters, shallow taxonomy,
    a few operations per class sharing attributes."""
    rng = random.Random(seed)
    factory = ModelFactory(f"oo_{n_classes}")
    classes: List[Clazz] = []
    for index in range(n_classes):
        cls = factory.clazz(f"C{index}",
                            attrs={f"a{index}_0": "Integer",
                                   f"a{index}_1": "String"})
        for op_index in range(rng.randint(2, 4)):
            factory.operation(cls, f"op{op_index}",
                              body=f"a{index}_0 := a{index}_0 + 1")
        classes.append(cls)
    # shallow inheritance: ~20% of classes specialise an earlier one
    for cls in classes[1:]:
        if rng.random() < 0.2:
            cls.add_super(rng.choice(classes[:classes.index(cls)]))
    # sparse coupling: each class knows ~2 collaborators
    for cls in classes:
        for _ in range(2):
            other = rng.choice(classes)
            if other is not cls and not cls.attribute(
                    f"to_{other.name.lower()}"):
                factory.associate(cls, other,
                                  end_b=f"to_{other.name.lower()}")
    return factory


def make_functional_design(n_classes: int, seed: int = 7) -> ModelFactory:
    """The use-case-driven anti-design of the paper's §1: single-function
    classes in one deep inheritance chain, near-total coupling."""
    rng = random.Random(seed)
    factory = ModelFactory(f"functional_{n_classes}")
    classes: List[Clazz] = []
    previous = None
    for index in range(n_classes):
        supers = [previous] if previous is not None else []
        cls = factory.clazz(f"Step{index}", supers=supers)
        factory.operation(cls, "execute")
        classes.append(cls)
        previous = cls
    for cls in classes:
        for other in classes:
            if cls is not other:
                factory.associate(cls, other,
                                  end_b=f"to_{other.name.lower()}")
    return factory


def make_sized_pim(n_classes: int, *, machines_every: int = 4,
                   seed: int = 11) -> ModelFactory:
    """A PIM with *n_classes* classes, associations, and a state machine
    on every ``machines_every``-th class — the transformation-engine and
    serialization workload."""
    rng = random.Random(seed)
    factory = ModelFactory(f"pim_{n_classes}")
    classes: List[Clazz] = []
    for index in range(n_classes):
        cls = factory.clazz(
            f"Block{index}",
            attrs={"level": "Integer", "label": "String",
                   "rate": "Real"},
            is_active=(index % 3 == 0))
        factory.operation(cls, "poll", body="level := level + 1")
        classes.append(cls)
        if index % machines_every == 0:
            machine = StateMachine(name=f"Block{index}SM")
            cls.owned_behaviors.append(machine)
            cls.classifier_behavior = machine
            region = machine.main_region()
            initial = region.add_initial()
            idle = region.add_state("Idle")
            busy = region.add_state("Busy")
            region.add_transition(initial, idle)
            region.add_transition(idle, busy, trigger="work",
                                  effect="level := level + 1")
            region.add_transition(busy, idle, trigger="done")
    for index, cls in enumerate(classes[:-1]):
        factory.associate(cls, classes[index + 1],
                          end_b=f"next{index}")
    return factory


def make_interacting_pim(n_classes: int, *, interactions_every: int = 8,
                         seed: int = 11) -> ModelFactory:
    """:func:`make_sized_pim` plus interactions: every
    ``interactions_every``-th pair of chain-associated classes gets a
    scenario whose messages resolve to real operations and reachable
    triggers — the cross-diagram consistency workload, clean by
    construction."""
    from repro.uml.interactions import Interaction

    factory = make_sized_pim(n_classes, seed=seed)
    # exact Clazz: behaviours (state machines) subclass Clazz in UML
    classes = [cls for cls in factory.model.all_contents()
               if type(cls) is Clazz]
    for index in range(0, len(classes) - 1, interactions_every):
        caller, callee = classes[index], classes[index + 1]
        scenario = Interaction(name=f"scenario{index}")
        factory.model.add(scenario)
        lc = scenario.add_lifeline("caller", caller)
        le = scenario.add_lifeline("callee", callee)
        scenario.add_message(lc, le, "poll")
        if callee.classifier_behavior is not None:
            scenario.add_message(lc, le, "work")
            scenario.add_message(lc, le, "done")
    return factory


def make_task_set(n_tasks: int, utilization: float,
                  seed: int = 3) -> List[Task]:
    """A task set with the requested total utilisation (UUniFast-ish)."""
    rng = random.Random(seed)
    remaining = utilization
    shares: List[float] = []
    for index in range(n_tasks - 1):
        next_remaining = remaining * rng.random() ** (
            1.0 / (n_tasks - index - 1))
        shares.append(remaining - next_remaining)
        remaining = next_remaining
    shares.append(remaining)
    tasks = []
    for index, share in enumerate(shares):
        period = rng.choice([5, 10, 20, 50, 100, 200])
        tasks.append(Task(f"t{index}", period_ms=float(period),
                          wcet_ms=max(share * period, 1e-6)))
    return tasks


def make_token_ring(k: int) -> Tuple[ModelFactory, Collaboration]:
    """k machines passing a token around a ring — the model-checking
    scaling workload (state space grows with k and interleavings)."""
    factory = ModelFactory(f"ring_{k}")
    node = factory.clazz("Node", attrs={"seen": "Integer"},
                         is_active=True)
    factory.associate(node, node, end_b="next", end_a="prev")
    machine = StateMachine(name="NodeSM")
    node.owned_behaviors.append(machine)
    node.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    idle = region.add_state("Idle")
    holding = region.add_state("Holding")
    region.add_transition(initial, idle)
    region.add_transition(idle, holding, trigger="token",
                          guard="seen < 2",
                          effect="seen := seen + 1")
    region.add_transition(holding, idle, trigger="pass_on",
                          effect="send next.token()")
    region.add_transition(idle, idle, trigger="token",
                          guard="seen >= 2", kind="internal")

    collab = Collaboration(f"ring{k}")
    names = [f"n{i}" for i in range(k)]
    for name in names:
        collab.create_object(name, node)
    for index, name in enumerate(names):
        collab.link(name, "next", names[(index + 1) % k])
    return factory, collab


def ring_stimuli(k: int) -> List[Tuple[str, str]]:
    """Initial token injection plus pass commands for every node."""
    stimuli = [("n0", "token")]
    for index in range(k):
        stimuli.append((f"n{index}", "pass_on"))
    return stimuli
