"""E18 — cross-diagram consistency checking at interactive cost.

Claim: the paper's central deliverable is a *set* of views — class
models, state machines, interactions — "maintained as the 'system
models' are developed".  Views drift; a consistency family (XD001—XD007)
only earns a place inside the edit loop if whole-repository analysis
stays near-linear in model size and a single edit re-checks a sliver of
the model, not all of it.

Measured: batch consistency-lint throughput across model sizes spanning
~10^3 to ~10^5 elements (interactions + class models + state machines),
and the incremental engine's per-edit cost/speedup with the consistency
family enabled, including the flat-rerun property across sizes.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run reduced sizes/edit counts.
"""

import os
import random
import statistics
import time

from repro.analysis import ModelLinter
from repro.incremental import IncrementalEngine, report_signature
from workloads import make_interacting_pim

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SIZES = [60] if QUICK else [100, 1000, 8000]  # n_classes; ~11 elems each
N_EDITS = 6 if QUICK else 20
N_BASELINE = 2 if QUICK else 3
REQUIRED_SPEEDUP = 2.0 if QUICK else 10.0     # enforced at largest size


def consistency_linter():
    return ModelLinter(families=("consistency",))


def test_e18_throughput_and_shape():
    print("\nE18: consistency-family throughput across model sizes")
    print(f"{'classes':>8} {'elements':>9} {'ms':>9} {'us/elem':>9}")
    per_element = []
    counts = []
    for size in SIZES:
        model = make_interacting_pim(size).model
        linter = consistency_linter()
        started = time.perf_counter()
        report = linter.lint(model)
        elapsed = time.perf_counter() - started
        assert report.ok, report.render()     # workload is clean
        n_elements = 1 + sum(1 for _ in model.all_contents())
        counts.append(n_elements)
        micros = elapsed * 1e6 / n_elements
        per_element.append(micros)
        print(f"{size:>8} {n_elements:>9} {elapsed * 1e3:>9.2f} "
              f"{micros:>9.2f}")
    if not QUICK:
        assert counts[0] >= 1_000, counts
        assert counts[-1] >= 80_000, counts
    # near-linear: per-element cost must not blow up with model size
    assert max(per_element) < 5 * min(per_element) + 100


def _editable_elements(root, rng, count):
    pool = []
    for element in [root] + list(root.all_contents()):
        feature = element.meta.find_feature("name")
        if feature is not None and not feature.many \
                and isinstance(element.eget("name"), str):
            pool.append(element)
    rng.shuffle(pool)
    return pool[:count]


def test_e18_incremental_speedup():
    print("\nE18: incremental consistency vs from-scratch re-analysis")
    print(f"{'classes':>8} {'elements':>9} {'units':>7} {'scratch ms':>11} "
          f"{'incr ms':>9} {'speedup':>8}")
    speedups = []
    sizes = SIZES[:-1] if len(SIZES) > 2 else SIZES   # cap scratch cost
    for size in sizes:
        model = make_interacting_pim(size).model
        engine = IncrementalEngine(model, consistency=True)
        engine.revalidate()
        n_elements = 1 + sum(1 for _ in model.all_contents())

        scratch_times = []
        for _ in range(N_BASELINE):
            started = time.perf_counter()
            engine.recompute_from_scratch()
            scratch_times.append(time.perf_counter() - started)
        scratch_ms = statistics.median(scratch_times) * 1e3

        rng = random.Random(size)
        edit_times = []
        for element in _editable_elements(model, rng, N_EDITS // 2):
            original = element.eget("name")
            for value in (original + "~", original):
                element.eset("name", value)
                started = time.perf_counter()
                engine.revalidate()
                edit_times.append(time.perf_counter() - started)
        incr_ms = statistics.median(edit_times) * 1e3

        speedup = scratch_ms / incr_ms if incr_ms else float("inf")
        speedups.append((size, n_elements, speedup))
        print(f"{size:>8} {n_elements:>9} {engine.unit_count():>7} "
              f"{scratch_ms:>11.2f} {incr_ms:>9.3f} {speedup:>7.1f}x")

        # cache-correctness spot check at every size
        assert report_signature(engine.revalidate()) == \
            report_signature(engine.recompute_from_scratch())
        engine.detach()

    largest = speedups[-1]
    assert largest[2] >= REQUIRED_SPEEDUP, (
        f"median speedup {largest[2]:.1f}x at {largest[1]} elements, "
        f"required >= {REQUIRED_SPEEDUP}x")


def test_e18_edit_cost_flat_in_model_size():
    """Per-edit rerun counts with consistency enabled track the edited
    element's fan-in, not the repository size."""
    reruns = []
    for size in SIZES if QUICK else SIZES[:-1]:
        model = make_interacting_pim(size).model
        engine = IncrementalEngine(model, consistency=True)
        engine.revalidate()
        rng = random.Random(42)
        worst = 0
        for element in _editable_elements(model, rng, 4):
            element.eset("name", element.eget("name") + "!")
            engine.revalidate()
            worst = max(worst, engine.stats.last_rerun)
        reruns.append((size, worst, engine.unit_count()))
        engine.detach()
    print("\nE18: worst-case units re-run after a rename "
          "(consistency on)")
    for size, worst, total in reruns:
        print(f"  {size:>5} classes: {worst:>4} of {total} units")
    if len(reruns) > 1:
        small, large = reruns[0][1], reruns[-1][1]
        assert large <= max(small * 3, small + 20), reruns
    for size, worst, total in reruns:
        assert worst < total * 0.05 + 10, (size, worst, total)
