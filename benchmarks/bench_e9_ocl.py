"""E9 — OCL-style model queries must be practical at scale (paper §2).

Claim: "If a model can not be tested somehow then there is little point
in producing that model" — constraint evaluation is the cheapest form of
model testing and must stay usable as models grow.

Measured: per-object invariant-checking cost across model sizes, plus
single-expression evaluation cost for representative query shapes.
"""

import time

import pytest

from repro.ocl import ConstraintSet, evaluate
from repro.uml import Clazz
from workloads import make_sized_pim

SIZES = [25, 50, 100, 200]


def make_constraints():
    constraints = ConstraintSet("pim-rules")
    constraints.add(Clazz, "named", "name <> ''")
    constraints.add(Clazz, "attrs-typed",
                    "owned_attributes->forAll(p | p.type <> null)")
    constraints.add(Clazz, "ops-bounded",
                    "owned_operations->size() < 20")
    return constraints


def test_e9_report_and_shape():
    constraints = make_constraints()
    print("\nE9: invariant checking across model sizes "
          f"({len(constraints)} invariants)")
    print(f"{'classes':>8} {'elements':>9} {'ms':>9} {'us/elem':>9}")
    per_element = []
    for size in SIZES:
        model = make_sized_pim(size).model
        elements = 1 + sum(1 for _ in model.all_contents())
        started = time.perf_counter()
        report = constraints.evaluate(model)
        elapsed = time.perf_counter() - started
        assert report.ok
        micros = elapsed * 1e6 / elements
        per_element.append(micros)
        print(f"{size:>8} {elements:>9} {elapsed * 1e3:>9.2f} "
              f"{micros:>9.1f}")
    # near-linear: per-element cost must not grow with model size
    assert max(per_element) < 5 * min(per_element) + 100


def test_e9_violations_still_found_at_scale():
    constraints = make_constraints()
    factory = make_sized_pim(100)
    factory.clazz("")      # seed one violation
    report = constraints.evaluate(factory.model)
    assert len(report.errors) == 1


@pytest.mark.parametrize("label,expr", [
    ("navigation", "self.packaged_elements->size()"),
    ("filter+collect",
     "self.packaged_elements->select(e | e.oclIsKindOf(Clazz))"
     "->collect(c | c.name)->size()"),
    ("allInstances", "Clazz.allInstances()->size()"),
    ("closure",
     "self.packaged_elements->select(e | e.oclIsKindOf(Clazz))"
     "->closure(c | c.supers())->size()"),
])
def test_e9_query_cost(benchmark, label, expr):
    model = make_sized_pim(100).model

    def run_query():
        return evaluate(expr, self=model)
    value = benchmark(run_query)
    assert isinstance(value, int) and value >= 0
