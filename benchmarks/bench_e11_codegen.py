"""E11 — Model compilation to multiple 3GL targets (paper §1).

Claim: once the semantic work is done in the transformations, emitting
"the same semantics ... expressed in different formalisms" is a cheap
syntactic step — one PSM/IR should fan out to several languages.

Measured: lowering + printing cost and emitted line counts for C,
Java-like and SystemC-like targets from the same PSM.
"""

import time

import pytest

from repro.codegen import (
    generate_c,
    generate_java,
    generate_systemc,
    lower_model,
)
from repro.platforms import make_pim_to_psm, posix_platform
from workloads import make_sized_pim

SIZES = [25, 50, 100]

PRINTERS = {
    "c": generate_c,
    "java": generate_java,
    "systemc": generate_systemc,
}


def make_psm(size):
    platform = posix_platform()
    return make_pim_to_psm(platform).run(
        make_sized_pim(size).model, platform=platform).primary_root


def test_e11_report_and_shape():
    print("\nE11: one PSM, three targets")
    print(f"{'classes':>8} {'lower ms':>9} "
          + "".join(f"{lang + ' loc':>10}{lang + ' ms':>9}"
                    for lang in PRINTERS))
    for size in SIZES:
        psm = make_psm(size)
        started = time.perf_counter()
        code = lower_model(psm)
        lower_ms = (time.perf_counter() - started) * 1e3
        row = f"{size:>8} {lower_ms:>9.2f} "
        locs = {}
        for lang, printer in PRINTERS.items():
            started = time.perf_counter()
            files = printer(code)
            elapsed = (time.perf_counter() - started) * 1e3
            loc = sum(text.count("\n") for text in files.values())
            locs[lang] = loc
            row += f"{loc:>10}{elapsed:>9.2f}"
        print(row)
        # every target covers every struct: same semantics, three syntaxes
        for lang in PRINTERS:
            assert locs[lang] > size            # non-trivial output
        assert code.stats()["structs"] >= size


def test_e11_printers_agree_on_structure():
    psm = make_psm(25)
    code = lower_model(psm)
    c_text = "".join(generate_c(code).values())
    java_files = generate_java(code)
    systemc_text = "".join(generate_systemc(code).values())
    for struct in code.all_structs():
        assert struct.name in c_text
        assert f"{struct.name}.java" in java_files
        assert struct.name in systemc_text


@pytest.mark.parametrize("lang", list(PRINTERS))
def test_e11_printing_cost(benchmark, lang):
    code = lower_model(make_psm(50))
    files = benchmark(PRINTERS[lang], code)
    assert files


def test_e11_lowering_cost(benchmark):
    psm = make_psm(50)
    code = benchmark(lower_model, psm)
    assert code.units
