"""E2 — Semantic vs syntactic transformations (paper §1).

Claim: a *semantic* transformation changes abstraction level by consuming
platform knowledge; a *syntactic* one merely re-expresses the same model
("no change of abstraction level is made").

Measured: platform-content ratio of (a) the PIM, (b) the PSM produced by
the platform-parametric semantic engine, (c) the copy produced by the
syntactic identity transformation — on two platforms.  The timed kernels
are both transformations on the same input.
"""

import pytest

from repro.method import abstraction_delta, platform_content_ratio
from repro.platforms import (
    baremetal_platform,
    make_pim_to_psm,
    posix_platform,
)
from repro.transform import clone_transformation
from repro.uml import UmlElement
from workloads import make_sized_pim

PIM_SIZE = 40


@pytest.fixture(scope="module")
def pim():
    return make_sized_pim(PIM_SIZE).model


def test_e2_report_and_shape(pim):
    print("\nE2: platform-content ratio by transformation kind")
    print(f"{'platform':<14} {'pim':>6} {'semantic psm':>13} "
          f"{'syntactic copy':>15} {'delta(sem)':>11}")
    for platform in (posix_platform(), baremetal_platform()):
        semantic = make_pim_to_psm(platform)
        syntactic = clone_transformation(UmlElement)
        psm = semantic.run(pim, platform=platform).primary_root
        copy = syntactic.run(pim).primary_root
        pim_ratio = platform_content_ratio(pim, platform)
        psm_ratio = platform_content_ratio(psm, platform)
        copy_ratio = platform_content_ratio(copy, platform)
        delta = abstraction_delta(pim, psm, platform)
        print(f"{platform.name:<14} {pim_ratio:>6.3f} {psm_ratio:>13.3f} "
              f"{copy_ratio:>15.3f} {delta:>11.3f}")
        # shape: semantic adds platform content, syntactic adds none
        assert pim_ratio == 0.0
        assert psm_ratio > 0.05
        assert copy_ratio == pim_ratio
        assert delta > 0
        # declared vs measured direction agree
        assert semantic.abstraction_delta < 0
        assert syntactic.abstraction_delta == 0


def test_e2_semantic_transformation_speed(benchmark, pim):
    platform = posix_platform()
    transformation = make_pim_to_psm(platform)
    result = benchmark(transformation.run, pim, platform=platform)
    assert result.target_roots


def test_e2_syntactic_transformation_speed(benchmark, pim):
    transformation = clone_transformation(UmlElement)
    result = benchmark(transformation.run, pim)
    assert result.target_roots
