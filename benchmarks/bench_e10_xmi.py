"""E10 — Model interchange: faithful, stable and cheap (paper §1).

Claim: MDA tooling rests on MOF/XMI interchange; a round trip must be
lossless (stable fixed point) and scale with model size.

Measured: XML and JSON round-trip stability, document size and time
across a model-size sweep.
"""

import time

import pytest

from repro.mof import Model
from repro.uml import UML
from repro.xmi import read_json, read_xml, write_json, write_xml
from workloads import make_sized_pim

SIZES = [25, 50, 100, 200]


def wrap(size):
    model = Model(f"urn:pim{size}")
    model.add_root(make_sized_pim(size).model)
    return model


def test_e10_report_and_shape():
    print("\nE10: interchange round trip")
    print(f"{'classes':>8} {'elements':>9} {'xml KiB':>9} "
          f"{'xml ms':>8} {'json KiB':>9} {'json ms':>9}")
    for size in SIZES:
        model = wrap(size)
        elements = sum(1 for _ in model.all_elements())

        started = time.perf_counter()
        xml_text = write_xml(model)
        xml_model = read_xml(xml_text, [UML])
        xml_ms = (time.perf_counter() - started) * 1e3

        started = time.perf_counter()
        json_text = write_json(model)
        json_model = read_json(json_text, [UML])
        json_ms = (time.perf_counter() - started) * 1e3

        print(f"{size:>8} {elements:>9} {len(xml_text) / 1024:>9.1f} "
              f"{xml_ms:>8.2f} {len(json_text) / 1024:>9.1f} "
              f"{json_ms:>9.2f}")
        # losslessness: the round trip is a fixed point
        assert write_xml(xml_model) == xml_text
        assert write_json(json_model) == json_text
        assert sum(1 for _ in xml_model.all_elements()) == elements
        assert sum(1 for _ in json_model.all_elements()) == elements


def test_e10_xml_roundtrip_cost(benchmark):
    model = wrap(100)

    def roundtrip():
        return read_xml(write_xml(model), [UML])
    loaded = benchmark(roundtrip)
    assert loaded.roots


def test_e10_json_roundtrip_cost(benchmark):
    model = wrap(100)

    def roundtrip():
        return read_json(write_json(model), [UML])
    loaded = benchmark(roundtrip)
    assert loaded.roots
