"""E12 — QoS contracts validated against *measured* platform timing (§2).

Claim: the QoS profile is only worth applying if its contracts can be
tested; the paper demands validation by simulation, not decoration.

Measured: the same protocol-stack PIM carries a latency contract
("end-to-end tx completes within X ms").  The timed simulator executes
the stack with each platform's communication latencies; the contract
passes on the RTOS, fails on the message-bus middleware — a platform
choice the model itself can now justify.
"""

import pytest

from repro.platforms import (
    baremetal_platform,
    middleware_platform,
    posix_platform,
)
from repro.profiles import QoSContract, build_protocol_stack
from repro.uml import ModelFactory
from repro.validation import TimedCollaboration, measure_offered_latency

CONTRACT = QoSContract(latency_ms=1.0)     # required end-to-end bound

PLATFORMS = [baremetal_platform, posix_platform, middleware_platform]


def build_timed_stack(platform):
    factory = ModelFactory("proto")
    layers = build_protocol_stack(factory, ["App", "Tp", "Net", "Mac"])
    collab = TimedCollaboration("stack", platform=platform,
                                processing_ms=0.01)
    names = [layer.name.lower() for layer in layers]
    for name, layer in zip(names, layers):
        collab.create_object(name, layer)
    for upper, lower in zip(names, names[1:]):
        collab.link(upper, "lower", lower)
        collab.link(lower, "upper", upper)
    return collab


def measured_latency(platform):
    collab = build_timed_stack(platform)
    return measure_offered_latency(
        collab, ("app", "tx_request"), "tx_request", "rx_indication")


def test_e12_report_and_shape():
    print(f"\nE12: measured end-to-end latency vs contract "
          f"(required <= {CONTRACT.latency_ms} ms)")
    print(f"{'platform':<14} {'measured ms':>12} {'contract':>10}")
    outcomes = {}
    for factory in PLATFORMS:
        platform = factory()
        latency = measured_latency(platform)
        offered = QoSContract(latency_ms=latency)
        passed = offered.satisfies(CONTRACT)
        outcomes[platform.name] = (latency, passed)
        print(f"{platform.name:<14} {latency:>12.3f} "
              f"{'OK' if passed else 'VIOLATED':>10}")
    # shape: RT platforms meet the bound, the message bus does not
    assert outcomes["baremetal_hw"][1] is True
    assert outcomes["posix_rtos"][1] is True
    assert outcomes["msgbus_mw"][1] is False
    # and the ordering matches the platforms' comm latencies
    assert outcomes["baremetal_hw"][0] < outcomes["posix_rtos"][0] \
        < outcomes["msgbus_mw"][0]


def test_e12_static_estimate_is_sane():
    """The static estimator and the timed measurement agree on ordering."""
    from repro.profiles import estimate_path_latency_ms
    static = {}
    dynamic = {}
    for factory in PLATFORMS:
        platform = factory()
        static[platform.name] = estimate_path_latency_ms(
            platform, hops=6, per_hop_processing_ms=0.01)
        dynamic[platform.name] = measured_latency(platform)
    static_order = sorted(static, key=static.get)
    dynamic_order = sorted(dynamic, key=dynamic.get)
    assert static_order == dynamic_order


@pytest.mark.parametrize("factory", PLATFORMS,
                         ids=lambda f: f.__name__)
def test_e12_timed_run_cost(benchmark, factory):
    platform = factory()

    def run():
        return measured_latency(platform)
    latency = benchmark(run)
    assert latency is not None and latency > 0
