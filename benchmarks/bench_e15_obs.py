"""E15 — observability must be nearly free when disabled.

Claim: an instrumentation layer the team is afraid to ship is worthless.
Every instrumented call site in the toolchain gates on one module-level
flag, so with tracing off the public entry points must stay within 5%
of their uninstrumented ``_impl`` bodies; with tracing on, one pipeline
pass must yield spans and metric families covering every engine layer.

Measured: paired interleaved samples of the gated public wrappers
against their ``_impl`` bodies on the E14 workload (disabled overhead),
then a fully traced validate → transform → generate → edit pass counting
the span names and metric families recorded (instrumentation coverage).

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run a reduced size/round count.
"""

import os
import random
import statistics
import time

from repro import obs
from repro.incremental import IncrementalEngine
from workloads import make_sized_pim

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
N_CLASSES = 40 if QUICK else 200
N_ROUNDS = 30 if QUICK else 100
N_EDITS = 6 if QUICK else 16
MAX_OVERHEAD = 1.05          # public gated path <= 105% of _impl path
EPSILON_MS = 0.05            # absolute slack for sub-millisecond medians


def _paired_medians(public_fn, impl_fn, rounds):
    """Interleave the two paths, alternating which goes first each
    round, so drift and cache effects hit both equally."""
    public_fn()
    impl_fn()                   # warm both paths before timing
    public_times, impl_times = [], []
    for index in range(rounds):
        order = [(public_fn, public_times), (impl_fn, impl_times)]
        if index % 2:
            order.reverse()
        for fn, bucket in order:
            started = time.perf_counter()
            fn()
            bucket.append(time.perf_counter() - started)
    return (statistics.median(public_times) * 1e3,
            statistics.median(impl_times) * 1e3)


def test_e15_disabled_overhead_under_5_percent():
    assert not obs.is_enabled()
    root = make_sized_pim(N_CLASSES).model
    engine = IncrementalEngine(root)
    engine.revalidate()
    rng = random.Random(15)
    editable = [element for element in [root] + list(root.all_contents())
                if element.meta.find_feature("name") is not None
                and not element.meta.feature("name").many
                and isinstance(element.eget("name"), str)]
    rng.shuffle(editable)
    editable = editable[:N_EDITS]

    def edit_then(revalidate):
        for element in editable:
            element.eset("name", element.eget("name") + "~")
        revalidate()
        for element in editable:
            element.eset("name", element.eget("name")[:-1])
        revalidate()

    rows = []
    try:
        public_ms, impl_ms = _paired_medians(
            lambda: edit_then(engine.revalidate),
            lambda: edit_then(engine._revalidate_impl),
            N_ROUNDS)
        rows.append(("incremental.revalidate", public_ms, impl_ms))
    finally:
        engine.detach()

    from repro.codegen import lower_model
    from repro.codegen.lower import _lower_model_impl
    public_ms, impl_ms = _paired_medians(
        lambda: lower_model(root),
        lambda: _lower_model_impl(root, None),
        max(10, N_ROUNDS // 2))
    rows.append(("codegen.lower_model", public_ms, impl_ms))

    print("\nE15: disabled-path overhead (public gated vs _impl)")
    print(f"{'entry point':<26} {'public ms':>10} {'impl ms':>9} "
          f"{'ratio':>7}")
    for name, public_ms, impl_ms in rows:
        ratio = public_ms / impl_ms if impl_ms else 1.0
        print(f"{name:<26} {public_ms:>10.3f} {impl_ms:>9.3f} "
              f"{ratio:>6.3f}x")
        assert public_ms <= impl_ms * MAX_OVERHEAD + EPSILON_MS, (
            f"{name}: disabled overhead {ratio:.3f}x exceeds "
            f"{MAX_OVERHEAD}x (+{EPSILON_MS}ms slack)")


EXPECTED_SPANS = {
    "session.check", "session.check.structural", "session.check.invariant",
    "session.check.wellformed", "session.check.lint",
    "session.check.constraint", "ocl.invariant",
    "transform.run", "transform.create", "transform.bind",
    "codegen.lower", "codegen.print", "incremental.revalidate",
    "analysis.lint",
}

EXPECTED_METRIC_FAMILIES = {
    "mof.reads", "mof.mutations", "mof.notifications",
    "ocl.invariant.evals", "ocl.invariant.seconds",
    "transform.runs", "transform.elements.visited",
    "transform.rule.applies", "transform.rule.match.seconds",
    "transform.rule.apply.seconds",
    "codegen.lower.structs", "codegen.lower.functions",
    "codegen.print.files", "codegen.print.lines",
    "incremental.revalidations", "incremental.units.rerun",
    "incremental.units.cached",
    "analysis.lint.elements", "analysis.lint.findings",
    "session.checks", "session.diagnostics",
}


def test_e15_enabled_instrumentation_covers_every_layer():
    from repro.codegen import generate_c, lower_model
    from repro.ocl import ConstraintSet
    from repro.platforms import make_pim_to_psm, posix_platform
    from repro.session import Session
    from repro.uml import Clazz, StateMachine

    constraints = ConstraintSet("e15")
    constraints.add(Clazz, "named", "name <> ''")

    root = make_sized_pim(20 if QUICK else 60).model
    # seed one defect so the per-finding counters have something to count
    defect = Clazz(name="E15Defect")
    machine = StateMachine(name="sm")
    defect.owned_behaviors.append(machine)
    region = machine.main_region()
    alive = region.add_state("Alive")
    region.add_transition(region.add_initial(), alive)
    region.add_state("Limbo")                 # unreachable -> SM001
    root.add(defect)
    obs.REGISTRY.reset()
    sink = obs.MemorySink()
    obs.enable(sink)
    try:
        session = Session(root, constraint_sets=[constraints])
        session.check()

        platform = posix_platform()
        result = make_pim_to_psm(platform).run(root, platform=platform)
        psm = result.target_model(uri="urn:e15.psm")
        for psm_root in psm.roots:
            generate_c(lower_model(psm_root))

        engine = session.watch()
        try:
            element = next(iter(root.all_contents()))
            element.eset("name", (element.eget("name") or "") + "~")
            engine.revalidate()
        finally:
            engine.detach()
    finally:
        obs.disable()
        obs.remove_sink(sink)

    def walk(span):
        yield span.name
        for child in span.children:
            yield from walk(child)

    span_names = {name for root in sink.roots for name in walk(root)}
    families = set(obs.REGISTRY.families())

    missing_spans = EXPECTED_SPANS - span_names
    missing_metrics = EXPECTED_METRIC_FAMILIES - families
    print(f"\nE15: instrumentation coverage — {sink.span_count} spans "
          f"({len(span_names)} distinct names), "
          f"{len(families)} metric families")
    print("  spans  : " + ", ".join(sorted(span_names)))
    print("  metrics: " + ", ".join(sorted(families)))
    obs.REGISTRY.reset()
    assert not missing_spans, f"span names never recorded: {missing_spans}"
    assert not missing_metrics, \
        f"metric families never populated: {missing_metrics}"
