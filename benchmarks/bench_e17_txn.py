"""E17 — transactional editing must be cheap, rollback must be total.

Claim: model edits in a real toolchain arrive as bursts (a rule
application, a user gesture, a refactoring step) that must either land
completely or not at all.  The journal-of-inverses design
(:mod:`repro.mof.txn`) taps the notification stream the kernel already
emits, so the promise to measure is twofold: journaling inside a
transaction costs almost nothing on top of raw edits (<= 10% throughput
overhead), and an aborted transaction restores the model *every* time,
at a cost proportional to the work being undone — including under
injected kernel faults.

Measured: median wall-clock of fuzzed edit bursts raw vs inside a
committed transaction (identical seeded edit sequences, interleaved
arms to cancel drift); rollback latency against journal size; and the
recovery rate over a seeded chaos run (must be 100%).

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run a reduced round count.
"""

import os
import time

from repro.generate import EditFuzzer, demo_generator, demo_package
from repro import faults
from repro.mof import compare, transaction
from repro.mof.repository import Model
from repro.xmi import read_json, write_json

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
ROUNDS = 5 if QUICK else 15              # interleaved raw/txn pairs
EDITS_PER_ROUND = 60 if QUICK else 200
MAX_OVERHEAD = 0.35 if QUICK else 0.10   # quick mode: tiny, noisy samples
CHAOS_SEEDS = 20 if QUICK else 80
ROLLBACK_SIZES = [50, 200] if QUICK else [50, 200, 1000]


def _fresh(seed, size=40):
    generator = demo_generator(seed)
    return generator, generator.generate(size)


def _timed_burst(seed, use_txn):
    """Apply one seeded edit burst; return elapsed seconds.

    The model and fuzzer are rebuilt per call from the same seed, so the
    raw and transactional arms execute identical kernel operations."""
    generator, root = _fresh(seed)
    fuzzer = EditFuzzer(root, seed=seed + 1, generator=generator)
    started = time.perf_counter()
    if use_txn:
        with transaction():
            fuzzer.apply_random_edits(EDITS_PER_ROUND)
    else:
        fuzzer.apply_random_edits(EDITS_PER_ROUND)
    return time.perf_counter() - started


def test_e17_commit_overhead():
    # warm both paths once (imports, code objects, allocator)
    _timed_burst(999, False), _timed_burst(999, True)
    raw, txn = [], []
    for round_no in range(ROUNDS):
        raw.append(_timed_burst(round_no, False))
        txn.append(_timed_burst(round_no, True))
    # the *minimum* is the noise-robust estimator here: scheduler and
    # allocator jitter only ever add time, and both arms replay the same
    # seeded edit sequences, so best-vs-best isolates the journal cost
    raw_ms = min(raw) * 1e3
    txn_ms = min(txn) * 1e3
    overhead = txn_ms / raw_ms - 1.0
    print(f"\nE17: journaling overhead on {EDITS_PER_ROUND}-edit bursts "
          f"({ROUNDS} rounds)")
    print(f"  raw edits          : {raw_ms:8.2f} ms/burst")
    print(f"  inside transaction : {txn_ms:8.2f} ms/burst")
    print(f"  overhead           : {overhead * 100:+7.1f}%  "
          f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead <= MAX_OVERHEAD, (
        f"transactional editing costs {overhead * 100:.1f}% over raw "
        f"edits; budget is {MAX_OVERHEAD * 100:.0f}%")


def test_e17_rollback_cost_tracks_journal_size():
    print("\nE17: rollback latency vs journal size")
    print(f"{'ops':>7} {'journal':>8} {'forward ms':>11} "
          f"{'rollback ms':>12} {'ratio':>7}")
    rows = []
    for n_edits in ROLLBACK_SIZES:
        generator, root = _fresh(1000 + n_edits, size=60)
        fuzzer = EditFuzzer(root, seed=7, generator=generator)
        with transaction() as txn:
            started = time.perf_counter()
            fuzzer.apply_random_edits(n_edits)
            forward = time.perf_counter() - started
            journal = txn.op_count
            started = time.perf_counter()
            txn.rollback()
            back = time.perf_counter() - started
        rows.append((n_edits, journal, forward, back))
        print(f"{n_edits:>7} {journal:>8} {forward * 1e3:>11.2f} "
              f"{back * 1e3:>12.2f} {back / forward:>6.1f}x")
    # undoing a burst must stay in the same complexity class as doing it
    for n_edits, journal, forward, back in rows:
        assert back <= forward * 10 + 0.05, (n_edits, forward, back)
    # and scale with the journal, not worse than linearly with margin
    if len(rows) > 1:
        small, large = rows[0], rows[-1]
        ops_ratio = max(large[1] / max(small[1], 1), 1.0)
        time_ratio = large[3] / max(small[3], 1e-9)
        assert time_ratio <= ops_ratio * 8 + 8, rows


def test_e17_recovery_rate_under_chaos():
    """Every fault-aborted transaction must restore the model: the
    recovery rate over a seeded chaos sweep is 100%, with no third
    outcome (a burst either commits intact or aborts restored)."""
    packages = [demo_package()]
    aborted = committed = 0
    failures = []
    for seed in range(CHAOS_SEEDS):
        generator, root = _fresh(seed, size=25)
        model = Model(f"urn:bench:e17:{seed}")
        model.add_root(root)
        before = read_json(write_json(model), packages).roots[0]
        fuzzer = EditFuzzer(root, seed=seed, generator=generator)
        plan = faults.FaultPlan(seed=seed, rate=0.015,
                                sites=["kernel.write"])
        try:
            with faults.injected(plan):
                with transaction():
                    fuzzer.apply_random_edits(40)
            committed += 1
        except faults.InjectedFault:
            aborted += 1
            after = read_json(write_json(model), packages).roots[0]
            if not compare(before, after).identical:
                failures.append(seed)
    rate = 100.0 * (aborted - len(failures)) / max(aborted, 1)
    print(f"\nE17: chaos recovery over {CHAOS_SEEDS} seeded bursts")
    print(f"  committed intact : {committed}")
    print(f"  aborted+restored : {aborted - len(failures)}")
    print(f"  recovery rate    : {rate:.1f}% (required 100%)")
    assert aborted > 0, "chaos sweep never injected a fault"
    assert not failures, f"rollback failed to restore seeds {failures}"
