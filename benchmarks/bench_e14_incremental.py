"""E14 — incremental revalidation must make model tests continuous.

Claim: the paper demands "a well defined set of tests ... maintained as
the 'system models' are developed" — tests run at every edit, not at
phase gates.  Batch checking re-walks the whole model per keystroke and
stops scaling around 10^4 elements; the incremental engine re-runs only
the (check, element) pairs whose recorded read set the edit touched.

Measured: median wall-clock of a full from-scratch check versus an
incrementally revalidated single-element edit (renames and guard
tweaks), across model sizes up to ~10^4 elements, plus the cache-
correctness spot check that both paths report identical diagnostics.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run a reduced size/edit count.
"""

import os
import random
import statistics
import time

from repro.incremental import IncrementalEngine, report_signature
from workloads import make_sized_pim

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SIZES = [50] if QUICK else [100, 1000]      # n_classes; ~10 elements each
N_EDITS = 8 if QUICK else 24
N_BASELINE = 2 if QUICK else 3
REQUIRED_SPEEDUP = 2.0 if QUICK else 10.0   # enforced at the largest size


def _editable_elements(root, rng, count):
    """A deterministic spread of elements with a writable name slot."""
    pool = []
    for element in [root] + list(root.all_contents()):
        feature = element.meta.find_feature("name")
        if feature is not None and not feature.many \
                and isinstance(element.eget("name"), str):
            pool.append(element)
    rng.shuffle(pool)
    return pool[:count]


def test_e14_incremental_speedup():
    print("\nE14: incremental revalidation vs from-scratch checking")
    print(f"{'classes':>8} {'elements':>9} {'units':>7} {'scratch ms':>11} "
          f"{'incr ms':>9} {'speedup':>8}")
    speedups = []
    for size in SIZES:
        model = make_sized_pim(size).model
        engine = IncrementalEngine(model)
        engine.revalidate()                       # prime every cache
        n_elements = 1 + sum(1 for _ in model.all_contents())

        scratch_times = []
        for _ in range(N_BASELINE):
            started = time.perf_counter()
            scratch = engine.recompute_from_scratch()
            scratch_times.append(time.perf_counter() - started)
        scratch_ms = statistics.median(scratch_times) * 1e3

        rng = random.Random(size)
        edit_times = []
        for element in _editable_elements(model, rng, N_EDITS // 2):
            # one perturbing edit and one restoring edit, both timed
            original = element.eget("name")
            for value in (original + "~", original):
                element.eset("name", value)
                started = time.perf_counter()
                engine.revalidate()
                edit_times.append(time.perf_counter() - started)
        incr_ms = statistics.median(edit_times) * 1e3

        speedup = scratch_ms / incr_ms if incr_ms else float("inf")
        speedups.append((size, n_elements, speedup))
        print(f"{size:>8} {n_elements:>9} {engine.unit_count():>7} "
              f"{scratch_ms:>11.2f} {incr_ms:>9.3f} {speedup:>7.1f}x")

        # cache-correctness spot check at every size
        assert report_signature(engine.revalidate()) == \
            report_signature(engine.recompute_from_scratch())
        engine.detach()

    largest = speedups[-1]
    if not QUICK:
        assert largest[1] >= 10_000, \
            f"largest workload too small: {largest[1]} elements"
    assert largest[2] >= REQUIRED_SPEEDUP, (
        f"median speedup {largest[2]:.1f}x at {largest[1]} elements, "
        f"required >= {REQUIRED_SPEEDUP}x")


def test_e14_edit_cost_does_not_scale_with_model():
    """The point of dependency tracking: the cost of revalidating one
    rename tracks the touched element's unit fan-in, not model size —
    so the per-edit rerun count stays flat across sizes."""
    reruns = []
    for size in SIZES:
        model = make_sized_pim(size).model
        engine = IncrementalEngine(model)
        engine.revalidate()
        rng = random.Random(42)
        worst = 0
        for element in _editable_elements(model, rng, 4):
            element.eset("name", element.eget("name") + "!")
            engine.revalidate()
            worst = max(worst, engine.stats.last_rerun)
        reruns.append((size, worst, engine.unit_count()))
        engine.detach()
    print("\nE14: worst-case units re-run after a rename")
    for size, worst, total in reruns:
        print(f"  {size:>5} classes: {worst:>4} of {total} units")
    # re-run counts must not grow with the model (allow small jitter)
    if len(reruns) > 1:
        small, large = reruns[0][1], reruns[-1][1]
        assert large <= max(small * 3, small + 20), reruns
    # and must always be a sliver of the whole
    for size, worst, total in reruns:
        assert worst < total * 0.05 + 10, (size, worst, total)
