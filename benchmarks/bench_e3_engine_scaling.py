"""E3 — Transformation-engine scaling (paper §1, "model compilers").

Claim: the MDA story only works if transformation engines behave like
compilers — near-linear in model size.

Measured: wall time and per-element cost of the generic PIM→PSM engine
over a PIM size sweep, plus trace size (bookkeeping must not blow up).
"""

import time

import pytest

from repro.platforms import make_pim_to_psm, posix_platform
from workloads import make_sized_pim

SIZES = [50, 100, 200, 400, 800]


def test_e3_report_and_shape():
    platform = posix_platform()
    transformation = make_pim_to_psm(platform)
    print("\nE3: engine scaling (generic PIM->PSM, posix)")
    print(f"{'classes':>8} {'elements':>9} {'trace':>7} {'ms':>9} "
          f"{'us/elem':>9}")
    per_element = []
    for size in SIZES:
        pim = make_sized_pim(size).model
        started = time.perf_counter()
        result = transformation.run(pim, platform=platform)
        elapsed = time.perf_counter() - started
        micros = elapsed * 1e6 / result.elements_visited
        per_element.append(micros)
        print(f"{size:>8} {result.elements_visited:>9} "
              f"{len(result.trace):>7} {elapsed * 1e3:>9.2f} "
              f"{micros:>9.1f}")
    # compiler-like shape: per-element cost roughly flat — allow 4x drift
    # across a 16x size range (rules scan is linear in rule count).
    assert max(per_element) < 4 * min(per_element) + 50


@pytest.mark.parametrize("size", [100, 400])
def test_e3_engine_throughput(benchmark, size):
    platform = posix_platform()
    transformation = make_pim_to_psm(platform)
    pim = make_sized_pim(size).model
    result = benchmark(transformation.run, pim, platform=platform)
    assert len(result.trace) > size
