"""E16 — compiled constraints and indexed queries keep model tests hot.

Claim: the paper's method re-checks OCL constraints at every refinement
step, so constraint evaluation is the toolchain's hot path and must run
"as fast as the hardware allows" (ROADMAP north star).  Re-walking an
AST through a per-node dispatch interpreter and re-scanning the
containment forest for every ``allInstances``/``resolve`` both do work
that is invariant across evaluations.

Measured:

* median wall-clock of repeated :meth:`ConstraintSet.evaluate` over the
  same models with closure-compiled invariants (``compiled=True``, the
  default — parse+compile cached per process) versus the retained
  tree-walking interpreter (``compiled=False``).  Must show ≥5x.
* ``Model.instances_of`` latency for a fixed-size answer across growing
  models — near-flat with the extent index (O(answer)), versus the
  O(model) containment scan.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run reduced sizes with a
relaxed speedup floor (CI machines are noisy).
"""

import os
import statistics
import time

from repro.incremental import report_signature
from repro.mof import (
    M_0N,
    MInteger,
    Model,
    Model as MofModel,
    add_attribute,
    add_reference,
    define_class,
    define_package,
)
from repro.ocl import ConstraintSet
from repro.uml import Clazz
from workloads import make_sized_pim

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
PIM_SIZE = 30 if QUICK else 100             # n_classes; ~10 elements each
N_ROUNDS = 3 if QUICK else 5
REQUIRED_SPEEDUP = 3.0 if QUICK else 5.0
INDEX_SIZES = [100, 400] if QUICK else [100, 400, 1600, 6400]
N_QUERIES = 100 if QUICK else 300


def make_constraints(**kwargs):
    constraints = ConstraintSet("pim-rules", **kwargs)
    constraints.add(Clazz, "named", "name <> ''")
    constraints.add(Clazz, "attrs-typed",
                    "owned_attributes->forAll(p | p.type <> null)")
    constraints.add(Clazz, "attrs-named",
                    "owned_attributes->forAll(p | p.name.size() > 0)")
    constraints.add(Clazz, "ops-bounded",
                    "owned_operations->size() < 20")
    return constraints


def _median(run, rounds):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def test_e16_invariant_evaluation_speedup():
    """Headline: repeated invariant evaluation, compiled vs interpreted.

    The kernel alone — metaclass dispatch and scope listing are measured
    separately below — because this is what the closure compiler claims
    to speed up: `holds` on an already-selected conforming element.
    """
    compiled = make_constraints(compiled=True)
    interpreted = make_constraints(compiled=False)
    pim = make_sized_pim(PIM_SIZE).model
    elements = [pim] + list(pim.all_contents())
    fast_work = []
    slow_work = []
    for fast_inv, slow_inv in zip(compiled.invariants,
                                  interpreted.invariants):
        for element in elements:
            if element.meta.conforms_to(fast_inv.context):
                fast_work.append((fast_inv, element))
                slow_work.append((slow_inv, element))
    assert len(fast_work) == len(slow_work) and fast_work

    def run(pairs):
        def go():
            for inv, element in pairs:
                inv.holds(element)
        return go
    run(fast_work)(); run(slow_work)()      # warm-up: caches filled

    compiled_s = _median(run(fast_work), N_ROUNDS)
    interpreted_s = _median(run(slow_work), N_ROUNDS)
    speedup = interpreted_s / compiled_s
    n = len(fast_work)
    print(f"\nE16: repeated invariant evaluation, {PIM_SIZE}-class PIM, "
          f"{n} evaluations/round")
    print(f"{'mode':>12} {'ms/round':>9} {'us/eval':>9}")
    for label, seconds in (("interpreted", interpreted_s),
                           ("compiled", compiled_s)):
        print(f"{label:>12} {seconds * 1e3:>9.2f} "
              f"{seconds * 1e6 / n:>9.2f}")
    print(f"speedup: {speedup:.1f}x (floor {REQUIRED_SPEEDUP}x)")
    assert speedup >= REQUIRED_SPEEDUP


def test_e16_constraint_pass_speedup():
    """End-to-end: a full ConstraintSet pass over an indexed Model.

    Includes extent-index dispatch and report building, so the ratio is
    smaller than the kernel's; reports must be identical between modes.
    """
    compiled = make_constraints(compiled=True)
    interpreted = make_constraints(compiled=False)
    scope = MofModel("urn:bench:e16pim")
    scope.add_root(make_sized_pim(PIM_SIZE).model)

    assert (report_signature(compiled.evaluate(scope))
            == report_signature(interpreted.evaluate(scope)))
    compiled_s = _median(lambda: compiled.evaluate(scope), N_ROUNDS)
    interpreted_s = _median(lambda: interpreted.evaluate(scope), N_ROUNDS)
    speedup = interpreted_s / compiled_s
    floor = 2.0 if QUICK else 3.0
    print(f"\nE16: full constraint pass over indexed Model: "
          f"compiled {compiled_s * 1e3:.2f} ms, "
          f"interpreted {interpreted_s * 1e3:.2f} ms, "
          f"{speedup:.1f}x (floor {floor}x)")
    assert speedup >= floor


def _rare_population(n_items):
    pkg = _rare_population.pkg
    if pkg is None:
        pkg = define_package("e16extent", "urn:bench:e16extent")
        box = define_class(pkg, "Box")
        item = define_class(pkg, "Item")
        rare = define_class(pkg, "Rare", superclasses=[item])
        add_attribute(item, "n", MInteger, 0)
        add_reference(box, "items", item, containment=True,
                      multiplicity=M_0N)
        _rare_population.pkg = pkg
        _rare_population.classes = (box, item, rare)
    box, item, rare = _rare_population.classes
    root = box.instantiate()
    model = Model(f"urn:bench:e16:{n_items}")
    model.add_root(root)
    items = root.eget("items")
    for index in range(n_items):
        items.append(item.instantiate())
    rares = [rare.instantiate() for _ in range(5)]
    for element in rares:
        items.append(element)
    return model, rare, rares


_rare_population.pkg = None


def _median_query_seconds(query, rounds=5):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(N_QUERIES):
            query()
        times.append(time.perf_counter() - started)
    return statistics.median(times) / N_QUERIES


def test_e16_indexed_all_instances_is_o_answer():
    print(f"\nE16: Model.instances_of, fixed 5-element answer, "
          f"{N_QUERIES} queries/round")
    print(f"{'elements':>9} {'index us':>9} {'scan us':>9} {'ratio':>7}")
    indexed_times = []
    scan_ratio_at_largest = None
    for size in INDEX_SIZES:
        model, rare, rares = _rare_population(size)
        answer = model.instances_of(rare)       # builds + warms the index
        assert sorted(map(id, answer)) == sorted(map(id, rares))

        indexed_s = _median_query_seconds(lambda: model.instances_of(rare))
        scan_s = _median_query_seconds(
            lambda: [e for e in model.all_elements()
                     if e.meta.conforms_to(rare)],
            rounds=3)
        indexed_times.append(indexed_s)
        scan_ratio_at_largest = scan_s / indexed_s
        print(f"{size + 6:>9} {indexed_s * 1e6:>9.2f} "
              f"{scan_s * 1e6:>9.2f} {scan_ratio_at_largest:>7.1f}")

    # O(answer): indexed latency must stay near-flat while the model
    # grows by 64x (4x in quick mode); generous bound for timer noise.
    flatness = max(indexed_times) / min(indexed_times)
    print(f"indexed flatness across sizes: {flatness:.2f}x")
    assert flatness < 5.0
    # and at the largest size the scan pays the O(model) cost
    assert scan_ratio_at_largest >= (3.0 if QUICK else 10.0)


def test_e16_resolve_is_indexed():
    from repro.mof import Repository
    repo = Repository()
    model, rare, rares = _rare_population(INDEX_SIZES[-1])
    repo.add_model(model)
    eid = rares[0].eid
    reference = f"{model.uri}#{eid}"
    assert repo.resolve(reference) is rares[0]  # warms the eid entry

    resolve_s = _median_query_seconds(lambda: repo.resolve(reference),
                                      rounds=3)

    def scan_resolve():
        for element in model.all_elements():
            if element._eid == eid:
                return element
    assert scan_resolve() is rares[0]
    scan_s = _median_query_seconds(scan_resolve, rounds=3)
    print(f"\nE16: resolve over {INDEX_SIZES[-1] + 6} elements: "
          f"indexed {resolve_s * 1e6:.2f}us vs scan {scan_s * 1e6:.2f}us "
          f"({scan_s / resolve_s:.1f}x)")
    assert scan_s / resolve_s >= (2.0 if QUICK else 5.0)
