"""E8 — Gated level-wise testing stops defect propagation (paper §2).

Claim: "At each abstraction level a well defined set of tests must be
performed" — the alternative is the documentation-oriented anti-process
where defective models flow into the PSM and the code.

Measured: seed N defective PIMs (duplicate names, floating lifelines,
broken state machines); run the same two-phase process gated and
ungated; count defects that escape into the PSM.
"""

import random

import pytest

from repro.method import DevelopmentProcess, ModelTestSuite
from repro.platforms import make_pim_to_psm, posix_platform
from repro.uml import Interaction, ModelFactory, StateMachine
from workloads import make_oo_design

DEFECT_KINDS = ["duplicate-name", "floating-lifeline", "no-initial"]


def make_defective_pim(kind, seed=0):
    factory = make_oo_design(8, seed=seed)
    if kind == "duplicate-name":
        factory.clazz("C0")                       # C0 already exists
    elif kind == "floating-lifeline":
        interaction = Interaction(name="ix")
        factory.model.add(interaction)
        interaction.add_lifeline("ghost")         # no classifier
    elif kind == "no-initial":
        machine = StateMachine(name="BrokenSM")
        factory.model.add(machine)
        machine.main_region().add_state("Stuck")  # no initial pseudostate
    return factory


def make_process():
    platform = posix_platform()
    suite = (ModelTestSuite("pim-tests")
             .add_structural().add_wellformedness())
    process = DevelopmentProcess("dev")
    process.add_phase("pim", suite=suite,
                      transformation=make_pim_to_psm(platform),
                      platform=platform)
    return process


def run_campaign(enforce_gates):
    """Outcomes per defective PIM: 'blocked' at the gate, 'escaped' into
    the PSM, or 'crashed' the downstream transformation — the latter two
    both mean the defect left its abstraction level."""
    from repro.transform import TransformError
    process = make_process()
    outcomes = {"blocked": 0, "escaped": 0, "crashed": 0}
    for index, kind in enumerate(DEFECT_KINDS * 3):
        pim = make_defective_pim(kind, seed=index)
        try:
            run = process.run(pim.model, enforce_gates=enforce_gates)
        except TransformError:
            outcomes["crashed"] += 1
            continue
        outcomes["escaped" if run.completed else "blocked"] += 1
    return outcomes


def test_e8_report_and_shape():
    gated = run_campaign(enforce_gates=True)
    ungated = run_campaign(enforce_gates=False)
    total = sum(gated.values())
    print("\nE8: defect escape into the PSM (9 seeded defective PIMs)")
    print(f"{'process':<10} {'blocked':>8} {'escaped':>8} "
          f"{'crashed':>8} {'leak rate':>10}")
    for label, outcome in (("gated", gated), ("ungated", ungated)):
        leaked = outcome["escaped"] + outcome["crashed"]
        print(f"{label:<10} {outcome['blocked']:>8} "
              f"{outcome['escaped']:>8} {outcome['crashed']:>8} "
              f"{leaked / total:>10.2f}")
    # the discipline works: every defect stopped at its level
    assert gated["escaped"] == 0 and gated["crashed"] == 0
    # the anti-process leaks (or detonates on) every defect
    assert ungated["blocked"] == 0
    assert ungated["escaped"] + ungated["crashed"] == total


def test_e8_clean_model_passes_gate():
    process = make_process()
    run = process.run(make_oo_design(8).model)
    assert run.completed


def test_e8_gated_run_cost(benchmark):
    process = make_process()
    pim = make_oo_design(20).model

    def run():
        return process.run(pim)
    outcome = benchmark(run)
    assert outcome.completed
