"""E20 — the multi-tenant model server must keep concurrent editors
fast, isolated, and lossless.

The paper's workflow is a team concurrently editing and re-checking one
shared model repository.  The server's promises to measure:

* **throughput/tail** — mixed edit-txn + check traffic from 1/4/8
  concurrent editors over a 10^5-element generated repository: checks
  ride each connection's warm incremental engine, so check throughput
  and p99 latency must stay interactive while writers commit;
* **lossless conflicts** — with every editor racing on the same epoch,
  100% of edit-txns are either applied or rejected with a replayable
  ``conflict`` carrying ``current_epoch`` — the retry accounting must
  balance exactly (nothing silently dropped);
* **isolation** — a client's incremental state is its own: another
  client's checks never touch it, and edits to a different repository
  never invalidate it.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run a reduced corpus and
editor band.
"""

import os
import threading
import time

from repro.server import InProcessClient, ModelServer, RemoteError
from repro.session import Session

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
CORPUS_SIZE = 2_000 if QUICK else 100_000
EDITOR_COUNTS = [1, 2] if QUICK else [1, 4, 8]
EDITS_PER_EDITOR = 8 if QUICK else 25

_corpus_cache = {}


def _corpus_session(size=CORPUS_SIZE, seed=0):
    """One generated + repaired corpus per size, reused across scenarios."""
    if size not in _corpus_cache:
        started = time.perf_counter()
        session = Session.generate("demo", size=size, seed=seed,
                                   repair=True)
        elapsed = time.perf_counter() - started
        print(f"\n  [corpus: {session.model.size():,} elements "
              f"generated+repaired in {elapsed:.1f}s]")
        _corpus_cache[size] = session
    return _corpus_cache[size]


def _named_eids(session, limit):
    out = []
    for root in session.model.roots:
        for element in [root] + list(root.all_contents()):
            feature = element.meta.all_features().get("name")
            if feature is not None and not feature.many:
                out.append(element.eid)
            if len(out) >= limit:
                return out
    return out


def _editor_worker(server, repo, eids, tag, rounds, barrier, results):
    applied = conflicts = 0
    check_latencies = []
    with InProcessClient(server) as client:
        epoch = client.request("check", repo=repo)["epoch"]  # warm engine
        barrier.wait()
        for index in range(rounds):
            ops = [{"op": "set",
                    "element": eids[(hash(tag) + index) % len(eids)],
                    "feature": "name", "value": f"{tag}-{index}"}]
            while True:
                try:
                    outcome = client.request("edit-txn", repo=repo,
                                             base_epoch=epoch, ops=ops)
                    epoch = outcome["epoch"]
                    applied += 1
                    break
                except RemoteError as error:
                    assert error.code == "conflict", error.code
                    assert error.data["replayable"] is True
                    assert error.data["ops"] == ops
                    conflicts += 1
                    epoch = error.data["current_epoch"]
            started = time.perf_counter()
            document = client.request("check", repo=repo)
            check_latencies.append(time.perf_counter() - started)
            assert document["epoch"] >= epoch
    results[tag] = (applied, conflicts, check_latencies)


def _percentile(values, q):
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(q * (len(ranked) - 1) + 0.5))]


def test_e20_concurrent_editors_throughput_and_tail():
    session = _corpus_session()
    eids = _named_eids(session, 32)
    print("\nE20: mixed edit-txn + check traffic, shared repository "
          f"({session.model.size():,} elements, "
          f"{EDITS_PER_EDITOR} edits/editor)")
    print(f"{'editors':>8} {'applied':>8} {'conflicts':>10} "
          f"{'checks/s':>9} {'p50 ms':>8} {'p99 ms':>8} {'wall s':>7}")
    for editors in EDITOR_COUNTS:
        server = ModelServer()
        server.attach("main", session)
        state = server.repo("main")
        results = {}
        barrier = threading.Barrier(editors)
        threads = [threading.Thread(
            target=_editor_worker,
            args=(server, "main", eids, f"e{editors}w{n}",
                  EDITS_PER_EDITOR, barrier, results))
            for n in range(editors)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        server.shutdown()

        applied = sum(a for a, _, _ in results.values())
        conflicts = sum(c for _, c, _ in results.values())
        latencies = [lat for _, _, ls in results.values() for lat in ls]
        checks = len(latencies)
        print(f"{editors:>8} {applied:>8} {conflicts:>10} "
              f"{checks / wall:>9,.1f} "
              f"{_percentile(latencies, 0.50) * 1e3:>8.2f} "
              f"{_percentile(latencies, 0.99) * 1e3:>8.2f} "
              f"{wall:>7.2f}")

        # lossless conflicts: every edit-txn applied, every rejection
        # was a replayable conflict that then applied on retry
        assert applied == editors * EDITS_PER_EDITOR
        assert state.edits_applied == applied
        assert state.edits_rejected == conflicts
        assert state.epoch == applied


def test_e20_per_client_and_cross_repo_isolation():
    print("\nE20: per-client incremental state isolation")
    quiet = Session.generate("demo", size=500 if QUICK else 5_000,
                             seed=1, repair=True)
    busy = Session.generate("demo", size=500 if QUICK else 5_000,
                            seed=2, repair=True)
    server = ModelServer()
    server.attach("quiet", quiet)
    server.attach("busy", busy)
    eids = _named_eids(busy, 8)
    reader = InProcessClient(server)
    editors = [InProcessClient(server) for _ in range(3)]
    try:
        reader.request("check", repo="quiet")
        engine = reader._conn.engines["quiet"]
        baseline = (engine.stats.invalidations, engine.stats.unit_runs)
        epoch = 0
        for index, client in enumerate(editors * 4):
            while True:
                try:
                    epoch = client.request(
                        "edit-txn", repo="busy", base_epoch=epoch,
                        ops=[{"op": "set", "element": eids[index % 8],
                              "feature": "name",
                              "value": f"busy-{index}"}])["epoch"]
                    break
                except RemoteError as error:
                    epoch = error.data["current_epoch"]
            client.request("check", repo="busy")
        # cross-repo: the busy repo's edits and checks never touched the
        # reader's engine over the quiet repo
        after = (engine.stats.invalidations, engine.stats.unit_runs)
        print(f"  reader engine (quiet repo): invalidations/runs "
              f"{baseline} -> {after} across "
              f"{server.repo('busy').edits_applied} busy-repo edits")
        assert after == baseline
        assert not engine._dirty
        # per-client: every connection has its own engine object
        engines = [c._conn.engines["busy"] for c in editors]
        assert len({id(e) for e in engines}) == len(engines)
        print(f"  {len(engines)} editor connections -> "
              f"{len({id(e) for e in engines})} distinct warm engines")
    finally:
        reader.close()
        for client in editors:
            client.close()
        server.shutdown()
