"""E21 — columnar extents and multi-core sharding must make full-pass
checking scale without changing a single output byte.

The paper's acceptance workflow re-runs "a well defined set of tests"
over the whole model at every abstraction level; on 10^5-element
corpora that full pass is the bottleneck.  Two independent levers to
measure:

* **columnar single-core win** — with ``repro.mof.columns`` enabled,
  the structural and invariant families scan per-metaclass
  struct-of-arrays blocks and only re-validate flagged suspects; the
  allInstances-heavy constraint sets read whole attribute columns.
  Same machine, same corpus, fewer cache misses: measurably faster than
  the per-object walk.
* **multi-core sharding** — ``Session.check(workers=N)`` forks N
  workers over contiguous extent partitions (:mod:`repro.parallel`).
  On a ≥4-core box the 4-worker full pass must come in ≥3× faster than
  single-process.

Byte-identity of the merged diagnostic documents is asserted
unconditionally — speedup floors only on machines that can express
them (≥4 usable cores, full corpus).  Set ``REPRO_BENCH_QUICK=1``
(CI smoke) for a reduced corpus.
"""

import json
import os
import time

from repro.generate import demo_generator, demo_package
from repro.mof import Model
from repro.ocl.invariants import ConstraintSet
from repro.parallel import available_workers
from repro.session import Session

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
CORPUS_SIZE = 3_000 if QUICK else 100_000
REPEATS = 2 if QUICK else 3
WORKER_BAND = [1, 2] if QUICK else [1, 2, 4]

_corpus_cache = {}


def _corpus_root(size=CORPUS_SIZE, seed=21):
    """One *unrepaired* generated tree per size: full of diagnostics, so
    the checkers do real reporting work, not just clean scans."""
    if size not in _corpus_cache:
        started = time.perf_counter()
        root = demo_generator(seed).generate(size)
        elapsed = time.perf_counter() - started
        count = 1 + sum(1 for _ in root.all_contents())
        print(f"\n  [corpus: {count:,} elements generated in {elapsed:.1f}s]")
        _corpus_cache[size] = root
    return _corpus_cache[size]


def _session(root, **kwargs):
    previous = getattr(root, "_model", None)
    if previous is not None:
        previous.remove_root(root)          # corpus is shared across tests
    model = Model("urn:bench:e21")
    model.add_root(root)
    pkg = demo_package()
    constraints = ConstraintSet("bulk")
    constraints.add(pkg.classifier("GBook"), "pages-bounded",
                    "self.pages < 100000")
    constraints.add(pkg.classifier("GLibrary"), "all-books-paged",
                    "GBook.allInstances()->forAll(b | b.pages >= 0)")
    return Session(model, constraint_sets=[constraints], **kwargs)


def _doc(session, **kwargs):
    return json.dumps(
        session.check(["structural", "invariant", "constraint"],
                      **kwargs).to_json(), sort_keys=True)


def _timed(fn, repeats=REPEATS):
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_e21_columnar_single_core_win():
    root = _corpus_root()
    plain = _session(root)
    object_time, object_doc = _timed(lambda: _doc(plain))

    columnar = _session(root, columnar=True)
    _doc(columnar)                           # warm the column blocks
    column_time, column_doc = _timed(lambda: _doc(columnar))

    speedup = object_time / column_time if column_time else float("inf")
    print(f"\n  [columnar: object {object_time*1000:.0f}ms vs columns "
          f"{column_time*1000:.0f}ms -> {speedup:.2f}x]")
    assert column_doc == object_doc          # not one byte different
    if not QUICK:
        # the floor is deliberately modest: the win concentrates in the
        # clean majority (suspect scans), and unrepaired corpora keep
        # the exact re-validation busy too
        assert speedup >= 1.2, (
            f"columnar pass not faster: {speedup:.2f}x")


def test_e21_sharded_full_pass_scaling():
    root = _corpus_root()
    session = _session(root)
    times = {}
    serial_doc = None
    for workers in WORKER_BAND:
        kwargs = {} if workers == 1 else {"workers": workers}
        elapsed, document = _timed(lambda: _doc(session, **kwargs))
        times[workers] = elapsed
        if workers == 1:
            serial_doc = document
        else:
            assert document == serial_doc    # byte-identical merge
        print(f"  [workers={workers}: {elapsed*1000:.0f}ms]")

    cores = available_workers()
    if not QUICK and 4 in times and cores >= 4:
        speedup = times[1] / times[4]
        print(f"  [4-worker speedup: {speedup:.2f}x on {cores} cores]")
        assert speedup >= 3.0, (
            f"4 workers only {speedup:.2f}x faster on {cores} cores")
    elif 4 in WORKER_BAND and cores < 4:
        print(f"  [speedup floor skipped: only {cores} usable core(s)]")


def test_e21_columnar_plus_workers_compose():
    root = _corpus_root(1_000 if QUICK else 20_000)
    serial = _doc(_session(root))
    combined = _session(root, columnar=True)
    assert _doc(combined) == serial
    assert _doc(combined, workers=2) == serial
