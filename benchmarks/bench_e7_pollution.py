"""E7 — Detecting domain/platform pollution (paper §2).

Claim: "Separation of 'domain' and 'platform' is the key to success here
and avoiding polluting either model with information from the other."
A methodology tool must therefore *detect* pollution reliably.

Measured: precision/recall of the purity checker against models with a
known seeded pollution rate, plus checker throughput.
"""

import random

import pytest

from repro.method import check_domain_purity
from repro.platforms import posix_platform
from workloads import make_oo_design

RATES = [0.0, 0.1, 0.25, 0.5]
N_CLASSES = 40


def seed_pollution(factory, rate, platform, seed=5):
    """Rename a fraction of classes/attrs with platform vocabulary.
    Returns the set of polluted element ids (ground truth)."""
    rng = random.Random(seed)
    dirty_words = ["int32_t", "mqueue", "pthread", "shm"]
    polluted = set()
    classes = [c for c in factory.model.packaged_elements
               if hasattr(c, "owned_attributes")]
    for cls in classes:
        if rng.random() < rate:
            cls.name = f"{cls.name}_{rng.choice(['thread', 'queue'])}"
            polluted.add(id(cls))
    return polluted


@pytest.mark.parametrize("rate", RATES)
def test_e7_detection_quality(rate):
    platform = posix_platform()
    factory = make_oo_design(N_CLASSES)
    truth = seed_pollution(factory, rate, platform)
    report = check_domain_purity(factory.model, [platform])
    found = {id(e) for e in report.polluted_elements()}
    true_positives = len(found & truth)
    precision = true_positives / len(found) if found else 1.0
    recall = true_positives / len(truth) if truth else 1.0
    print(f"\nE7: rate={rate:.2f} seeded={len(truth)} found={len(found)} "
          f"precision={precision:.2f} recall={recall:.2f}")
    assert recall == 1.0                       # every seeded leak found
    assert precision == 1.0                    # nothing clean accused
    if rate == 0.0:
        assert report.clean


def test_e7_ratio_tracks_rate():
    platform = posix_platform()
    ratios = []
    for rate in RATES:
        factory = make_oo_design(N_CLASSES)
        seed_pollution(factory, rate, platform)
        report = check_domain_purity(factory.model, [platform])
        ratios.append(report.pollution_ratio)
    print("\nE7: pollution ratio by seeded rate:",
          [f"{r:.3f}" for r in ratios])
    assert ratios == sorted(ratios)            # monotone in seeded rate


def test_e7_checker_throughput(benchmark):
    platform = posix_platform()
    factory = make_oo_design(120)
    report = benchmark(check_domain_purity, factory.model, [platform])
    assert report.elements_scanned > 500
