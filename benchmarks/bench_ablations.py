"""Ablations for the design decisions called out in DESIGN.md.

A1 — descriptor-based reflection (static Python classes) vs dynamic-only
     elements: same model shape, kernel access costs compared.
A2 — two-phase rule execution vs naive single-phase: the single-phase
     engine needs a retry queue for forward references; we count the
     retries the two-phase design makes unnecessary.
A3 — shared IR between printers vs per-target lowering: cost of adding a
     second and third code target.
"""

import random
import time

import pytest

from repro.codegen import (
    generate_c,
    generate_java,
    generate_systemc,
    lower_model,
)
from repro.mof import (
    Attribute,
    Element,
    M_0N,
    MetaPackage,
    MInteger,
    MString,
    PackageBuilder,
    Reference,
)
from repro.platforms import make_pim_to_psm, posix_platform
from repro.uml import Clazz, ModelFactory
from workloads import make_sized_pim

# ---------------------------------------------------------------------------
# A1 — static (descriptor) vs dynamic (lookup) elements
# ---------------------------------------------------------------------------

DYN = (PackageBuilder("abl")
       .clazz("DNode").attr("name", MString).attr("level", MInteger)
       .ref("children", "DNode", containment=True, multiplicity=M_0N)
       .build())
DNode = DYN.classifier("DNode")

ABL_STATIC = MetaPackage("abl_static")


class SNode(Element):
    """The static (descriptor-declared) twin of DNode — same features."""

    _mof_package = ABL_STATIC
    name = Attribute(MString)
    level = Attribute(MInteger)
    children = Reference("SNode", containment=True, multiplicity=M_0N)


def build_dynamic_tree(n: int):
    root = DNode(name="root", level=0)
    for i in range(n):
        child = DNode(name=f"c{i}", level=1)
        root.children.append(child)
        for j in range(3):
            child.children.append(DNode(name=f"c{i}_{j}", level=2))
    return root


def build_static_tree(n: int):
    root = SNode(name="root", level=0)
    for i in range(n):
        child = SNode(name=f"c{i}", level=1)
        root.children.append(child)
        for j in range(3):
            child.children.append(SNode(name=f"c{i}_{j}", level=2))
    return root


def _touch_all(root) -> int:
    """Traverse and read via reflection AND native attribute access."""
    total = 0
    for element in root.all_contents():
        total += len(element.eget("name") or "")
        total += element.level if hasattr(element, "level") \
            or element.meta.find_feature("level") else 0
    return total


def test_a1_report():
    n = 150
    dynamic_root = build_dynamic_tree(n)
    static_root = build_static_tree(n)
    rounds = 20

    started = time.perf_counter()
    for _ in range(rounds):
        _touch_all(dynamic_root)
    dynamic_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        _touch_all(static_root)
    static_s = time.perf_counter() - started

    print(f"\nA1: reflective traversal+read of ~{4 * n} elements "
          f"x{rounds}")
    print(f"  static (descriptor) elements: {static_s * 1e3:8.2f} ms")
    print(f"  dynamic (lookup) elements:    {dynamic_s * 1e3:8.2f} ms")
    print(f"  ratio dynamic/static:         "
          f"{dynamic_s / static_s:8.2f}x")
    # both must be usable; dynamic may be slower but within an order
    assert dynamic_s < 20 * static_s + 0.05


def test_a1_static_attribute_access(benchmark):
    root = build_static_tree(100)
    benchmark(_touch_all, root)


def test_a1_dynamic_attribute_access(benchmark):
    root = build_dynamic_tree(100)
    benchmark(_touch_all, root)


# ---------------------------------------------------------------------------
# A2 — two-phase vs single-phase-with-retry
# ---------------------------------------------------------------------------

def shuffled_class_chain(n: int, seed: int = 13):
    """n classes where class i references class (i+1) — declared in a
    shuffled order so forward references abound."""
    rng = random.Random(seed)
    factory = ModelFactory("chainmdl")
    classes = [factory.clazz(f"K{i}") for i in range(n)]
    order = list(range(n))
    rng.shuffle(order)
    # shuffle the package's child order to randomise visit order
    for index in order:
        factory.model.packaged_elements.move(
            len(factory.model.packaged_elements) - 1, classes[index])
    for i in range(n - 1):
        factory.associate(classes[i], classes[i + 1], end_b=f"next{i}")
    return factory, classes


def single_phase_transform(model):
    """The naive engine: create AND bind in one pass, retrying elements
    whose dependencies don't exist yet.  Returns (#images, #retries)."""
    images = {}
    retries = 0
    pending = [e for e in model.all_members()
               if isinstance(e, Clazz)]
    while pending:
        progressed = False
        next_round = []
        for cls in pending:
            deps = [p.type for p in cls.owned_attributes
                    if isinstance(p.type, Clazz)]
            if all(id(d) in images for d in deps):
                images[id(cls)] = Clazz(name=cls.name)
                progressed = True
            else:
                next_round.append(cls)
        if not progressed:
            raise RuntimeError("dependency cycle: single-phase stuck")
        retries += len(next_round)
        pending = next_round
    return images, retries


def test_a2_report():
    from repro.transform import Transformation, rule

    factory, classes = shuffled_class_chain(60)

    @rule(Clazz)
    def copy_class(source, ctx):
        return Clazz(name=source.name)

    @copy_class.binder
    def bind(source, target, ctx):
        for prop in source.owned_attributes:
            if isinstance(prop.type, Clazz):
                ctx.resolve(prop.type)       # must exist — and does
    two_phase = Transformation("two-phase", [copy_class])
    result = two_phase.run(factory.model)
    assert len(result.trace) == 60

    _, retries = single_phase_transform(factory.model)
    print("\nA2: forward references over a 60-class shuffled chain")
    print(f"  two-phase engine retries:     0 (by construction)")
    print(f"  single-phase engine retries:  {retries}")
    assert retries > 60          # quadratic-ish retry churn


def test_a2_two_phase_cost(benchmark):
    from repro.transform import Transformation, rule
    factory, _ = shuffled_class_chain(60)

    @rule(Clazz)
    def copy_class(source, ctx):
        return Clazz(name=source.name)
    transformation = Transformation("t", [copy_class])
    result = benchmark(transformation.run, factory.model)
    assert len(result.trace) == 60


def test_a2_single_phase_cost(benchmark):
    factory, _ = shuffled_class_chain(60)
    images, _ = benchmark(single_phase_transform, factory.model)
    assert len(images) == 60


# ---------------------------------------------------------------------------
# A3 — shared IR vs per-target lowering
# ---------------------------------------------------------------------------

def test_a3_report():
    platform = posix_platform()
    psm = make_pim_to_psm(platform).run(
        make_sized_pim(60).model, platform=platform).primary_root
    printers = [generate_c, generate_java, generate_systemc]

    started = time.perf_counter()
    code = lower_model(psm)
    for printer in printers:
        printer(code)
    shared_s = time.perf_counter() - started

    started = time.perf_counter()
    for printer in printers:
        printer(lower_model(psm))        # re-lower per target
    separate_s = time.perf_counter() - started

    print("\nA3: three targets, shared IR vs per-target lowering")
    print(f"  shared IR:          {shared_s * 1e3:8.2f} ms")
    print(f"  re-lower per target:{separate_s * 1e3:8.2f} ms")
    print(f"  saving:             {separate_s / shared_s:8.2f}x")
    assert shared_s < separate_s
