"""E4 — Emergent behaviour and use cases as tests (paper §1).

Claim: "global behaviour ... is emergent from the particular
collaborations and configurations of objects and their relationships
rather than being specified explicitly for the whole system"; use cases
are tests over that emergent behaviour.

Measured: (a) the same classes wired differently produce different global
behaviour (the scenario passes only for the right configuration — so the
behaviour lives in the links, not in any one class); (b) scenario replay
cost.
"""

import pytest

from repro.uml import ModelFactory, StateMachine
from repro.validation import Collaboration, Scenario


def build_classes():
    factory = ModelFactory("pipeline")
    stage = factory.clazz("Stage", attrs={"seen": "Integer"},
                          is_active=True)
    factory.associate(stage, stage, end_b="next", end_a="prev")
    machine = StateMachine(name="StageSM")
    stage.owned_behaviors.append(machine)
    stage.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    ready = region.add_state("Ready")
    region.add_transition(initial, ready)
    region.add_transition(ready, ready, trigger="item", kind="internal",
                          effect="seen := seen + 1; send next.item()")
    return factory, stage


def wire(stage, order):
    collab = Collaboration("pipeline")
    for name in order:
        collab.create_object(name, stage)
    for upstream, downstream in zip(order, order[1:]):
        collab.link(upstream, "next", downstream)
    return collab


SCENARIO = Scenario(
    "flows-a-b-c",
    [("a", "b", "item"), ("b", "c", "item")],
    stimuli=[("a", "item")])


def test_e4_behaviour_lives_in_the_configuration():
    _, stage = build_classes()
    print("\nE4: same classes, different configurations")
    outcomes = {}
    for label, order in (("a->b->c", ["a", "b", "c"]),
                         ("a->c->b", ["a", "c", "b"]),
                         ("b->a->c", ["b", "a", "c"])):
        result = SCENARIO.run(wire(stage, order))
        outcomes[label] = result.passed
        print(f"  wiring {label:<8} scenario 'flows-a-b-c': "
              f"{'PASS' if result.passed else 'FAIL'}")
    assert outcomes["a->b->c"] is True
    assert outcomes["a->c->b"] is False
    assert outcomes["b->a->c"] is False


def test_e4_link_mutation_breaks_use_case():
    """Removing one relationship silently kills the use case — which the
    scenario test catches."""
    _, stage = build_classes()
    collab = wire(stage, ["a", "b", "c"])
    del collab.objects["b"].links["next"]     # sabotage the configuration
    result = SCENARIO.run(collab)
    assert not result.passed
    assert ("b", "c", "item") in result.missing


def test_e4_no_single_class_specifies_the_flow():
    """Every stage runs the identical machine: the ordering is pure
    configuration."""
    _, stage = build_classes()
    collab = wire(stage, ["a", "b", "c"])
    machines = {name: obj.clazz.state_machine()
                for name, obj in collab.objects.items()}
    assert len({id(machine) for machine in machines.values()}) == 1


def test_e4_scenario_replay_cost(benchmark):
    _, stage = build_classes()

    def replay():
        return SCENARIO.run(wire(stage, ["a", "b", "c"]))
    result = benchmark(replay)
    assert result.passed
