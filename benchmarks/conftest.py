"""Benchmark-suite configuration: make the sibling workloads module
importable and print a header identifying the experiment mapping."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
