"""Benchmark-suite configuration: make the sibling workloads module
(and the shared model generators in tests/) importable and print a
header identifying the experiment mapping."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "tests"))
