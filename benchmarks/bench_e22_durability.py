"""E22 — durability must be near-free, recovery fast, retries bounded.

The durable server (``repro.server.durability``) fsyncs every committed
edit-txn to a per-repo write-ahead log before acknowledging the epoch
bump.  The promises to measure:

* **WAL overhead** — the E20 editor workload (edit-txn + warm
  incremental check per round) with the WAL on vs. off: the fsync must
  amortize against real checking work to <=10% wall overhead on the
  full-size corpus (quick mode uses a corpus small enough that the
  fsync is a visible fraction of a ~3 ms round, so it only sanity-bounds
  the ratio);
* **recovery time vs. log length** — replaying K logged txns at server
  start must scale linearly in K and stay interactive at
  hundreds of records, ending byte-identical to the pre-crash state;
* **retry tail latency** — a ``RetryPolicy`` client facing 5% injected
  transient network faults must converge on every request with a
  bounded p99 (backoff sleeps, not timeouts, dominate the tail).

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) to run reduced corpora and
round counts.
"""

import os
import shutil
import tempfile
import time

from repro import faults
from repro.server import (InProcessClient, ModelServer, RemoteError,
                          RetryPolicy, TcpClient, TransportError, serve_tcp)
from repro.session import Session, canonical_check_document

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
CORPUS_SIZE = 2_000 if QUICK else 20_000
WORKLOAD_ROUNDS = 40 if QUICK else 120
LOG_LENGTHS = [20, 80] if QUICK else [50, 200, 800]
RETRY_REQUESTS = 40 if QUICK else 200
# quick corpora are small enough that a ~0.2 ms fsync is a visible
# fraction of each round; the 10% acceptance target is for full size
OVERHEAD_CEILING = 0.50 if QUICK else 0.10


def _named_eids(session, limit):
    out = []
    for root in session.model.roots:
        for element in [root] + list(root.all_contents()):
            feature = element.meta.all_features().get("name")
            if feature is not None and not feature.many:
                out.append(element.eid)
            if len(out) >= limit:
                return out
    return out


def _percentile(values, q):
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(q * (len(ranked) - 1) + 0.5))]


def _editor_rounds(server, rounds):
    """E20's editor loop: edit-txn + warm incremental check per round."""
    eids = _named_eids(server.repo("main").session, 32)
    latencies = []
    with InProcessClient(server) as client:
        client.request("check", repo="main")  # warm the engine
        for index in range(rounds):
            ops = [{"op": "set", "element": eids[index % len(eids)],
                    "feature": "name", "value": f"bench-{index}"}]
            started = time.perf_counter()
            client.request("edit-txn", repo="main", base_epoch=index,
                           ops=ops)
            client.request("check", repo="main")
            latencies.append(time.perf_counter() - started)
    return latencies


def test_e22_wal_overhead_on_editor_workload():
    print(f"\nE22: WAL on/off, E20 editor workload "
          f"({CORPUS_SIZE:,} elements, {WORKLOAD_ROUNDS} rounds)")
    print(f"{'wal':>6} {'rounds/s':>9} {'p50 ms':>8} {'p99 ms':>8} "
          f"{'wall s':>7}")
    walls = {}
    for wal in (False, True):
        wal_dir = tempfile.mkdtemp(prefix="repro-bench-wal-") if wal \
            else None
        server = ModelServer(wal_dir=wal_dir)
        session = Session.generate("demo", size=CORPUS_SIZE, seed=3,
                                   repair=True)
        server.attach("main", session)
        latencies = _editor_rounds(server, WORKLOAD_ROUNDS)
        state = server.repo("main")
        # lossless: every acknowledged txn bumped the epoch, and with
        # the WAL on every one of them was logged before the ack
        assert state.epoch == WORKLOAD_ROUNDS
        if wal:
            stats = state.wal.stats()
            assert stats["appended"] == WORKLOAD_ROUNDS
        server.shutdown()
        if wal_dir:
            shutil.rmtree(wal_dir, ignore_errors=True)
        walls[wal] = sum(latencies)
        print(f"{'on' if wal else 'off':>6} "
              f"{len(latencies) / walls[wal]:>9,.1f} "
              f"{_percentile(latencies, 0.50) * 1e3:>8.2f} "
              f"{_percentile(latencies, 0.99) * 1e3:>8.2f} "
              f"{walls[wal]:>7.2f}")
    overhead = walls[True] / walls[False] - 1.0
    print(f"  WAL overhead: {overhead:+.1%} "
          f"(ceiling {OVERHEAD_CEILING:.0%}{' quick' if QUICK else ''})")
    assert overhead <= OVERHEAD_CEILING


def test_e22_recovery_time_vs_log_length():
    size = 1_000 if QUICK else 5_000
    print(f"\nE22: recovery time vs. WAL length ({size:,} elements)")
    print(f"{'txns':>6} {'recover ms':>11} {'ms/txn':>8} {'identical':>10}")
    for txns in LOG_LENGTHS:
        wal_dir = tempfile.mkdtemp(prefix="repro-bench-recover-")
        # compaction off: the whole history stays in the log, so the
        # restart below replays exactly `txns` records
        server = ModelServer(wal_dir=wal_dir, wal_compact_every=10 ** 6)
        session = Session.generate("demo", size=size, seed=5, repair=True)
        server.attach("main", session)
        eids = _named_eids(session, 32)
        with InProcessClient(server) as client:
            for index in range(txns):
                client.request("edit-txn", repo="main", base_epoch=index,
                               ops=[{"op": "set",
                                     "element": eids[index % len(eids)],
                                     "feature": "name",
                                     "value": f"r-{index}"}])
        before = canonical_check_document(
            server.repo("main").session.check().to_json())
        server.shutdown()

        started = time.perf_counter()
        recovered = ModelServer(wal_dir=wal_dir)
        elapsed = time.perf_counter() - started
        state = recovered.repo("main")
        after = canonical_check_document(state.session.check().to_json())
        identical = after == before and state.epoch == txns
        print(f"{txns:>6} {elapsed * 1e3:>11.1f} "
              f"{elapsed / txns * 1e3:>8.3f} {str(identical):>10}")
        assert identical
        assert recovered.recovered == ["main"]
        recovered.shutdown()
        shutil.rmtree(wal_dir, ignore_errors=True)


def test_e22_retry_tail_latency_under_faults():
    rate = 0.05
    session = Session.generate("demo", size=1_000 if QUICK else 5_000,
                               seed=9, repair=True)
    server = ModelServer()
    server.attach("main", session)
    eids = _named_eids(session, 32)
    tcp = serve_tcp(server, "127.0.0.1", 0)
    print(f"\nE22: retry tail latency, {rate:.0%} injected net faults "
          f"({RETRY_REQUESTS} edit-txns)")
    try:
        policy = RetryPolicy(attempts=10, base_delay=0.01, max_delay=0.1)
        latencies = []
        plan = faults.FaultPlan(seed=1234, rate=rate,
                                sites=["net.read", "net.write"])
        with faults.injected(plan), \
                TcpClient("127.0.0.1", tcp.address[1], timeout=5.0,
                          retry=policy) as client:
            epoch = 0
            for index in range(RETRY_REQUESTS):
                ops = [{"op": "set", "element": eids[index % len(eids)],
                        "feature": "name", "value": f"retry-{index}"}]
                started = time.perf_counter()
                try:
                    epoch = client.request("edit-txn", repo="main",
                                           base_epoch=epoch,
                                           ops=ops)["epoch"]
                except RemoteError as error:
                    # a lost ack means the replayed txn conflicts; the
                    # policy refreshed base_epoch, so this is the rare
                    # duplicate-apply landing: resync and carry on
                    assert error.code == "conflict"
                    epoch = error.data["current_epoch"]
                latencies.append(time.perf_counter() - started)
        state = server.repo("main")
        print(f"  {len(latencies)} requests, {policy.retried} retries, "
              f"{plan.fault_count} faults fired")
        print(f"  p50 {_percentile(latencies, 0.50) * 1e3:.2f} ms   "
              f"p99 {_percentile(latencies, 0.99) * 1e3:.2f} ms   "
              f"max {max(latencies) * 1e3:.2f} ms")
        # every request converged (no TransportError escaped the
        # policy), and the books balance on the server
        assert len(latencies) == RETRY_REQUESTS
        assert state.epoch == state.edits_applied
        assert state.epoch >= RETRY_REQUESTS - policy.retried
    except TransportError as error:  # pragma: no cover - diagnostics
        raise AssertionError(
            f"retry policy failed to converge: {error}") from error
    finally:
        tcp.shutdown()
