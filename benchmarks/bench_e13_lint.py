"""E13 — model lint must be cheap enough to gate every phase (paper §4).

Claim: the paper's process requires "a well defined set of tests ...
maintained as the 'system models' are developed" at every abstraction
level.  A static lint pass is the cheapest such test — but only earns a
place inside the phase gate if it stays near-linear in model size and
its findings are trustworthy (no false positives to train engineers to
ignore it).

Measured: lint throughput across model sizes spanning ~10^2 to ~10^4
elements, and precision/recall over a population of seeded defects.
"""

import time

import pytest

from repro.analysis import LintConfig, ModelLinter, lint_transformation
from repro.uml import StateMachine
from repro.uml.activities import Activity
from workloads import make_sized_pim

SIZES = [10, 50, 200, 1000]        # n_classes; ~10 elements per class


def test_e13_throughput_report_and_shape():
    print("\nE13: lint throughput across model sizes")
    print(f"{'classes':>8} {'elements':>9} {'ms':>9} {'us/elem':>9} "
          f"{'rules':>6}")
    per_element = []
    for size in SIZES:
        model = make_sized_pim(size).model
        linter = ModelLinter()
        started = time.perf_counter()
        report = linter.lint(model)
        elapsed = time.perf_counter() - started
        assert report.ok, report.render()
        micros = elapsed * 1e6 / report.elements_scanned
        per_element.append(micros)
        print(f"{size:>8} {report.elements_scanned:>9} "
              f"{elapsed * 1e3:>9.2f} {micros:>9.1f} "
              f"{report.rules_run:>6}")
    assert per_element, "no sizes measured"
    # the span covers two orders of magnitude of model size
    smallest = make_sized_pim(SIZES[0]).model
    largest = make_sized_pim(SIZES[-1]).model
    count = lambda m: 1 + sum(1 for _ in m.all_contents())  # noqa: E731
    assert count(smallest) >= 100
    assert count(largest) >= 10_000
    # near-linear: per-element cost must not blow up with model size
    assert max(per_element) < 5 * min(per_element) + 100


# ---------------------------------------------------------------------------
# Precision / recall on seeded defects
# ---------------------------------------------------------------------------


def seed_defects(factory, n_each=5):
    """Plant *n_each* defects of every kind; return the expected codes."""
    expected = []
    for index in range(n_each):
        cls = factory.clazz(f"Defective{index}",
                            attrs={"level": "Integer"})

        machine = StateMachine(name=f"Defective{index}SM")
        cls.owned_behaviors.append(machine)
        region = machine.main_region()
        initial = region.add_initial()
        alive = region.add_state("Alive")
        region.add_transition(initial, alive)
        # SM001: a state no transition reaches
        region.add_state(f"Dead{index}")
        expected.append("SM001")
        # SM002: a contradiction in the guard
        region.add_transition(alive, alive, trigger="tick",
                              guard="level > 5 and level < 2")
        expected.append("SM002")
        # SM003: overlapping guards on one trigger
        region.add_transition(alive, alive, trigger="go",
                              guard="level >= 10")
        region.add_transition(alive, alive, trigger="go",
                              guard="level >= 0")
        expected.append("SM003")
        # OCL001: a typo'd attribute in a guard
        region.add_transition(alive, alive, trigger="poke",
                              guard="levell > 3")
        expected.append("OCL001")

        # ACT001: a join fed sequentially (never two tokens)
        activity = Activity(name=f"Defective{index}Act")
        cls.owned_behaviors.append(activity)
        start = activity.add_initial()
        first = activity.add_action("first")
        second = activity.add_action("second")
        join = activity.add_join()
        final = activity.add_final()
        activity.flow(start, first)
        activity.flow(first, second)
        activity.flow(first, join)
        activity.flow(second, join)
        activity.flow(join, final)
        expected.append("ACT001")
    return expected


def test_e13_precision_and_recall():
    factory = make_sized_pim(50)
    base = ModelLinter().lint(factory.model)
    assert base.ok, "workload must lint clean before seeding"

    expected = seed_defects(factory, n_each=5)
    report = ModelLinter().lint(factory.model)

    flagged = [d for d in report.diagnostics
               if d.severity.value == "error"]
    relevant = {}
    for code in expected:
        relevant[code] = relevant.get(code, 0) + 1
    found = {}
    for diagnostic in flagged:
        found[diagnostic.code] = found.get(diagnostic.code, 0) + 1

    true_positives = sum(min(found.get(code, 0), wanted)
                         for code, wanted in relevant.items())
    recall = true_positives / len(expected)
    precision = true_positives / max(len(flagged), 1)

    print("\nE13: precision/recall on seeded defects")
    print(f"{'code':>8} {'seeded':>7} {'found':>6}")
    for code in sorted(relevant):
        print(f"{code:>8} {relevant[code]:>7} {found.get(code, 0):>6}")
    print(f"seeded={len(expected)} flagged={len(flagged)} "
          f"precision={precision:.2f} recall={recall:.2f}")

    assert recall == 1.0, f"missed defects: recall={recall:.2f}"
    assert precision == 1.0, (
        f"false positives among errors: precision={precision:.2f}")


@pytest.mark.parametrize("disabled,expect_faster", [
    (frozenset(), False),
    (frozenset({"uml-wellformed", "invariant-typecheck",
                "guard-typecheck"}), True),
])
def test_e13_config_prunes_work(disabled, expect_faster):
    """Disabling rule families must actually skip their work."""
    model = make_sized_pim(200).model
    linter = ModelLinter(config=LintConfig(disabled=set(disabled)))
    report = linter.lint(model)
    assert report.ok
    full_rules = ModelLinter().lint(model).rules_run
    if expect_faster:
        assert report.rules_run < full_rules
    else:
        assert report.rules_run == full_rules


def test_e13_transformation_lint_is_cheap():
    from repro.platforms import make_pim_to_psm, posix_platform
    transformation = make_pim_to_psm(posix_platform())
    started = time.perf_counter()
    report = lint_transformation(transformation)
    elapsed = time.perf_counter() - started
    print(f"\nE13: PIM->PSM rule-set lint: {len(report.diagnostics)} "
          f"finding(s) in {elapsed * 1e3:.2f} ms")
    assert elapsed < 1.0
    assert report.ok, report.render()
