"""E1 — Functional vs OO decomposition (paper §1).

Claim: use-case-driven functional decomposition yields coupling that
"tends to be very high if not total", classes that "contain a single
function", and "very deep inheritance hierarchies", while proper OO
decomposition does not.

The bench sweeps design size, measures both styles with the metrics
suite, prints the series, and asserts the ordering the paper predicts.
The timed kernel is the metric computation itself (it must scale to
real models).
"""

import pytest

from repro.validation import compute_model_metrics
from workloads import make_functional_design, make_oo_design

SIZES = [10, 20, 40, 80]


def series():
    rows = []
    for size in SIZES:
        oo = compute_model_metrics(make_oo_design(size).model)
        functional = compute_model_metrics(
            make_functional_design(size).model)
        rows.append((size, oo, functional))
    return rows


def test_e1_report_and_shape():
    rows = series()
    print("\nE1: decomposition style vs design metrics")
    print(f"{'N':>4} | {'coupling oo':>12} {'coupling fn':>12} | "
          f"{'1-op oo':>8} {'1-op fn':>8} | {'maxDIT oo':>9} "
          f"{'maxDIT fn':>9}")
    for size, oo, functional in rows:
        print(f"{size:>4} | {oo.coupling_density:>12.3f} "
              f"{functional.coupling_density:>12.3f} | "
              f"{oo.single_operation_ratio:>8.2f} "
              f"{functional.single_operation_ratio:>8.2f} | "
              f"{oo.max_dit:>9} {functional.max_dit:>9}")
    for size, oo, functional in rows:
        # the paper's predicted shape, at every size
        assert functional.coupling_density > 0.9
        assert oo.coupling_density < 0.5 * functional.coupling_density
        assert functional.single_operation_ratio == 1.0
        assert oo.single_operation_ratio < 0.5
        assert functional.max_dit == size - 1
        assert oo.max_dit <= 5


@pytest.mark.parametrize("style,builder", [
    ("oo", make_oo_design),
    ("functional", make_functional_design),
])
def test_e1_metric_throughput(benchmark, style, builder):
    model = builder(SIZES[-1]).model
    metrics = benchmark(compute_model_metrics, model)
    assert metrics.class_count == SIZES[-1]
