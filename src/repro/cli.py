"""Command-line interface: the toolchain over serialized models.

::

    python -m repro validate  model.xmi
    python -m repro lint      model.xmi
    python -m repro watch     model.xmi
    python -m repro metrics   model.xmi
    python -m repro check     model.xmi --platform posix
    python -m repro transform model.xmi --platform posix -o psm.xmi
    python -m repro generate  psm.xmi --lang c -o out/
    python -m repro schedule  model.xmi
    python -m repro diff      a.xmi b.xmi
    python -m repro convert   model.xmi -o model.json

Model files are the XMI-style XML (``.xmi``/``.xml``) or JSON (``.json``)
dialects of :mod:`repro.xmi`; all bundled profiles are available for
stereotype resolution.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import DEFAULT_REGISTRY, LintConfig, ModelLinter
from .codegen import generate_c, generate_java, generate_systemc, \
    lower_model
from .method import check_domain_purity
from .platforms.footprint import estimate_footprint
from .mof import Model, compare, validate_tree
from .mof.repository import Model as MofModel
from .platforms import (
    baremetal_platform,
    make_pim_to_psm,
    middleware_platform,
    posix_platform,
)
from .profiles import ETSI_CS, QOS_FT, SPT, SYSML, TESTING, analyze_model
from .uml import UML, StateMachine, check_model, class_diagram, \
    statemachine_diagram
from .validation import (
    compute_model_metrics,
    generate_transition_tests,
    quality_report,
)
from .xmi import read_json, read_xml, write_json, write_xml

ALL_PROFILES = [SPT, QOS_FT, TESTING, SYSML, ETSI_CS]

PLATFORMS = {
    "posix": posix_platform,
    "baremetal": baremetal_platform,
    "middleware": middleware_platform,
}

GENERATORS = {
    "c": generate_c,
    "java": generate_java,
    "systemc": generate_systemc,
}


def load_model(path: str) -> MofModel:
    """Read a model file, dispatching on extension."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".json"):
        return read_json(text, [UML], profiles=ALL_PROFILES)
    return read_xml(text, [UML], profiles=ALL_PROFILES)


def save_model(model: MofModel, path: str) -> None:
    text = write_json(model) if path.endswith(".json") else write_xml(model)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


# -- subcommands -------------------------------------------------------------

def cmd_validate(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    failures = 0
    for root in model.roots:
        structural = validate_tree(root)
        wellformed = check_model(root) if hasattr(root, "packaged_elements") \
            else None
        for report, label in ((structural, "structural"),
                              (wellformed, "well-formedness")):
            if report is None:
                continue
            if report.ok:
                print(f"{label}: ok"
                      + (f" ({len(report.warnings)} warning(s))"
                         if report.warnings else ""))
                if args.verbose:
                    for diagnostic in report.warnings:
                        print(f"  warning: {diagnostic}")
            else:
                failures += len(report.errors)
                print(f"{label}: {len(report.errors)} error(s)")
                for diagnostic in report.errors:
                    print(f"  {diagnostic}")
    return 1 if failures else 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in sorted(DEFAULT_REGISTRY.all_rules(),
                           key=lambda r: r.code):
            print(f"{rule.code:<8}{rule.name:<28}{rule.target:<15}"
                  f"{rule.severity.value}")
        return 0
    if not args.model:
        print("error: a model file is required (or --list-rules)",
              file=sys.stderr)
        return 2
    model = load_model(args.model)
    config = LintConfig(disabled=set(args.disable or []),
                        enabled=set(args.enable or []))
    report = ModelLinter(config=config).lint(*model.roots)
    print(report.render())
    clean = report.ok and not (args.strict and report.warnings)
    return 0 if clean else 1


def _watch_pass(engine, model_path: str) -> "object":
    import time

    started = time.perf_counter()
    report = engine.revalidate()
    elapsed = (time.perf_counter() - started) * 1e3
    print(f"{model_path}: {len(report.errors)} error(s), "
          f"{len(report.warnings)} warning(s) across "
          f"{engine.unit_count()} check unit(s) in {elapsed:.1f} ms "
          f"[{engine.stats.summary()}]")
    for diagnostic in report.errors + report.warnings:
        print(f"  {diagnostic.render()}")
    return report


def _watch_bench(engine, edits: int) -> int:
    import statistics
    import time

    renamable = [element for element in engine.model.all_elements()
                 if "name" in element.meta.all_features()
                 and not element.meta.feature("name").many]
    if not renamable:
        print("error: model has no renamable elements to edit",
              file=sys.stderr)
        return 2
    full_times = []
    for _ in range(3):
        started = time.perf_counter()
        engine.recompute_from_scratch()
        full_times.append(time.perf_counter() - started)
    full = statistics.median(full_times)
    timings = []
    for index in range(edits):
        element = renamable[index % len(renamable)]
        old = element.eget("name")
        element.eset("name", (old or "") + "~")
        started = time.perf_counter()
        engine.revalidate()
        timings.append(time.perf_counter() - started)
        element.eset("name", old)
        engine.revalidate()
    median = statistics.median(timings)
    print(f"watch bench: {edits} single-element rename round-trips")
    print(f"  full revalidation  : {full * 1e3:9.2f} ms")
    print(f"  incremental median : {median * 1e3:9.2f} ms")
    print(f"  speedup            : {full / max(median, 1e-9):9.1f}x")
    print(f"  engine: {engine.stats.summary()}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import time

    from .incremental import IncrementalEngine

    model = load_model(args.model)
    engine = IncrementalEngine(model)
    report = _watch_pass(engine, args.model)
    if args.bench:
        code = _watch_bench(engine, args.bench)
        engine.detach()
        return code
    if args.once:
        engine.detach()
        return 0 if not report.errors else 1
    rendered = {d.render() for d in report.diagnostics}
    print(f"watching {args.model} (interval {args.interval}s, "
          f"ctrl-C to stop)")
    last_mtime = os.path.getmtime(args.model)
    try:
        while True:
            time.sleep(args.interval)
            try:
                mtime = os.path.getmtime(args.model)
            except OSError:
                continue           # file vanished mid-save; retry
            if mtime == last_mtime:
                continue
            last_mtime = mtime
            engine.detach()
            try:
                model = load_model(args.model)
            except Exception as exc:
                print(f"  reload failed: {exc}")
                engine = IncrementalEngine(model)
                continue
            engine = IncrementalEngine(model)
            report = _watch_pass(engine, args.model)
            now = {d.render() for d in report.diagnostics}
            for line in sorted(now - rendered):
                print(f"  + {line}")
            for line in sorted(rendered - now):
                print(f"  - {line}")
            rendered = now
    except KeyboardInterrupt:
        engine.detach()
        return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    for root in model.roots:
        metrics = compute_model_metrics(root)
        print(metrics.summary())
        if args.per_class:
            print(f"{'class':<24}{'CBO':>5}{'DIT':>5}{'NOC':>5}"
                  f"{'WMC':>5}{'LCOM':>6}")
            for record in metrics.classes.values():
                print(f"{record.name:<24}{record.cbo:>5}{record.dit:>5}"
                      f"{record.noc:>5}{record.wmc:>5}{record.lcom:>6}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platforms = [PLATFORMS[name]() for name in (args.platform or [])]
    dirty = 0
    for root in model.roots:
        report = check_domain_purity(root, platforms)
        if report.clean:
            print(f"{root!r}: clean "
                  f"({report.elements_scanned} elements scanned)")
        else:
            dirty += len(report.findings)
            print(f"{root!r}: {len(report.findings)} pollution finding(s)")
            for finding in report.findings:
                print(f"  {finding}")
    return 1 if dirty else 0


def cmd_transform(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platform = PLATFORMS[args.platform]()
    transformation = make_pim_to_psm(platform)
    result = transformation.run(model.roots, platform=platform)
    print(f"{transformation.name}: {len(result.trace)} trace links, "
          f"{result.elements_visited} elements visited, "
          f"{result.elapsed_seconds * 1e3:.1f} ms")
    psm_model = result.target_model(uri=f"{model.uri}.psm")
    save_model(psm_model, args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    generator = GENERATORS[args.lang]
    os.makedirs(args.output, exist_ok=True)
    total = 0
    for root in model.roots:
        code = lower_model(root)
        for filename, text in generator(code).items():
            path = os.path.join(args.output, filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            lines = text.count("\n")
            total += lines
            print(f"wrote {path} ({lines} lines)")
    print(f"total: {total} lines of {args.lang}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    worst_exit = 0
    for root in model.roots:
        report = analyze_model(root)
        print(report.summary())
        for analysis in report.tasks:
            verdict = "ok" if analysis.schedulable else "MISS"
            print(f"  {analysis.task.name:<20} "
                  f"T={analysis.task.period_ms:g}ms "
                  f"C={analysis.task.wcet_ms:g}ms "
                  f"R={analysis.response_ms:g}ms {verdict}")
        if not report.schedulable:
            worst_exit = 1
    return worst_exit


def cmd_report(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platforms = [PLATFORMS[name]() for name in (args.platform or [])]
    all_passed = True
    for root in model.roots:
        report = quality_report(
            root, platforms=platforms,
            include_traceability=args.traceability)
        print(report.render())
        all_passed = all_passed and report.passed
    return 0 if all_passed else 1


def cmd_footprint(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platform = PLATFORMS[args.platform]()
    worst_exit = 0
    for root in model.roots:
        report = estimate_footprint(root, platform)
        print(report.summary())
        for footprint in report.classes.values():
            print(f"  {footprint.name:<28} instance={footprint.instance_bytes:>6}B "
                  f"stack={footprint.stack_bytes:>7}B "
                  f"queue={footprint.queue_bytes:>7}B")
        if not report.fits:
            worst_exit = 1
    return worst_exit


def cmd_diff(args: argparse.Namespace) -> int:
    left = load_model(args.left)
    right = load_model(args.right)
    if len(left.roots) != len(right.roots):
        print(f"root count differs: {len(left.roots)} vs "
              f"{len(right.roots)}")
        return 1
    identical = True
    for left_root, right_root in zip(left.roots, right.roots):
        result = compare(left_root, right_root)
        print(result.summary())
        if not result.identical:
            identical = False
            print(result)
    return 0 if identical else 1


def cmd_testgen(args: argparse.Namespace) -> int:
    from .uml import Clazz
    model = load_model(args.model)
    found = False
    for root in model.roots:
        for element in [root] + list(root.all_contents()):
            if not isinstance(element, Clazz):
                continue
            if args.clazz and element.name != args.clazz:
                continue
            if element.state_machine() is None:
                continue
            found = True
            result = generate_transition_tests(
                element, max_depth=args.depth)
            print(f"{element.name}: {result.summary()}")
            for test in result.tests:
                print(f"  {test}")
    if not found:
        print("no matching classes with state machines",
              file=sys.stderr)
        return 1
    return 0


def cmd_diagram(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    for root in model.roots:
        if args.kind == "class":
            print(class_diagram(root))
        else:
            machines = [e for e in root.all_contents()
                        if isinstance(e, StateMachine)]
            if args.name:
                machines = [m for m in machines if m.name == args.name]
            if not machines:
                print("no matching state machines", file=sys.stderr)
                return 1
            for machine in machines:
                print(statemachine_diagram(machine))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    save_model(model, args.output)
    print(f"wrote {args.output}")
    return 0


# -- parser ----------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UML/MDA toolchain (reproduction of Oliver, DATE'05)",
        epilog="exit codes: 0 = clean, 1 = findings reported "
               "(validation errors, lint errors, pollution, missed "
               "deadlines, model differences), 2 = usage or model "
               "load error")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "validate", help="structural + well-formedness checks",
        description="Validate a model structurally and against the UML "
                    "well-formedness rules.",
        epilog="exit codes: 0 = clean, 1 = errors found, "
               "2 = usage/load error")
    p.add_argument("model")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "lint", help="static analysis: OCL type checking, dead code, "
                     "conflicts",
        description="Run the model lint engine: static OCL type "
                    "checking of invariants and guards, dead-state and "
                    "dead-transition detection, nondeterministic "
                    "transition conflicts, and fork/join imbalance.",
        epilog="exit codes: 0 = clean, 1 = lint errors (or warnings "
               "with --strict), 2 = usage/load error")
    p.add_argument("model", nargs="?",
                   help="model file (.xmi/.xml/.json)")
    p.add_argument("--disable", action="append", metavar="CODE",
                   help="disable a rule by code or name (repeatable)")
    p.add_argument("--enable", action="append", metavar="CODE",
                   help="enable an opt-in rule (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "watch", help="continuous incremental revalidation",
        description="Validate a model through the incremental "
                    "revalidation engine (structure, invariants, UML "
                    "well-formedness, lint) and keep watching the file: "
                    "each re-save prints the diagnostic delta.  In-process "
                    "callers get true incrementality via "
                    "repro.incremental; --bench demonstrates it on the "
                    "loaded model with single-element rename edits.",
        epilog="exit codes (with --once): 0 = clean, 1 = errors found, "
               "2 = usage/load error")
    p.add_argument("model", help="model file (.xmi/.xml/.json)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="print one report and exit")
    p.add_argument("--bench", type=int, metavar="N",
                   help="apply N single-element edits in-process and "
                        "report incremental vs full revalidation timings")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("metrics", help="design metrics")
    p.add_argument("model")
    p.add_argument("--per-class", action="store_true")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "check", help="domain/platform pollution check",
        epilog="exit codes: 0 = clean, 1 = pollution found, "
               "2 = usage/load error")
    p.add_argument("model")
    p.add_argument("--platform", action="append",
                   choices=sorted(PLATFORMS))
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("transform", help="PIM -> PSM for a platform")
    p.add_argument("model")
    p.add_argument("--platform", required=True, choices=sorted(PLATFORMS))
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_transform)

    p = sub.add_parser("generate", help="PSM -> source code")
    p.add_argument("model")
    p.add_argument("--lang", required=True, choices=sorted(GENERATORS))
    p.add_argument("-o", "--output", required=True,
                   help="output directory")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("schedule", help="SPT schedulability analysis")
    p.add_argument("model")
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("report", help="one-page quality report")
    p.add_argument("model")
    p.add_argument("--platform", action="append",
                   choices=sorted(PLATFORMS))
    p.add_argument("--traceability", action="store_true")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("footprint", help="memory footprint vs platform "
                                         "budget")
    p.add_argument("model")
    p.add_argument("--platform", required=True, choices=sorted(PLATFORMS))
    p.set_defaults(fn=cmd_footprint)

    p = sub.add_parser("diff", help="compare two models")
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("testgen", help="derive transition-coverage "
                                       "tests from state machines")
    p.add_argument("model")
    p.add_argument("--class", dest="clazz", help="restrict to one class")
    p.add_argument("--depth", type=int, default=12)
    p.set_defaults(fn=cmd_testgen)

    p = sub.add_parser("diagram", help="emit Graphviz DOT")
    p.add_argument("model")
    p.add_argument("--kind", choices=["class", "statemachine"],
                   default="class")
    p.add_argument("--name", help="state machine name filter")
    p.set_defaults(fn=cmd_diagram)

    p = sub.add_parser("convert", help="convert between XML and JSON")
    p.add_argument("model")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_convert)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:            # surface tool errors tersely
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
