"""Command-line interface: the toolchain over serialized models.

::

    python -m repro check     model.xmi --families lint,consistency
    python -m repro lint      model.xmi
    python -m repro watch     model.xmi
    python -m repro metrics   model.xmi
    python -m repro purity    model.xmi --platform posix
    python -m repro transform model.xmi --platform posix -o psm.xmi
    python -m repro generate  psm.xmi --lang c -o out/
    python -m repro generate  --size 10000 --seed 0 --repair -o corpus.xmi
    python -m repro schedule  model.xmi
    python -m repro diff      a.xmi b.xmi
    python -m repro convert   model.xmi -o model.json
    python -m repro profile   model.xmi --pipeline check,transform,generate
    python -m repro stats     model.xmi --format prom
    python -m repro serve     --port 8765 --load main=model.xmi
    python -m repro rpc       check --connect localhost:8765 --repo main

Model files are the XMI-style XML (``.xmi``/``.xml``) or JSON (``.json``)
dialects of :mod:`repro.xmi`; all bundled profiles are available for
stereotype resolution.

``check`` is *the* checking verb — one meaning everywhere: the CLI, the
:meth:`repro.session.Session.check` facade and the model server's wire
protocol all run the same family-filtered check and serialize the same
document (``validate`` survives as a deprecated alias of ``check
--families structural,invariant,wellformed``; the old pollution check
is now ``purity``).

Contracts shared by every verb: exit code 0 means clean, 1 means
findings were reported, 2 means usage or model-load error; ``--trace
FILE`` appends the verb's span tree as JSONL; every diagnostic-emitting
verb (``check``/``lint``/``watch``/``report``, and ``rpc check`` over
the wire) accepts ``--format text|json`` and a ``--severity`` floor,
rendered by the one shared renderer
(:func:`repro.session.render_check_document`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import DEFAULT_REGISTRY, LintConfig
from .codegen import generate_c, generate_java, generate_systemc, \
    lower_model
from .method import check_domain_purity
from .platforms.footprint import estimate_footprint
from .mof import compare
from .mof.repository import Model as MofModel
from .platforms import (
    baremetal_platform,
    make_pim_to_psm,
    middleware_platform,
    posix_platform,
)
from .profiles import ETSI_CS, QOS_FT, SPT, SYSML, TESTING, analyze_model
from .session import CheckResult, Session
from .uml import UML, StateMachine, class_diagram, statemachine_diagram
from .validation import (
    build_quality_report,
    compute_model_metrics,
    generate_transition_tests,
)
from .xmi import persist as _persist

ALL_PROFILES = [SPT, QOS_FT, TESTING, SYSML, ETSI_CS]

PLATFORMS = {
    "posix": posix_platform,
    "baremetal": baremetal_platform,
    "middleware": middleware_platform,
}

GENERATORS = {
    "c": generate_c,
    "java": generate_java,
    "systemc": generate_systemc,
}


def load_model(path: str) -> MofModel:
    """Read a model file, dispatching on extension.

    Goes through :mod:`repro.xmi.persist`, so digest-sealed files are
    verified and truncated/garbled input raises a recoverable
    :class:`~repro.xmi.CorruptModelError` (exit code 2 at the top
    level, with the ``.bak`` recovery hint in the message).  Both UML
    models and ``repro generate`` demo corpora resolve.
    """
    from .generate import demo_package
    return _persist.load_model(path, [UML, demo_package()],
                               profiles=ALL_PROFILES)


def save_model(model: MofModel, path: str) -> None:
    """Write a model file atomically (temp + fsync + rename, ``.bak``)."""
    _persist.save_model(model, path)


# -- the shared diagnostic emitter -------------------------------------------

def emit_check_result(result: CheckResult,
                      args: argparse.Namespace) -> None:
    """Print a :class:`~repro.session.CheckResult` per the shared CLI
    contract: ``--format text`` renders lint-style one-liners plus a
    summary; ``--format json`` renders the structured document."""
    print(result.render(getattr(args, "format", "text")))


def cmd_check(args: argparse.Namespace) -> int:
    from .session import FAMILIES

    families = None
    if args.families:
        families = tuple(f.strip() for f in args.families.split(",")
                         if f.strip())
        unknown = [f for f in families if f not in FAMILIES]
        if unknown:
            print(f"error: unknown check families {unknown}; expected a "
                  f"subset of {','.join(FAMILIES)}", file=sys.stderr)
            return 2
    session = Session(load_model(args.model),
                      columnar=getattr(args, "columnar", False))
    result = session.check(families=families, severity=args.severity,
                           workers=getattr(args, "workers", None))
    emit_check_result(result, args)
    clean = result.ok and not (getattr(args, "strict", False)
                               and result.warnings)
    return 0 if clean else 1


def cmd_validate(args: argparse.Namespace) -> int:
    """Deprecated alias: ``check --families structural,invariant,wellformed``."""
    import warnings

    warnings.warn(
        "`repro validate` is deprecated; use `repro check --families "
        "structural,invariant,wellformed`",
        DeprecationWarning, stacklevel=2)
    args.families = "structural,invariant,wellformed"
    args.strict = False
    return cmd_check(args)


#: rule families `python -m repro lint --families` accepts
_LINT_FAMILIES = ("lint", "consistency")


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in sorted(DEFAULT_REGISTRY.all_rules(),
                           key=lambda r: r.code):
            print(f"{rule.code:<8}{rule.name:<28}{rule.target:<15}"
                  f"{rule.family:<13}{rule.severity.value}")
        return 0
    if not args.model:
        print("error: a model file is required (or --list-rules)",
              file=sys.stderr)
        return 2
    families = tuple(f.strip() for f in (args.families or "lint").split(",")
                     if f.strip())
    unknown = [f for f in families if f not in _LINT_FAMILIES]
    if unknown:
        print(f"error: unknown rule families {unknown}; expected a "
              f"subset of {','.join(_LINT_FAMILIES)}", file=sys.stderr)
        return 2
    config = LintConfig(disabled=set(args.disable or []),
                        enabled=set(args.enable or []))
    session = Session(load_model(args.model), lint_config=config)
    result = session.check(families=families, severity=args.severity)
    emit_check_result(result, args)
    clean = result.ok and not (args.strict and result.warnings)
    return 0 if clean else 1


def _watch_pass(engine, model_path: str, fmt: str = "text",
                severity: Optional[str] = None) -> "object":
    import time

    started = time.perf_counter()
    report = engine.revalidate()
    elapsed = (time.perf_counter() - started) * 1e3
    result = engine.check_result().filtered(severity)
    if fmt == "json":
        print(result.render("json"))
        return report
    print(f"{model_path}: {len(report.errors)} error(s), "
          f"{len(report.warnings)} warning(s) across "
          f"{engine.unit_count()} check unit(s) in {elapsed:.1f} ms "
          f"[{engine.stats.summary()}]")
    for diagnostic in result.filtered(severity or "warning").diagnostics:
        print(f"  {diagnostic.render()}")
    quarantined = engine.quarantined()
    if quarantined:
        print(f"  {len(quarantined)} check unit(s) quarantined "
              f"(crashed checkers, retrying with backoff):")
        for line in engine.quarantine_report():
            print(f"    {line}")
    return report


def _watch_bench(engine, edits: int) -> int:
    import statistics
    import time

    renamable = [element for element in engine.model.all_elements()
                 if "name" in element.meta.all_features()
                 and not element.meta.feature("name").many]
    if not renamable:
        print("error: model has no renamable elements to edit",
              file=sys.stderr)
        return 2
    full_times = []
    for _ in range(3):
        started = time.perf_counter()
        engine.recompute_from_scratch()
        full_times.append(time.perf_counter() - started)
    full = statistics.median(full_times)
    timings = []
    for index in range(edits):
        element = renamable[index % len(renamable)]
        old = element.eget("name")
        element.eset("name", (old or "") + "~")
        started = time.perf_counter()
        engine.revalidate()
        timings.append(time.perf_counter() - started)
        element.eset("name", old)
        engine.revalidate()
    median = statistics.median(timings)
    print(f"watch bench: {edits} single-element rename round-trips")
    print(f"  full revalidation  : {full * 1e3:9.2f} ms")
    print(f"  incremental median : {median * 1e3:9.2f} ms")
    print(f"  speedup            : {full / max(median, 1e-9):9.1f}x")
    print(f"  engine: {engine.stats.summary()}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import time

    from .incremental import IncrementalEngine

    model = load_model(args.model)
    engine = IncrementalEngine(model, consistency=True)
    report = _watch_pass(engine, args.model, args.format, args.severity)
    if args.bench:
        code = _watch_bench(engine, args.bench)
        engine.detach()
        return code
    if args.once:
        quarantined = engine.quarantined()
        engine.detach()
        if args.strict and quarantined:
            return 2
        return 0 if not report.errors else 1
    rendered = {d.render() for d in report.diagnostics}
    print(f"watching {args.model} (interval {args.interval}s, "
          f"ctrl-C to stop)")
    last_mtime = os.path.getmtime(args.model)
    try:
        while True:
            time.sleep(args.interval)
            try:
                mtime = os.path.getmtime(args.model)
            except OSError:
                continue           # file vanished mid-save; retry
            if mtime == last_mtime:
                continue
            last_mtime = mtime
            engine.detach()
            try:
                model = load_model(args.model)
            except Exception as exc:
                print(f"  reload failed: {exc}")
                engine = IncrementalEngine(model, consistency=True)
                continue
            engine = IncrementalEngine(model, consistency=True)
            report = _watch_pass(engine, args.model, args.format,
                                 args.severity)
            now = {d.render() for d in report.diagnostics}
            for line in sorted(now - rendered):
                print(f"  + {line}")
            for line in sorted(rendered - now):
                print(f"  - {line}")
            rendered = now
    except KeyboardInterrupt:
        engine.detach()
        return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    for root in model.roots:
        metrics = compute_model_metrics(root)
        print(metrics.summary())
        if args.per_class:
            print(f"{'class':<24}{'CBO':>5}{'DIT':>5}{'NOC':>5}"
                  f"{'WMC':>5}{'LCOM':>6}")
            for record in metrics.classes.values():
                print(f"{record.name:<24}{record.cbo:>5}{record.dit:>5}"
                      f"{record.noc:>5}{record.wmc:>5}{record.lcom:>6}")
    return 0


def cmd_purity(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platforms = [PLATFORMS[name]() for name in (args.platform or [])]
    dirty = 0
    for root in model.roots:
        report = check_domain_purity(root, platforms)
        if report.clean:
            print(f"{root!r}: clean "
                  f"({report.elements_scanned} elements scanned)")
        else:
            dirty += len(report.findings)
            print(f"{root!r}: {len(report.findings)} pollution finding(s)")
            for finding in report.findings:
                print(f"  {finding}")
    return 1 if dirty else 0


def cmd_transform(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platform = PLATFORMS[args.platform]()
    transformation = make_pim_to_psm(platform)
    result = transformation.run(model.roots, platform=platform)
    print(f"{transformation.name}: {len(result.trace)} trace links, "
          f"{result.elements_visited} elements visited, "
          f"{result.elapsed_seconds * 1e3:.1f} ms")
    psm_model = result.target_model(uri=f"{model.uri}.psm")
    save_model(psm_model, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_generate_corpus(args: argparse.Namespace) -> int:
    """The model-generation mode of ``repro generate`` (``--size``)."""
    import json as _json

    from .generate import generate_model

    if args.model:
        print("error: --size generates a fresh model; drop the MODEL "
              "argument (it belongs to PSM->code generation)",
              file=sys.stderr)
        return 2
    if args.lang:
        print("error: --lang belongs to PSM->code generation and "
              "cannot be combined with --size", file=sys.stderr)
        return 2
    result = generate_model(
        args.package, size=args.size, seed=args.seed,
        repair=args.repair, directed=args.directed)
    fmt = args.format
    if fmt is None:
        fmt = ("json" if args.output and args.output.endswith(".json")
               else "xmi")
    to_stdout = not args.output
    summary_stream = sys.stderr if to_stdout else sys.stdout
    print(result.summary(), file=summary_stream)
    print(result.coverage_report().render(), file=summary_stream)
    if args.coverage_report:
        with open(args.coverage_report, "w", encoding="utf-8") as handle:
            _json.dump(result.coverage_report().to_json(), handle,
                       indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote coverage report {args.coverage_report}",
              file=summary_stream)
    if to_stdout:
        sys.stdout.write(_persist.serialize_model(result.model, format=fmt))
    else:
        _persist.save_model(result.model, args.output,
                            format="json" if fmt == "json" else "xml")
        print(f"wrote {args.output}", file=summary_stream)
    if args.repair and result.repair is not None \
            and not result.repair.converged:
        print(f"error: repair did not converge "
              f"({len(result.repair.remaining)} error(s) remain)",
              file=sys.stderr)
        return 1
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.size is not None:
        return _cmd_generate_corpus(args)
    if not args.model or not args.lang or not args.output:
        print("error: PSM->code generation needs MODEL, --lang and "
              "-o OUTPUT (or pass --size N to generate a model corpus)",
              file=sys.stderr)
        return 2
    model = load_model(args.model)
    generator = GENERATORS[args.lang]
    os.makedirs(args.output, exist_ok=True)
    total = 0
    for root in model.roots:
        code = lower_model(root)
        for filename, text in generator(code).items():
            path = os.path.join(args.output, filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            lines = text.count("\n")
            total += lines
            print(f"wrote {path} ({lines} lines)")
    print(f"total: {total} lines of {args.lang}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    worst_exit = 0
    for root in model.roots:
        report = analyze_model(root)
        print(report.summary())
        for analysis in report.tasks:
            verdict = "ok" if analysis.schedulable else "MISS"
            print(f"  {analysis.task.name:<20} "
                  f"T={analysis.task.period_ms:g}ms "
                  f"C={analysis.task.wcet_ms:g}ms "
                  f"R={analysis.response_ms:g}ms {verdict}")
        if not report.schedulable:
            worst_exit = 1
    return worst_exit


def cmd_report(args: argparse.Namespace) -> int:
    import json as _json

    model = load_model(args.model)
    platforms = [PLATFORMS[name]() for name in (args.platform or [])]
    all_passed = True
    documents = []
    for root in model.roots:
        report = build_quality_report(
            root, platforms=platforms,
            include_traceability=args.traceability,
            severity=args.severity,
            workers=getattr(args, "workers", None))
        if args.format == "json":
            documents.append(report.to_json())
        else:
            print(report.render())
        all_passed = all_passed and report.passed
    if args.format == "json":
        print(_json.dumps(documents[0] if len(documents) == 1
                          else documents, indent=2))
    return 0 if all_passed else 1


def cmd_footprint(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    platform = PLATFORMS[args.platform]()
    worst_exit = 0
    for root in model.roots:
        report = estimate_footprint(root, platform)
        print(report.summary())
        for footprint in report.classes.values():
            print(f"  {footprint.name:<28} instance={footprint.instance_bytes:>6}B "
                  f"stack={footprint.stack_bytes:>7}B "
                  f"queue={footprint.queue_bytes:>7}B")
        if not report.fits:
            worst_exit = 1
    return worst_exit


def cmd_diff(args: argparse.Namespace) -> int:
    left = load_model(args.left)
    right = load_model(args.right)
    if len(left.roots) != len(right.roots):
        print(f"root count differs: {len(left.roots)} vs "
              f"{len(right.roots)}")
        return 1
    identical = True
    for left_root, right_root in zip(left.roots, right.roots):
        result = compare(left_root, right_root)
        print(result.summary())
        if not result.identical:
            identical = False
            print(result)
    return 0 if identical else 1


def cmd_testgen(args: argparse.Namespace) -> int:
    from .uml import Clazz
    model = load_model(args.model)
    found = False
    for root in model.roots:
        for element in [root] + list(root.all_contents()):
            if not isinstance(element, Clazz):
                continue
            if args.clazz and element.name != args.clazz:
                continue
            if element.state_machine() is None:
                continue
            found = True
            result = generate_transition_tests(
                element, max_depth=args.depth)
            print(f"{element.name}: {result.summary()}")
            for test in result.tests:
                print(f"  {test}")
    if not found:
        print("no matching classes with state machines",
              file=sys.stderr)
        return 1
    return 0


def cmd_diagram(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    for root in model.roots:
        if args.kind == "class":
            print(class_diagram(root))
        else:
            machines = [e for e in root.all_contents()
                        if isinstance(e, StateMachine)]
            if args.name:
                machines = [m for m in machines if m.name == args.name]
            if not machines:
                print("no matching state machines", file=sys.stderr)
                return 1
            for machine in machines:
                print(statemachine_diagram(machine))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    save_model(model, args.output)
    print(f"wrote {args.output}")
    return 0


PIPELINE_STAGES = ("check", "lint", "transform", "generate")


def _run_pipeline(args: argparse.Namespace, stages) -> Session:
    """Execute the requested toolchain stages over ``args.model`` with
    the observability layer already enabled (the caller owns it);
    returns the session the checking stages ran through."""
    from . import obs

    with obs.span("cli.load", model=args.model):
        model = load_model(args.model)
    session = Session(model, columnar=getattr(args, "columnar", False))
    psm_model = None
    for stage in stages:
        if stage == "check":
            session.check(families=("structural", "invariant",
                                    "wellformed"),
                          workers=getattr(args, "workers", None))
        elif stage == "lint":
            session.check(families=("lint",))
        elif stage == "transform":
            platform = PLATFORMS[args.platform]()
            transformation = make_pim_to_psm(platform)
            result = transformation.run(model.roots, platform=platform)
            psm_model = result.target_model(uri=f"{model.uri}.psm")
        elif stage == "generate":
            source = psm_model if psm_model is not None else model
            generator = GENERATORS[args.lang]
            for root in source.roots:
                generator(lower_model(root))
    return session


def _parse_stages(pipeline: str):
    # "validate" stays accepted as a spelling of the check stage so old
    # --pipeline values keep working
    stages = ["check" if s.strip() == "validate" else s.strip()
              for s in pipeline.split(",") if s.strip()]
    unknown = [s for s in stages if s not in PIPELINE_STAGES]
    if unknown:
        print(f"error: unknown pipeline stage(s) {unknown}; expected a "
              f"subset of {','.join(PIPELINE_STAGES)}", file=sys.stderr)
        return None
    return stages


def cmd_profile(args: argparse.Namespace) -> int:
    from . import obs

    stages = _parse_stages(args.pipeline)
    if stages is None:
        return 2
    sink = obs.MemorySink()
    obs.enable(sink)
    try:
        with obs.span("cli.profile", model=args.model,
                      pipeline=args.pipeline):
            _run_pipeline(args, stages)
    finally:
        obs.disable()
        obs.remove_sink(sink)
    print(obs.render_tree(sink.roots, min_fraction=args.min_fraction))
    print()
    print(obs.top_table(sink.roots, n=args.top))
    print(f"\n{sink.span_count} span(s) recorded; "
          f"run `python -m repro stats {args.model}` for the counters")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    from . import obs
    from .ocl.compile import cache_stats
    from .session import runtime_stats

    session = None
    if args.model:
        stages = _parse_stages(args.pipeline)
        if stages is None:
            return 2
        obs.enable()
        try:
            with obs.span("cli.stats", model=args.model):
                session = _run_pipeline(args, stages)
        finally:
            obs.disable()
    for stat, value in cache_stats().items():
        obs.REGISTRY.gauge(
            "ocl.compile.cache.state",
            help="OCL parse/compile cache sizes and hit/miss totals",
            stat=stat).set(value)
    if args.format == "prom":
        print(obs.REGISTRY.render_prometheus())
    else:
        # the same document Session.stats() returns and the model
        # server's `stats` verb sends over the wire
        document = (session.stats() if session is not None
                    else runtime_stats())
        print(_json.dumps(document, indent=2, sort_keys=True))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .server import PROTOCOL_VERSION, ModelServer, TcpServer

    server = ModelServer(max_frame=args.max_frame, wal_dir=args.wal_dir)
    for repo in server.recovered:
        state = server.repos[repo]
        print(f"recovered repository {repo!r} from write-ahead log "
              f"(epoch {state.epoch}, {state.edits_applied} txns "
              f"replayed)")
    for spec in args.load or []:
        name, _, path = spec.partition("=")
        if not name or not path:
            print(f"error: --load expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        if name in server.repos:
            print(f"repository {name!r} already recovered; "
                  f"ignoring --load {spec}")
            continue
        server.attach(name, Session(load_model(path)))
        print(f"loaded repository {name!r} from {path}")
    tcp = TcpServer(server, args.host, args.port)
    host, port = tcp.address
    print(f"repro model server (protocol v{PROTOCOL_VERSION}) "
          f"listening on {host}:{port}; ctrl-C to stop, "
          f"SIGTERM to drain", flush=True)

    def on_sigterm(_signum, _frame):
        print("draining: stopped accepting; finishing inflight "
              "requests and flushing write-ahead logs", flush=True)
        stats = tcp.drain(timeout=args.drain_timeout)
        print(f"drained (cancelled={stats['cancelled']}, "
              f"interrupted={stats['interrupted']})", flush=True)
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, on_sigterm)
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        tcp.shutdown()
    return 0


def cmd_rpc(args: argparse.Namespace) -> int:
    import json as _json

    from .server import RemoteError, RetryPolicy, TcpClient, TransportError
    from .session import render_check_document

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --connect expects HOST:PORT, got "
              f"{args.connect!r}", file=sys.stderr)
        return 2
    params = {}
    if args.params:
        try:
            params = _json.loads(args.params)
        except ValueError as exc:
            print(f"error: --params is not valid JSON: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("error: --params must be a JSON object",
                  file=sys.stderr)
            return 2
    if args.repo:
        params.setdefault("repo", args.repo)
    if args.severity and args.verb == "check":
        params.setdefault("severity", args.severity)
    retry = RetryPolicy(attempts=args.retries + 1) if args.retries \
        else None
    try:
        with TcpClient(host or "127.0.0.1", port, retry=retry) as client:
            result = client.request(args.verb, **params)
    except RemoteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.data:
            print(_json.dumps(exc.data, indent=2, sort_keys=True),
                  file=sys.stderr)
        return 1
    except (TransportError, OSError, ConnectionError) as exc:
        print(f"error: cannot reach {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    if args.verb == "check" and args.format == "text":
        print(render_check_document(result, "text"))
    else:
        print(_json.dumps(result, indent=2, sort_keys=True))
    if args.verb == "check":
        return 0 if not result.get("errors") else 1
    return 0


# -- parser ----------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UML/MDA toolchain (reproduction of Oliver, DATE'05)",
        epilog="exit codes: 0 = clean, 1 = findings reported "
               "(validation errors, lint errors, pollution, missed "
               "deadlines, model differences), 2 = usage or model "
               "load error")
    sub = parser.add_subparsers(dest="command", required=True)

    trace_parent = argparse.ArgumentParser(add_help=False)
    trace_parent.add_argument(
        "--trace", metavar="FILE",
        help="append this invocation's span tree to FILE as JSONL")

    diag_parent = argparse.ArgumentParser(add_help=False)
    diag_parent.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="diagnostic output format (default text)")
    diag_parent.add_argument(
        "--severity", choices=["info", "warning", "error"], default=None,
        help="only report diagnostics at or above this severity")

    p = sub.add_parser(
        "check", help="run the checker families over a model (the one "
                      "checking verb: CLI, Session and server agree)",
        parents=[trace_parent, diag_parent],
        description="Run Session.check over the model: any subset of "
                    "the structural, invariant, wellformed, lint, "
                    "consistency and constraint families (default: all "
                    "but constraint).  The same verb with the same "
                    "document shape is exposed by repro.session.Session"
                    ".check and by the model server's wire protocol.",
        epilog="exit codes: 0 = clean, 1 = errors found (or warnings "
               "with --strict), 2 = usage/load error")
    p.add_argument("model")
    p.add_argument("--families", metavar="LIST",
                   help="comma-separated checker families to run "
                        "(default: structural,invariant,wellformed,"
                        "lint,consistency)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures")
    p.add_argument("--workers", type=int, metavar="N",
                   help="shard the structural/invariant/constraint "
                        "families across N forked worker processes "
                        "(repro.parallel); the document is "
                        "byte-identical to the sequential run")
    p.add_argument("--columnar", action="store_true",
                   help="enable the columnar extent store "
                        "(repro.mof.columns) so allInstances-heavy OCL "
                        "and the structural/invariant families scan "
                        "contiguous columns")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "validate", help="deprecated alias of `check --families "
                         "structural,invariant,wellformed`",
        parents=[trace_parent, diag_parent],
        description="Deprecated alias: emits a DeprecationWarning and "
                    "runs `check --families structural,invariant,"
                    "wellformed`.",
        epilog="exit codes: 0 = clean, 1 = errors found, "
               "2 = usage/load error")
    p.add_argument("model")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="accepted for compatibility; no effect")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "lint", help="static analysis: OCL type checking, dead code, "
                     "conflicts",
        parents=[trace_parent, diag_parent],
        description="Run the model lint engine: static OCL type "
                    "checking of invariants and guards, dead-state and "
                    "dead-transition detection, nondeterministic "
                    "transition conflicts, and fork/join imbalance.",
        epilog="exit codes: 0 = clean, 1 = lint errors (or warnings "
               "with --strict), 2 = usage/load error")
    p.add_argument("model", nargs="?",
                   help="model file (.xmi/.xml/.json)")
    p.add_argument("--disable", action="append", metavar="CODE",
                   help="disable a rule by code or name (repeatable)")
    p.add_argument("--enable", action="append", metavar="CODE",
                   help="enable an opt-in rule (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures")
    p.add_argument("--families", metavar="LIST", default="lint",
                   help="comma-separated rule families to run: any of "
                        "lint,consistency (default lint; consistency = "
                        "the cross-diagram XD rules)")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "watch", help="continuous incremental revalidation",
        parents=[trace_parent, diag_parent],
        description="Validate a model through the incremental "
                    "revalidation engine (structure, invariants, UML "
                    "well-formedness, lint) and keep watching the file: "
                    "each re-save prints the diagnostic delta.  In-process "
                    "callers get true incrementality via "
                    "repro.incremental; --bench demonstrates it on the "
                    "loaded model with single-element rename edits.",
        epilog="exit codes (with --once): 0 = clean, 1 = errors found, "
               "2 = usage/load error, or quarantined checkers under "
               "--strict")
    p.add_argument("model", help="model file (.xmi/.xml/.json)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="print one report and exit")
    p.add_argument("--strict", action="store_true",
                   help="with --once: exit 2 if any check unit is "
                        "quarantined (its checker crashed)")
    p.add_argument("--bench", type=int, metavar="N",
                   help="apply N single-element edits in-process and "
                        "report incremental vs full revalidation timings")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("metrics", help="design metrics",
                       parents=[trace_parent])
    p.add_argument("model")
    p.add_argument("--per-class", action="store_true")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "purity", help="domain/platform pollution check",
        parents=[trace_parent],
        description="Scan PIM packages for platform pollution "
                    "(formerly `repro check`; `check` is now the "
                    "unified checker-family verb).",
        epilog="exit codes: 0 = clean, 1 = pollution found, "
               "2 = usage/load error")
    p.add_argument("model")
    p.add_argument("--platform", action="append",
                   choices=sorted(PLATFORMS))
    p.set_defaults(fn=cmd_purity)

    p = sub.add_parser("transform", help="PIM -> PSM for a platform",
                       parents=[trace_parent])
    p.add_argument("model")
    p.add_argument("--platform", required=True, choices=sorted(PLATFORMS))
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_transform)

    p = sub.add_parser(
        "generate",
        help="PSM -> source code, or (with --size) a seeded model corpus",
        parents=[trace_parent],
        description="Two modes.  PSM -> code: `repro generate MODEL "
                    "--lang c -o DIR`.  Model corpus: `repro generate "
                    "--size N [--seed S] [--package demo|uml] "
                    "[--repair] [--directed] [-o FILE]` generates a "
                    "seeded random model (constraint-repaired to zero "
                    "error diagnostics with --repair) and writes "
                    "digest-sealed XMI or JSON to FILE or stdout.",
        epilog="exit codes: 0 = generated, 1 = --repair did not "
               "converge, 2 = usage/load error")
    p.add_argument("model", nargs="?",
                   help="PSM model file (codegen mode only)")
    p.add_argument("--lang", choices=sorted(GENERATORS),
                   help="target language (codegen mode)")
    p.add_argument("-o", "--output",
                   help="output directory (codegen) or model file "
                        "(--size mode; default stdout)")
    p.add_argument("--size", type=int, metavar="N",
                   help="generate a fresh seeded model of ~N elements "
                        "instead of code")
    p.add_argument("--seed", type=int, default=0,
                   help="generation seed (default 0); the same "
                        "(--package, --size, --seed) reproduces the "
                        "model byte-identically")
    p.add_argument("--package", choices=("demo", "uml"), default="demo",
                   help="generation profile (default demo: the genlib "
                        "metamodel with registered OCL invariants)")
    p.add_argument("--repair", action="store_true",
                   help="run the constraint-guided repair loop until "
                        "Session.check reports zero errors")
    p.add_argument("--directed", action="store_true",
                   help="coverage-directed generation (steer toward "
                        "uncovered metaclasses/ends/branches)")
    p.add_argument("--coverage-report", metavar="FILE",
                   help="also write the coverage report as JSON to FILE")
    p.add_argument("--format", choices=("xmi", "json"),
                   help="serialization format in --size mode "
                        "(default: from -o extension, else xmi)")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("schedule", help="SPT schedulability analysis",
                       parents=[trace_parent])
    p.add_argument("model")
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("report", help="one-page quality report",
                       parents=[trace_parent, diag_parent])
    p.add_argument("model")
    p.add_argument("--platform", action="append",
                   choices=sorted(PLATFORMS))
    p.add_argument("--traceability", action="store_true")
    p.add_argument("--workers", type=int, metavar="N",
                   help="shard the structural section across N forked "
                        "worker processes (repro.parallel)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("footprint", help="memory footprint vs platform "
                                         "budget",
                       parents=[trace_parent])
    p.add_argument("model")
    p.add_argument("--platform", required=True, choices=sorted(PLATFORMS))
    p.set_defaults(fn=cmd_footprint)

    p = sub.add_parser("diff", help="compare two models",
                       parents=[trace_parent])
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("testgen", help="derive transition-coverage "
                                       "tests from state machines",
                       parents=[trace_parent])
    p.add_argument("model")
    p.add_argument("--class", dest="clazz", help="restrict to one class")
    p.add_argument("--depth", type=int, default=12)
    p.set_defaults(fn=cmd_testgen)

    p = sub.add_parser("diagram", help="emit Graphviz DOT",
                       parents=[trace_parent])
    p.add_argument("model")
    p.add_argument("--kind", choices=["class", "statemachine"],
                   default="class")
    p.add_argument("--name", help="state machine name filter")
    p.set_defaults(fn=cmd_diagram)

    p = sub.add_parser("convert", help="convert between XML and JSON",
                       parents=[trace_parent])
    p.add_argument("model")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_convert)

    p = sub.add_parser(
        "profile", help="run a pipeline under the tracer, print the "
                        "span tree",
        parents=[trace_parent],
        description="Enable the observability layer, run the requested "
                    "toolchain stages over the model, and print the "
                    "recorded span tree plus the top-N self-time table.",
        epilog="exit codes: 0 = profiled, 2 = usage/load error")
    p.add_argument("model")
    p.add_argument("--pipeline", default="check,transform,generate",
                   metavar="STAGES",
                   help="comma-separated subset of "
                        f"{','.join(PIPELINE_STAGES)} "
                        "(default check,transform,generate)")
    p.add_argument("--platform", default="posix",
                   choices=sorted(PLATFORMS),
                   help="platform for the transform stage")
    p.add_argument("--lang", default="c", choices=sorted(GENERATORS),
                   help="language for the generate stage")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the self-time table (default 10)")
    p.add_argument("--min-fraction", type=float, default=0.0,
                   help="hide spans below this fraction of total time")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "stats", help="dump the metrics registry (Prometheus or JSON)",
        parents=[trace_parent],
        description="Print every counter, gauge and histogram in the "
                    "process-wide metrics registry.  With a model "
                    "argument, first runs the given pipeline stages "
                    "instrumented so the registry is populated.",
        epilog="exit codes: 0 = printed, 2 = usage/load error")
    p.add_argument("model", nargs="?",
                   help="optional model to run --pipeline over first")
    p.add_argument("--pipeline", default="check",
                   metavar="STAGES",
                   help="stages to run when a model is given "
                        "(default check)")
    p.add_argument("--platform", default="posix",
                   choices=sorted(PLATFORMS))
    p.add_argument("--lang", default="c", choices=sorted(GENERATORS))
    p.add_argument("--format", choices=["prom", "json"], default="prom",
                   help="export format (default prom; json prints the "
                        "same document Session.stats() returns and the "
                        "model server's stats verb serves)")
    p.add_argument("--columnar", action="store_true",
                   help="run the pipeline with the columnar extent "
                        "store enabled; the model block then reports "
                        "per-extent column counts, bytes and rebuilds")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "serve", help="run the multi-tenant model server",
        parents=[trace_parent],
        description="Host models as named repositories behind the "
                    "line-oriented JSON wire protocol (see "
                    "repro.server).  Clients connect over TCP and speak "
                    "the verbs load, generate, check, edit-txn, watch, "
                    "stats, close; `repro rpc` is the matching thin "
                    "client.",
        epilog="exit codes: 0 = clean shutdown, 2 = usage/load error")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (default 8765; 0 = ephemeral)")
    p.add_argument("--load", action="append", metavar="NAME=PATH",
                   help="pre-load a model file as repository NAME "
                        "(repeatable)")
    p.add_argument("--max-frame", type=int, default=None, metavar="BYTES",
                   help="per-frame byte ceiling (default 8 MiB)")
    p.add_argument("--wal-dir", metavar="DIR",
                   help="write-ahead log directory: every committed "
                        "edit-txn is fsynced there before it is "
                        "acknowledged, and pending logs are replayed "
                        "on start (crash recovery)")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="on SIGTERM, wait this long for inflight "
                        "requests before closing (default 5)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "rpc", help="send one verb to a running model server",
        parents=[trace_parent, diag_parent],
        description="Thin client for `repro serve`: send VERB with "
                    "--params JSON (plus --repo as shorthand for the "
                    "repo param) and print the result.  `rpc check` "
                    "renders the response through the same renderer as "
                    "`repro check`, so local and remote output match.",
        epilog="exit codes: 0 = ok (check: clean), 1 = server error "
               "response (check: errors found), 2 = usage/connection "
               "error")
    p.add_argument("verb", help="protocol verb (e.g. check, stats, "
                                "edit-txn, load, generate)")
    p.add_argument("--connect", default="127.0.0.1:8765",
                   metavar="HOST:PORT",
                   help="server address (default 127.0.0.1:8765)")
    p.add_argument("--params", metavar="JSON",
                   help="verb params as a JSON object")
    p.add_argument("--repo", help="shorthand for the repo param")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry the request up to N times with jittered "
                        "backoff on conflict/overloaded/deadline-"
                        "exceeded/draining responses and transient "
                        "network failures (default 0 = no retry)")
    p.set_defaults(fn=cmd_rpc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sink = None
    if getattr(args, "trace", None):
        from . import obs
        sink = obs.JsonlSink(args.trace)
        obs.enable(sink)
    try:
        if sink is not None:
            from .obs import trace as _trace
            with _trace.span(f"cli.{args.command}"):
                return args.fn(args)
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream closed the pipe (e.g. `| head`) — exit quietly;
        # point stdout at devnull so interpreter shutdown can't re-raise
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except Exception as exc:            # surface tool errors tersely
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            from . import obs
            obs.disable()
            obs.remove_sink(sink)
            sink.close()


if __name__ == "__main__":
    sys.exit(main())
