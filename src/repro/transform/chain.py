"""Transformation chains: PIM → PSM → ... with optional gates.

A chain runs transformations in sequence, keeping every intermediate model
and trace.  Each step may carry a *gate* — a predicate over the step's
source model that must pass before the step runs; ``repro.method.process``
plugs level test suites in here, realising the paper's "at each abstraction
level a well defined set of tests must be performed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..mof.kernel import Element
from ..mof.repository import Model
from .engine import Transformation, TransformationResult
from .errors import GateClosedError

Gate = Callable[[List[Element]], "GateVerdict"]


@dataclass
class GateVerdict:
    """Outcome of a gate check."""

    passed: bool
    messages: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.passed


@dataclass
class ChainStep:
    transformation: Transformation
    gate: Optional[Gate] = None
    platform: Any = None
    parameters: Optional[Dict[str, Any]] = None

    @property
    def name(self) -> str:
        return self.transformation.name


@dataclass
class StepRecord:
    """What happened at one step of a chain run."""

    step_name: str
    gate_verdict: Optional[GateVerdict]
    result: Optional[TransformationResult]

    @property
    def ran(self) -> bool:
        return self.result is not None


@dataclass
class ChainResult:
    records: List[StepRecord] = field(default_factory=list)
    final_roots: List[Element] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return all(record.ran for record in self.records)

    def step(self, name: str) -> StepRecord:
        for record in self.records:
            if record.step_name == name:
                return record
        raise KeyError(name)


class TransformationChain:
    """An ordered pipeline of gated transformations."""

    def __init__(self, name: str):
        self.name = name
        self.steps: List[ChainStep] = []

    def add_step(self, transformation: Transformation, *,
                 gate: Optional[Gate] = None, platform: Any = None,
                 parameters: Optional[Dict[str, Any]] = None) -> ChainStep:
        step = ChainStep(transformation, gate, platform, parameters)
        self.steps.append(step)
        return step

    def run(self, source: Union[Model, Element, List[Element]], *,
            enforce_gates: bool = True) -> ChainResult:
        """Run all steps; with ``enforce_gates`` a failing gate raises
        :class:`GateClosedError`, otherwise it is recorded and the chain
        continues (the "ungated" process the paper warns about)."""
        roots = Transformation._roots_of(source)
        chain_result = ChainResult()
        for step in self.steps:
            verdict: Optional[GateVerdict] = None
            if step.gate is not None:
                verdict = step.gate(roots)
                if not verdict and enforce_gates:
                    chain_result.records.append(
                        StepRecord(step.name, verdict, None))
                    raise GateClosedError(
                        f"gate refused step '{step.name}': "
                        + "; ".join(verdict.messages))
            result = step.transformation.run(
                roots, platform=step.platform, parameters=step.parameters)
            chain_result.records.append(StepRecord(step.name, verdict, result))
            roots = result.target_roots
        chain_result.final_roots = roots
        return chain_result

    def total_abstraction_delta(self) -> int:
        """How many abstraction levels the full chain descends."""
        return sum(step.transformation.abstraction_delta
                   for step in self.steps)

    def __repr__(self) -> str:
        names = " -> ".join(step.name for step in self.steps)
        return f"<TransformationChain {self.name}: {names}>"
