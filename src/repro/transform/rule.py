"""Transformation rules.

A rule declares *what kind* of source element it matches (a metaclass plus
an optional guard) and *what* it creates.  Execution is two-phase:

* ``create(source, ctx)`` — instantiate target elements; **no
  cross-references yet** (other targets may not exist);
* ``bind(source, targets, ctx)`` — wire references, resolving images of
  other source elements through ``ctx.resolve(...)`` (the trace).

Rules may be written as subclasses of :class:`Rule` or as functions wrapped
by the :func:`rule` decorator.  Lazy rules are only applied on demand via
``ctx.resolve_or_apply``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from ..mof.kernel import Element, MetaClass
from ..ocl import Environment, evaluate, parse
from .errors import RuleError
from .trace import DEFAULT_ROLE

GuardSpec = Union[str, Callable[[Element, "TransformationContext"], bool],
                  None]


def _as_metaclass(spec: Union[MetaClass, type]) -> MetaClass:
    if isinstance(spec, MetaClass):
        return spec
    if isinstance(spec, type) and hasattr(spec, "_meta"):
        return spec._meta
    raise RuleError(f"invalid source type spec {spec!r}")


class Rule:
    """Base class for transformation rules."""

    #: Subclasses may set these as class attributes instead of passing them
    #: to ``__init__``.
    source_type: Union[MetaClass, type, None] = None
    guard: GuardSpec = None
    lazy: bool = False
    exclusive: bool = True     # an exclusive rule claims its element

    def __init__(self, name: Optional[str] = None,
                 source_type: Union[MetaClass, type, None] = None,
                 guard: GuardSpec = None,
                 lazy: Optional[bool] = None,
                 exclusive: Optional[bool] = None):
        self.name = name or type(self).__name__
        if source_type is not None:
            self.source_type = source_type
        if guard is not None:
            self.guard = guard
        if lazy is not None:
            self.lazy = lazy
        if exclusive is not None:
            self.exclusive = exclusive
        if self.source_type is None:
            raise RuleError(f"rule '{self.name}' declares no source type")
        self._source_meta = _as_metaclass(self.source_type)
        self._guard_ast = (parse(self.guard)
                           if isinstance(self.guard, str) else None)

    # -- matching ----------------------------------------------------------

    def matches(self, element: Element, ctx: "TransformationContext") -> bool:
        if not element.meta.conforms_to(self._source_meta):
            return False
        if self.guard is None:
            return True
        if self._guard_ast is not None:
            env = Environment.for_model(element.root(), self_object=element)
            env.define("platform", ctx.platform)
            result = evaluate(self._guard_ast, env)
            return result is True
        return bool(self.guard(element, ctx))

    # -- the two phases ----------------------------------------------------

    def create(self, source: Element,
               ctx: "TransformationContext"
               ) -> Union[Element, Dict[str, Element], None]:
        """Instantiate target element(s) for *source*.

        Return a single element (recorded under the default role), a dict
        of role → element, or None to claim the element without output.
        """
        raise NotImplementedError

    def bind(self, source: Element, targets: Dict[str, Element],
             ctx: "TransformationContext") -> None:
        """Wire references between already-created targets (optional)."""

    def __repr__(self) -> str:
        return (f"<Rule {self.name} on {self._source_meta.name}"
                f"{' lazy' if self.lazy else ''}>")


class FunctionRule(Rule):
    """A rule assembled from plain functions (see :func:`rule`)."""

    def __init__(self, name: str, source_type: Union[MetaClass, type],
                 create_fn: Callable, bind_fn: Optional[Callable] = None,
                 guard: GuardSpec = None, lazy: bool = False,
                 exclusive: bool = True):
        super().__init__(name=name, source_type=source_type, guard=guard,
                         lazy=lazy, exclusive=exclusive)
        self._create_fn = create_fn
        self._bind_fn = bind_fn

    def create(self, source, ctx):
        return self._create_fn(source, ctx)

    def bind(self, source, targets, ctx):
        if self._bind_fn is not None:
            if len(targets) == 1 and DEFAULT_ROLE in targets:
                self._bind_fn(source, targets[DEFAULT_ROLE], ctx)
            else:
                self._bind_fn(source, targets, ctx)


def rule(source_type: Union[MetaClass, type], *,
         name: Optional[str] = None, guard: GuardSpec = None,
         lazy: bool = False, exclusive: bool = True
         ) -> Callable[[Callable], FunctionRule]:
    """Decorator turning a create function into a :class:`FunctionRule`.

    The decorated function receives ``(source, ctx)`` and returns target
    element(s).  Attach a bind phase with ``@my_rule.binder``::

        @rule(Clazz)
        def class_to_task(source, ctx):
            return Task(name=source.name)

        @class_to_task.binder
        def bind(source, target, ctx):
            target.collaborators = ctx.resolve_all(source.supers())
    """
    def wrap(create_fn: Callable) -> FunctionRule:
        function_rule = FunctionRule(
            name or create_fn.__name__, source_type, create_fn,
            guard=guard, lazy=lazy, exclusive=exclusive)

        def binder(bind_fn: Callable) -> FunctionRule:
            function_rule._bind_fn = bind_fn
            return function_rule

        function_rule.binder = binder       # type: ignore[attr-defined]
        return function_rule
    return wrap
