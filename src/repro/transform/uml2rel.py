"""The canonical MDA transformation: UML classes → relational schema.

Every MDA tutorial of the paper's era demonstrated class→table; this
module provides it as a *real* rule set over a dynamically defined
relational metamodel — demonstrating at once (a) the kernel's dynamic
(M3) facilities, (b) the two-phase engine on a non-UML target, and (c) a
second "platform" that is a data store rather than an execution
environment.

Mapping:

* class → table with a synthetic ``id`` primary key;
* primitive attribute → column (SQL type from the UML primitive);
* single-valued association end → foreign-key column + constraint;
* many-valued association end → join table;
* generalization → foreign key to the parent's table (one table per
  class).

``schema_to_sql`` prints the resulting schema model as DDL — another
*syntactic* back end.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mof import (
    M_0N,
    MBoolean,
    MString,
    MetaPackage,
    PackageBuilder,
)
from ..uml import (
    Behavior,
    Clazz,
    Property,
    UmlModel,
)
from .engine import Transformation, TransformationContext
from .rule import Rule

# ---------------------------------------------------------------------------
# The relational metamodel — defined dynamically (M3 at work)
# ---------------------------------------------------------------------------

RELATIONAL: MetaPackage = (
    PackageBuilder("relational", uri="urn:repro:relational")
    .clazz("Schema").attr("name", MString)
    .contains("tables", "Table")
    .clazz("Table").attr("name", MString)
    .contains("columns", "Column")
    .contains("foreign_keys", "ForeignKey")
    .clazz("Column").attr("name", MString)
    .attr("sql_type", MString, "INTEGER")
    .attr("is_primary", MBoolean, False)
    .attr("is_nullable", MBoolean, True)
    .clazz("ForeignKey").attr("name", MString)
    .ref("column", "Column")
    .ref("references", "Table")
    .build())

SCHEMA = RELATIONAL.classifier("Schema")
TABLE = RELATIONAL.classifier("Table")
COLUMN = RELATIONAL.classifier("Column")
FOREIGN_KEY = RELATIONAL.classifier("ForeignKey")

SQL_TYPES = {
    "Integer": "INTEGER",
    "Real": "DOUBLE PRECISION",
    "String": "VARCHAR(255)",
    "Boolean": "BOOLEAN",
}


def _table_name(cls: Clazz) -> str:
    return cls.name.lower()


class SchemaRule(Rule):
    source_type = UmlModel

    def create(self, source, ctx):
        return SCHEMA(name=source.name)


class ClassToTableRule(Rule):
    source_type = Clazz

    def matches(self, element, ctx):
        return super().matches(element, ctx) \
            and not isinstance(element, Behavior)

    def create(self, source: Clazz, ctx):
        table = TABLE(name=_table_name(source))
        table.columns.append(COLUMN(name="id", sql_type="INTEGER",
                                    is_primary=True, is_nullable=False))
        return table

    def bind(self, source: Clazz, targets, ctx):
        table = targets["default"]
        schema = ctx.resolve_optional(source.root())
        if schema is not None and table not in schema.tables:
            schema.tables.append(table)
        # inheritance: one table per class, child keeps parent's key
        for sup in source.supers():
            parent_table = ctx.resolve_optional(sup)
            if parent_table is None:
                continue
            column = COLUMN(name=f"{parent_table.name}_id",
                            sql_type="INTEGER", is_nullable=False)
            table.columns.append(column)
            table.foreign_keys.append(FOREIGN_KEY(
                name=f"fk_{table.name}_{parent_table.name}",
                column=column, references=parent_table))


class AttributeToColumnRule(Rule):
    source_type = Property

    def matches(self, element: Property, ctx):
        if not super().matches(element, ctx):
            return False
        if isinstance(element.container, Clazz) \
                and isinstance(element.container, Behavior):
            return False
        return not isinstance(element.type, Clazz)    # ends handled apart

    def create(self, source: Property, ctx):
        type_name = source.type.name if source.type is not None else ""
        return COLUMN(name=source.name,
                      sql_type=SQL_TYPES.get(type_name, "VARCHAR(255)"),
                      is_nullable=source.lower == 0)

    def bind(self, source: Property, targets, ctx):
        owner = source.container
        table = ctx.resolve_optional(owner) if owner is not None else None
        if table is not None and table.meta is TABLE:
            if targets["default"] not in table.columns:
                table.columns.append(targets["default"])


class EndToForeignKeyRule(Rule):
    """Single-valued, class-typed property → FK column; many-valued →
    join table."""

    source_type = Property

    def matches(self, element: Property, ctx):
        return super().matches(element, ctx) \
            and isinstance(element.type, Clazz) \
            and isinstance(element.container, Clazz)

    def create(self, source: Property, ctx):
        if source.is_many:
            owner = source.container
            return TABLE(name=f"{_table_name(owner)}_{source.name}")
        return COLUMN(name=f"{source.name}_id", sql_type="INTEGER",
                      is_nullable=source.lower == 0)

    def bind(self, source: Property, targets, ctx):
        owner_table = ctx.resolve_optional(source.container)
        target_table = ctx.resolve_optional(source.type)
        produced = targets["default"]
        if owner_table is None or target_table is None:
            return
        if source.is_many:
            join_table = produced
            schema = owner_table.container
            if schema is not None and join_table not in schema.tables:
                schema.tables.append(join_table)
            for end_table in (owner_table, target_table):
                column = COLUMN(name=f"{end_table.name}_id",
                                sql_type="INTEGER", is_nullable=False)
                join_table.columns.append(column)
                join_table.foreign_keys.append(FOREIGN_KEY(
                    name=f"fk_{join_table.name}_{end_table.name}",
                    column=column, references=end_table))
            return
        if produced not in owner_table.columns:
            owner_table.columns.append(produced)
        owner_table.foreign_keys.append(FOREIGN_KEY(
            name=f"fk_{owner_table.name}_{source.name}",
            column=produced, references=target_table))


def uml_to_relational() -> Transformation:
    """The class→table transformation (semantic: target metamodel is a
    different domain at a different abstraction)."""
    return Transformation(
        "uml2relational",
        [SchemaRule(), ClassToTableRule(), AttributeToColumnRule(),
         EndToForeignKeyRule()],
        kind="semantic", abstraction_delta=-1,
        description="classic MDA class->table mapping onto a dynamically "
                    "defined relational metamodel")


def schema_to_sql(schema) -> str:
    """Print a schema model as SQL DDL (syntactic)."""
    statements: List[str] = []
    for table in schema.tables:
        column_lines = []
        for column in table.columns:
            nullability = "" if column.is_nullable else " NOT NULL"
            primary = " PRIMARY KEY" if column.is_primary else ""
            column_lines.append(
                f"  {column.name} {column.sql_type}{nullability}{primary}")
        for foreign_key in table.foreign_keys:
            column_lines.append(
                f"  CONSTRAINT {foreign_key.name} FOREIGN KEY "
                f"({foreign_key.column.name}) REFERENCES "
                f"{foreign_key.references.name}(id)")
        body = ",\n".join(column_lines)
        statements.append(f"CREATE TABLE {table.name} (\n{body}\n);")
    return "\n\n".join(statements) + "\n"
