"""The transformation engine — the paper's "model compiler".

A :class:`Transformation` owns an ordered rule set and executes in two
phases over the source containment tree:

1. **create** — every non-lazy rule is offered every element (exclusive
   rules stop the search for their element); targets are instantiated and
   recorded in the :class:`~repro.transform.trace.TraceModel`;
2. **bind** — every trace link's rule gets to wire references, resolving
   other images through the trace.  Forward references are therefore
   impossible to get wrong: by bind time all targets exist.

A transformation is *platform-parametric* when run with a platform model:
rules receive it via ``ctx.platform`` and consume its services/types —
this is the paper's "generic engine that takes a model of a platform as
its parameter".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from .. import faults as _faults
from ..mof import txn as _txn
from ..mof.kernel import Element
from ..mof.repository import Model
from ..mof.validate import Diagnostic, Severity
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .errors import RuleApplicationError, TransformError, UnresolvedTraceError
from .rule import Rule
from .trace import DEFAULT_ROLE, TraceLink, TraceModel


@dataclass(frozen=True)
class FailurePolicy:
    """What a :class:`Transformation` does when a rule raises.

    Every rule application (create *and* bind) runs inside a kernel
    transaction, so whatever a failing rule had already mutated is rolled
    back before the policy acts; the difference is what happens next:

    * ``fail-fast`` (default) — re-raise as
      :class:`~repro.transform.errors.RuleApplicationError` with the
      original exception chained; the run stops, the source and any
      shared targets are exactly as before the failing application.
    * ``skip`` — record an ERROR :class:`~repro.mof.validate.Diagnostic`
      (code ``rule-failed``) on the result and carry on with the next
      element; the paper's gates then decide whether a partially mapped
      PSM may proceed.
    * ``retry`` — re-apply up to ``retries`` extra times (each attempt
      freshly rolled back), then fall through to ``then`` (``fail-fast``
      or ``skip``) — for transient faults, not deterministic bugs.
    """

    mode: str = "fail-fast"          # fail-fast | skip | retry
    retries: int = 2                 # extra attempts in retry mode
    then: str = "fail-fast"          # retry exhaustion: fail-fast | skip

    def __post_init__(self):
        if self.mode not in ("fail-fast", "skip", "retry"):
            raise ValueError(f"unknown failure-policy mode {self.mode!r}")
        if self.then not in ("fail-fast", "skip"):
            raise ValueError(f"unknown failure-policy fallback {self.then!r}")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    @property
    def attempts(self) -> int:
        return self.retries + 1 if self.mode == "retry" else 1

    @property
    def on_exhausted(self) -> str:
        return self.then if self.mode == "retry" else self.mode


FAIL_FAST = FailurePolicy("fail-fast")
SKIP = FailurePolicy("skip")


class TransformationContext:
    """Everything rules may consult while executing."""

    def __init__(self, transformation: "Transformation",
                 source_roots: List[Element],
                 platform: Any = None,
                 parameters: Optional[Dict[str, Any]] = None):
        self.transformation = transformation
        self.source_roots = source_roots
        self.platform = platform
        self.parameters = dict(parameters or {})
        self.trace = TraceModel()
        self.helpers: Dict[str, Any] = {}

    # -- trace-backed resolution ----------------------------------------

    def resolve(self, source: Element, role: str = DEFAULT_ROLE,
                *, required: bool = True) -> Optional[Element]:
        """Image of *source*; raises when required and absent."""
        target = self.trace.resolve(source, role)
        if target is None and required:
            raise UnresolvedTraceError(source, role)
        return target

    def resolve_optional(self, source: Optional[Element],
                         role: str = DEFAULT_ROLE) -> Optional[Element]:
        if source is None:
            return None
        return self.trace.resolve(source, role)

    def resolve_all(self, sources: Iterable[Element],
                    role: str = DEFAULT_ROLE) -> List[Element]:
        return self.trace.resolve_all(sources, role)

    def resolve_or_apply(self, source: Element, rule: Rule,
                         role: str = DEFAULT_ROLE) -> Element:
        """Lazy-rule support: transform *source* with *rule* on first
        demand, reuse the trace afterwards."""
        target = self.trace.resolve(source, role, rule=rule.name)
        if target is not None:
            return target
        link = self.transformation._apply_rule(rule, source, self)
        if link is None or role not in link.targets:
            raise UnresolvedTraceError(source, role)
        self.transformation._bind_link(link, self)
        return link.targets[role]


@dataclass
class TransformationResult:
    """Output of one run: target roots, the trace, and statistics.

    ``failures`` holds one ERROR diagnostic (code ``rule-failed``) per
    rule application a ``skip`` failure policy rolled back and skipped;
    it is empty under ``fail-fast`` (the run would have raised instead).
    """

    target_roots: List[Element] = field(default_factory=list)
    trace: TraceModel = field(default_factory=TraceModel)
    elements_visited: int = 0
    elapsed_seconds: float = 0.0
    failures: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def target_model(self, uri: str = "urn:target",
                     name: str = "target") -> Model:
        model = Model(uri, name)
        for root in self.target_roots:
            model.add_root(root)
        return model

    @property
    def primary_root(self) -> Element:
        if not self.target_roots:
            raise TransformError("transformation produced no target roots")
        return self.target_roots[0]


class Transformation:
    """An ordered set of rules executed by the two-phase engine.

    ``kind`` documents whether the transformation is *semantic* (changes
    abstraction level, consumes platform knowledge) or *syntactic* (same
    semantics re-expressed), per the paper's distinction.
    ``abstraction_delta`` counts the levels descended (negative = toward
    platform).
    """

    def __init__(self, name: str, rules: Optional[Iterable[Rule]] = None, *,
                 kind: str = "semantic", abstraction_delta: int = -1,
                 description: str = ""):
        self.name = name
        self.rules: List[Rule] = list(rules or [])
        self.kind = kind
        self.abstraction_delta = abstraction_delta
        self.description = description

    def add_rule(self, rule: Rule) -> Rule:
        self.rules.append(rule)
        return rule

    # -- execution --------------------------------------------------------

    def run(self, source: Union[Model, Element, Iterable[Element]], *,
            platform: Any = None,
            parameters: Optional[Dict[str, Any]] = None,
            failure_policy: Optional[FailurePolicy] = None
            ) -> TransformationResult:
        """Transform *source* (a model, one root, or several roots).

        Each rule application (create and bind alike) runs inside a
        kernel transaction and is governed by *failure_policy* (default
        :data:`FAIL_FAST`): a raising rule never leaves half an
        application behind, whether the run then stops, skips, or
        retries — see :class:`FailurePolicy`.

        When the observability layer is on, the run and its two phases
        are wrapped in ``transform.*`` spans and every rule's match and
        apply costs feed per-rule histograms/counters.
        """
        started = time.perf_counter()
        policy = failure_policy or FAIL_FAST
        roots = self._roots_of(source)
        ctx = TransformationContext(self, roots, platform, parameters)
        failures: List[Diagnostic] = []
        visited = 0
        obs_on = _trace.ON          # sampled once per run
        run_span = (_trace.span("transform.run", transformation=self.name,
                                kind=self.kind) if obs_on else _trace.NULL_SPAN)
        with run_span:
            # Phase 1: create
            with (_trace.span("transform.create") if obs_on
                  else _trace.NULL_SPAN):
                for element in self._all_elements(roots):
                    visited += 1
                    for candidate in self.rules:
                        if candidate.lazy:
                            continue
                        if obs_on:
                            t0 = time.perf_counter()
                            matched = candidate.matches(element, ctx)
                            _metrics.REGISTRY.histogram(
                                "transform.rule.match.seconds",
                                help="per-rule match-test time",
                                rule=candidate.name,
                            ).observe(time.perf_counter() - t0)
                            if not matched:
                                continue
                            t0 = time.perf_counter()
                            self._apply_guarded(candidate, element, ctx,
                                                policy, failures)
                            _metrics.REGISTRY.histogram(
                                "transform.rule.apply.seconds",
                                help="per-rule create-phase apply time",
                                rule=candidate.name,
                            ).observe(time.perf_counter() - t0)
                            _metrics.REGISTRY.counter(
                                "transform.rule.applies",
                                help="create-phase rule applications",
                                rule=candidate.name).inc()
                        else:
                            if not candidate.matches(element, ctx):
                                continue
                            self._apply_guarded(candidate, element, ctx,
                                                policy, failures)
                        if candidate.exclusive:
                            break

            # Phase 2: bind
            with (_trace.span("transform.bind") if obs_on
                  else _trace.NULL_SPAN):
                for link in list(ctx.trace):
                    self._bind_guarded(link, ctx, policy, failures)

            result = TransformationResult(
                target_roots=self._collect_roots(ctx),
                trace=ctx.trace,
                elements_visited=visited,
                elapsed_seconds=time.perf_counter() - started,
                failures=failures,
            )
            if obs_on:
                run_span.tag(elements=visited, links=len(list(ctx.trace)))
                _metrics.REGISTRY.counter(
                    "transform.runs", help="transformation executions").inc()
                _metrics.REGISTRY.counter(
                    "transform.elements.visited",
                    help="source elements offered to rules").inc(visited)
        return result

    @staticmethod
    def _roots_of(source: Union[Model, Element, Iterable[Element]]
                  ) -> List[Element]:
        if isinstance(source, Model):
            return list(source.roots)
        if isinstance(source, Element):
            return [source]
        return list(source)

    @staticmethod
    def _all_elements(roots: List[Element]):
        for root in roots:
            yield root
            yield from root.all_contents()

    def _apply_guarded(self, rule_obj: Rule, element: Element,
                       ctx: TransformationContext, policy: FailurePolicy,
                       failures: List[Diagnostic]) -> Optional[TraceLink]:
        """Apply *rule_obj* under a transaction and the failure policy."""
        last: Optional[Exception] = None
        for _attempt in range(policy.attempts):
            try:
                with _txn.transaction(ctx):
                    return self._apply_rule(rule_obj, element, ctx)
            except Exception as exc:  # noqa: BLE001 - policy decides
                last = exc
        self._rule_failed(rule_obj.name, element, last, "create",
                          policy, failures)
        return None

    def _bind_guarded(self, link: TraceLink, ctx: TransformationContext,
                      policy: FailurePolicy,
                      failures: List[Diagnostic]) -> None:
        last: Optional[Exception] = None
        for _attempt in range(policy.attempts):
            try:
                with _txn.transaction(ctx):
                    self._bind_link(link, ctx)
                return
            except Exception as exc:  # noqa: BLE001 - policy decides
                last = exc
        self._rule_failed(link.rule_name, link.source, last, "bind",
                          policy, failures)

    def _rule_failed(self, rule_name: str, element: Element,
                     error: Exception, phase: str, policy: FailurePolicy,
                     failures: List[Diagnostic]) -> None:
        """The policy's endgame once every attempt was rolled back."""
        if _trace.ON:
            _metrics.REGISTRY.counter(
                "transform.rule.failures",
                help="rule applications rolled back by the failure policy",
                rule=rule_name, phase=phase).inc()
        if policy.on_exhausted == "skip":
            failures.append(Diagnostic(
                Severity.ERROR, element,
                f"rule '{rule_name}' failed in {phase} phase and was "
                f"skipped: {type(error).__name__}: {error}",
                code="rule-failed",
                hint="the application was rolled back; the source and "
                     "other targets are unaffected"))
            return
        if policy.mode == "retry":
            raise RuleApplicationError(rule_name, element, error,
                                       phase=phase,
                                       attempts=policy.attempts) from error
        raise error

    def _apply_rule(self, rule_obj: Rule, element: Element,
                    ctx: TransformationContext) -> Optional[TraceLink]:
        if _faults.ACTIVE is not None:
            _faults.probe("transform.rule")
        produced = rule_obj.create(element, ctx)
        if produced is None:
            targets: Dict[str, Element] = {}
        elif isinstance(produced, dict):
            targets = produced
        elif isinstance(produced, Element):
            targets = {DEFAULT_ROLE: produced}
        else:
            raise TransformError(
                f"rule '{rule_obj.name}' returned {produced!r}; expected "
                f"an Element, a role dict, or None")
        link = TraceLink(rule_obj.name, element, targets)
        ctx.trace.add(link)
        return link

    def _bind_link(self, link: TraceLink, ctx: TransformationContext) -> None:
        rule_obj = self._rule_named(link.rule_name)
        if rule_obj is not None:
            rule_obj.bind(link.source, link.targets, ctx)

    def _rule_named(self, name: str) -> Optional[Rule]:
        for rule_obj in self.rules:
            if rule_obj.name == name:
                return rule_obj
        return None

    @staticmethod
    def _collect_roots(ctx: TransformationContext) -> List[Element]:
        """Container-less targets, in creation order, are the new roots."""
        roots: List[Element] = []
        for link in ctx.trace:
            for target in link.targets.values():
                if target.container is None and target not in roots:
                    roots.append(target)
        return roots

    @property
    def is_semantic(self) -> bool:
        return self.kind == "semantic"

    @property
    def is_syntactic(self) -> bool:
        return self.kind == "syntactic"

    def __repr__(self) -> str:
        return (f"<Transformation {self.name} ({self.kind}, "
                f"{len(self.rules)} rules)>")
