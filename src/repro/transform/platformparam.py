"""Platform-parametric transformations.

The paper's generalisation of MDA: "a model may actually be a structure of
models and a transformation a generic engine that takes a model of a
platform as its parameter."  A :class:`PlatformParametricTransformation`
wraps a factory that, given a platform description model, produces the
concrete :class:`~repro.transform.engine.Transformation` for that platform
— one generic engine, many platforms.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from ..mof.kernel import Element
from ..mof.repository import Model
from .engine import Transformation, TransformationResult

TransformationFactory = Callable[[Any], Transformation]


class PlatformParametricTransformation:
    """A generic engine instantiated per platform model."""

    def __init__(self, name: str, factory: TransformationFactory, *,
                 description: str = ""):
        self.name = name
        self.factory = factory
        self.description = description
        self._cache: Dict[int, Transformation] = {}

    def for_platform(self, platform: Any) -> Transformation:
        """The concrete transformation for *platform* (cached per platform
        object)."""
        key = id(platform)
        if key not in self._cache:
            transformation = self.factory(platform)
            transformation.name = f"{self.name}[{_platform_label(platform)}]"
            self._cache[key] = transformation
        return self._cache[key]

    def run(self, source: Union[Model, Element, List[Element]],
            platform: Any,
            parameters: Optional[Dict[str, Any]] = None
            ) -> TransformationResult:
        """Instantiate for *platform* and run — the platform model is both
        the factory parameter and available to rules as ``ctx.platform``."""
        transformation = self.for_platform(platform)
        return transformation.run(source, platform=platform,
                                  parameters=parameters)

    def __repr__(self) -> str:
        return f"<PlatformParametricTransformation {self.name}>"


def _platform_label(platform: Any) -> str:
    name = getattr(platform, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(platform).__name__
