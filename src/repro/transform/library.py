"""Reusable standard transformations.

* :class:`CloneRule` / :func:`clone_transformation` — a *syntactic*
  transformation: reflective deep copy of any model (same abstraction
  level, same semantics; the paper's example of what most "code
  generators" actually do);
* :func:`flatten_state_machine` — a *semantic* transformation collapsing a
  hierarchical state machine to an equivalent flat one (used by codegen
  and the model checker);
* :func:`state_machine_to_table` — the flat transition-table view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..mof.kernel import Attribute, Element, MetaClass, Reference
from ..uml.statemachines import (
    FinalState,
    Pseudostate,
    Region,
    State,
    StateMachine,
    Transition,
    Vertex,
)
from .engine import Transformation, TransformationContext
from .errors import TransformError
from .rule import Rule


class CloneRule(Rule):
    """Reflectively clones every element conforming to ``source_type``.

    create: fresh instance with primitive attributes copied;
    bind: containment re-established between images, cross-references
    resolved through the trace (dangling ones dropped).
    """

    def __init__(self, source_type: Union[MetaClass, type],
                 name: str = "clone"):
        super().__init__(name=name, source_type=source_type, exclusive=True)

    def create(self, source: Element, ctx: TransformationContext) -> Element:
        target = source.meta.instantiate()
        for feature in source.meta.all_features().values():
            if not isinstance(feature, Attribute) or feature.derived:
                continue
            if feature.many:
                target.eget(feature.name).extend(source.eget(feature.name))
            elif source.eis_set(feature.name):
                target.eset(feature.name, source.eget(feature.name))
        return target

    def bind(self, source: Element, targets: Dict[str, Element],
             ctx: TransformationContext) -> None:
        target = targets["default"]
        for feature in source.meta.all_features().values():
            if not isinstance(feature, Reference) or feature.derived:
                continue
            if not feature.containment:
                opposite = feature.opposite
                if opposite is not None and opposite.containment:
                    continue    # back-pointer: restored by containment
            value = source.eget(feature.name)
            originals = list(value) if feature.many else (
                [value] if value is not None else [])
            images = [ctx.resolve_optional(original)
                      for original in originals]
            images = [image for image in images if image is not None]
            if feature.many:
                collection = target.eget(feature.name)
                for image in images:
                    if image not in collection:
                        collection.append(image)
            elif images:
                current = target.eget(feature.name)
                if current is not images[0]:
                    target.eset(feature.name, images[0])


def clone_transformation(root_type: Union[MetaClass, type],
                         name: str = "identity") -> Transformation:
    """A syntactic identity transformation over models typed by
    *root_type* (use the metamodel's root, e.g. ``UmlElement``)."""
    return Transformation(name, [CloneRule(root_type)], kind="syntactic",
                          abstraction_delta=0,
                          description="reflective deep copy — same "
                                      "abstraction level, same semantics")


# ---------------------------------------------------------------------------
# State machine flattening
# ---------------------------------------------------------------------------

def _leaf_states(state: State) -> List[State]:
    if not state.is_composite:
        return [state]
    leaves: List[State] = []
    for sub in state.all_substates():
        if not sub.is_composite:
            leaves.append(sub)
    return leaves


def _flat_name(vertex: Vertex) -> str:
    """Qualified flat-state name: path of state names joined by '_'."""
    parts: List[str] = [vertex.name]
    current = vertex.container       # region
    while current is not None:
        parent = current.container   # state or machine
        if isinstance(parent, State):
            parts.append(parent.name)
            current = parent.container
        else:
            break
    return "_".join(reversed(parts))


def _initial_leaf(region: Region) -> State:
    """Follow initial pseudostates down to the default leaf state."""
    initial = region.initial_pseudostate()
    if initial is None:
        raise TransformError(
            f"region '{region.name}' has no initial pseudostate")
    outgoing = initial.outgoing()
    if len(outgoing) != 1:
        raise TransformError(
            f"initial pseudostate of region '{region.name}' must have "
            f"exactly one outgoing transition")
    target = outgoing[0].target
    if isinstance(target, State) and target.is_composite:
        return _entry_leaf(target)
    if isinstance(target, State):
        return target
    raise TransformError(
        f"initial transition of region '{region.name}' must enter a state")


def _entry_leaf(state: State) -> State:
    """The leaf reached when entering *state* by default."""
    if not state.is_composite:
        return state
    if len(state.regions) != 1:
        raise TransformError(
            f"flattening supports single-region composites; state "
            f"'{state.name}' has {len(state.regions)} regions")
    return _initial_leaf(state.regions[0])


def _entry_actions_to(leaf: State, boundary: Optional[State]) -> List[str]:
    """Entry actions executed descending from (exclusive) *boundary* down
    to *leaf*, outermost first."""
    chain: List[State] = []
    current: Optional[Element] = leaf
    while isinstance(current, State) and current is not boundary:
        chain.append(current)
        region = current.container
        current = region.container if region is not None else None
        if not isinstance(current, State):
            break
    actions = [s.entry for s in reversed(chain) if s.entry]
    return actions


def _exit_actions_from(leaf: State, boundary: Optional[State]) -> List[str]:
    """Exit actions executed ascending from *leaf* up to (exclusive)
    *boundary*, innermost first."""
    actions: List[str] = []
    current: Optional[Element] = leaf
    while isinstance(current, State) and current is not boundary:
        if current.exit:
            actions.append(current.exit)
        region = current.container
        current = region.container if region is not None else None
        if not isinstance(current, State):
            break
    return actions


def flatten_state_machine(machine: StateMachine,
                          name: Optional[str] = None) -> StateMachine:
    """Collapse a hierarchical (single-region-composite) state machine into
    an equivalent flat one.

    Transitions leaving a composite state are replicated from each of its
    leaf states; entry/exit actions along the crossed boundaries are
    composed into the transition effect, preserving UML run-to-completion
    semantics for the supported subset.
    """
    if len(machine.regions) != 1:
        raise TransformError("flattening expects exactly one top region")
    top = machine.regions[0]

    flat = StateMachine(name=name or f"{machine.name}_flat")
    flat_region = flat.add_region("main")
    flat_states: Dict[int, State] = {}
    flat_choices: Dict[int, Pseudostate] = {}

    def _state_image(leaf: State) -> State:
        image = flat_states.get(id(leaf))
        if image is None:
            image = flat_region.add_state(
                _flat_name(leaf), do_activity=leaf.do_activity)
            flat_states[id(leaf)] = image
        return image

    def _choice_image(choice: Pseudostate) -> Pseudostate:
        image = flat_choices.get(id(choice))
        if image is None:
            image = flat_region.add_choice(_flat_name(choice))
            flat_choices[id(choice)] = image
        return image

    # all leaf states anywhere in the hierarchy
    def _collect(region: Region):
        for vertex in region.subvertices:
            if isinstance(vertex, State):
                if vertex.is_composite:
                    for sub_region in vertex.regions:
                        _collect(sub_region)
                else:
                    _state_image(vertex)
    _collect(top)

    # initial
    initial_leaf = _initial_leaf(top)
    flat_initial = flat_region.add_initial()
    entry_chain = [a for a in _entry_actions_to(initial_leaf, None)]
    flat_region.add_transition(flat_initial, _state_image(initial_leaf),
                               effect="; ".join(entry_chain))

    final_image: Optional[FinalState] = None

    def _final_image() -> FinalState:
        nonlocal final_image
        if final_image is None:
            final_image = flat_region.add_final()
        return final_image

    # transitions
    def _lift(region: Region, enclosing: Optional[State]):
        for transition in region.transitions:
            source = transition.source
            target = transition.target
            if isinstance(source, Pseudostate) and source.kind == "initial":
                continue    # handled via entry chains
            if isinstance(source, Pseudostate) and source.kind == "choice":
                # choice -> X: entries composed, no exits (choice is
                # transient and belongs to 'enclosing')
                if isinstance(target, FinalState):
                    flat_region.add_transition(
                        _choice_image(source), _final_image(),
                        trigger=transition.trigger, guard=transition.guard,
                        effect=transition.effect)
                elif isinstance(target, Pseudostate) \
                        and target.kind == "choice":
                    flat_region.add_transition(
                        _choice_image(source), _choice_image(target),
                        trigger=transition.trigger, guard=transition.guard,
                        effect=transition.effect)
                elif isinstance(target, State):
                    target_leaf = _entry_leaf(target)
                    entries = _entry_actions_to(target_leaf, enclosing)
                    effect_parts = (([transition.effect]
                                     if transition.effect else [])
                                    + entries)
                    flat_region.add_transition(
                        _choice_image(source), _state_image(target_leaf),
                        trigger=transition.trigger, guard=transition.guard,
                        effect="; ".join(effect_parts))
                continue
            source_leaves: List[State]
            if isinstance(source, State):
                source_leaves = _leaf_states(source)
            else:
                continue    # junction/history unsupported in flat subset
            if transition.kind == "internal":
                for leaf in source_leaves:
                    flat_region.add_transition(
                        _state_image(leaf), _state_image(leaf),
                        trigger=transition.trigger, guard=transition.guard,
                        effect=transition.effect, kind="internal")
                continue
            for leaf in source_leaves:
                exits = _exit_actions_from(leaf, enclosing)
                if isinstance(target, FinalState):
                    effect_parts = exits + ([transition.effect]
                                            if transition.effect else [])
                    flat_region.add_transition(
                        _state_image(leaf), _final_image(),
                        trigger=transition.trigger, guard=transition.guard,
                        effect="; ".join(effect_parts))
                    continue
                if isinstance(target, Pseudostate) \
                        and target.kind == "choice":
                    exits = _exit_actions_from(leaf, enclosing)
                    effect_parts = exits + ([transition.effect]
                                            if transition.effect else [])
                    flat_region.add_transition(
                        _state_image(leaf), _choice_image(target),
                        trigger=transition.trigger, guard=transition.guard,
                        effect="; ".join(effect_parts))
                    continue
                if not isinstance(target, State):
                    continue
                target_leaf = _entry_leaf(target)
                entries = _entry_actions_to(target_leaf, enclosing)
                effect_parts = (exits
                                + ([transition.effect] if transition.effect
                                   else [])
                                + entries)
                flat_region.add_transition(
                    _state_image(leaf), _state_image(target_leaf),
                    trigger=transition.trigger, guard=transition.guard,
                    effect="; ".join(effect_parts))
        for vertex in region.subvertices:
            if isinstance(vertex, State) and vertex.is_composite:
                for sub_region in vertex.regions:
                    _lift(sub_region, vertex)
    _lift(top, None)
    return flat


@dataclass
class TransitionRow:
    """One row of a flat transition table."""

    source: str
    trigger: str
    guard: str
    effect: str
    target: str


def state_machine_to_table(machine: StateMachine) -> List[TransitionRow]:
    """The flat transition-table view (flattening first if needed)."""
    if any(s.is_composite for s in machine.all_vertices()
           if isinstance(s, State)):
        machine = flatten_state_machine(machine)
    rows: List[TransitionRow] = []
    for transition in machine.all_transitions():
        source = transition.source
        target = transition.target
        rows.append(TransitionRow(
            source=source.name if source else "?",
            trigger=transition.trigger,
            guard=transition.guard,
            effect=transition.effect,
            target=target.name if target else "?",
        ))
    return rows
