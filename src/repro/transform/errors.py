"""Errors raised by the transformation engine."""

from __future__ import annotations


class TransformError(Exception):
    """Base class for transformation failures."""


class RuleError(TransformError):
    """A rule is ill-formed (no source type, bad guard, ...)."""


class UnresolvedTraceError(TransformError):
    """A bind phase asked for the image of a source element that no rule
    transformed."""

    def __init__(self, source: object, role: str):
        self.source = source
        self.role = role
        super().__init__(
            f"no trace target for {source!r} (role {role!r}); "
            f"did a rule forget to transform it?"
        )


class GateClosedError(TransformError):
    """A methodology gate refused to let the transformation run (failing
    tests at the source abstraction level)."""


class RuleApplicationError(TransformError):
    """A rule raised while being applied and the failure policy stopped
    the run; the original exception is ``__cause__`` / ``.error``."""

    def __init__(self, rule_name: str, element: object, error: Exception,
                 phase: str = "create", attempts: int = 1):
        self.rule_name = rule_name
        self.element = element
        self.error = error
        self.phase = phase
        self.attempts = attempts
        retried = f" after {attempts} attempts" if attempts > 1 else ""
        super().__init__(
            f"rule '{rule_name}' failed on {element!r} in {phase} phase"
            f"{retried}: {type(error).__name__}: {error}"
        )
