"""The trace model: a first-class record of what a transformation did.

MDA's accountability story hinges on traces — they are how refinement is
checked, how binds resolve forward references, and how a PSM element can be
tracked back to the PIM requirement it realises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..mof.kernel import Element

DEFAULT_ROLE = "default"


@dataclass
class TraceLink:
    """One application of one rule to one source element.

    ``targets`` maps role names to created elements; most rules create one
    target under the :data:`DEFAULT_ROLE`.
    """

    rule_name: str
    source: Element
    targets: Dict[str, Element] = field(default_factory=dict)

    def target(self, role: str = DEFAULT_ROLE) -> Optional[Element]:
        return self.targets.get(role)

    def __repr__(self) -> str:
        targets = {role: repr(t) for role, t in self.targets.items()}
        return f"<TraceLink {self.rule_name}: {self.source!r} -> {targets}>"


class TraceModel:
    """All trace links of one transformation run, indexed both ways."""

    def __init__(self) -> None:
        self.links: List[TraceLink] = []
        self._by_source: Dict[int, List[TraceLink]] = {}
        self._by_target: Dict[int, TraceLink] = {}

    def add(self, link: TraceLink) -> TraceLink:
        self.links.append(link)
        self._by_source.setdefault(id(link.source), []).append(link)
        for target in link.targets.values():
            self._by_target[id(target)] = link
        return link

    # -- forward lookup ----------------------------------------------------

    def links_for(self, source: Element) -> List[TraceLink]:
        return list(self._by_source.get(id(source), []))

    def resolve(self, source: Element, role: str = DEFAULT_ROLE,
                rule: Optional[str] = None) -> Optional[Element]:
        """The image of *source* under the given role (and optionally a
        specific rule).  Returns None when untransformed."""
        for link in self._by_source.get(id(source), []):
            if rule is not None and link.rule_name != rule:
                continue
            target = link.targets.get(role)
            if target is not None:
                return target
        return None

    def resolve_all(self, sources, role: str = DEFAULT_ROLE) -> List[Element]:
        """Images of each source that has one, in order."""
        out: List[Element] = []
        for source in sources:
            target = self.resolve(source, role)
            if target is not None:
                out.append(target)
        return out

    def is_transformed(self, source: Element) -> bool:
        return id(source) in self._by_source

    # -- backward lookup -------------------------------------------------

    def origin_of(self, target: Element) -> Optional[Element]:
        """The source element from which *target* was created."""
        link = self._by_target.get(id(target))
        return link.source if link is not None else None

    def link_of_target(self, target: Element) -> Optional[TraceLink]:
        return self._by_target.get(id(target))

    # -- stats ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self) -> Iterator[TraceLink]:
        return iter(self.links)

    def rules_used(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for link in self.links:
            counts[link.rule_name] = counts.get(link.rule_name, 0) + 1
        return counts

    def sources(self) -> List[Element]:
        seen: Dict[int, Element] = {}
        for link in self.links:
            seen.setdefault(id(link.source), link.source)
        return list(seen.values())

    def all_targets(self) -> List[Element]:
        seen: Dict[int, Element] = {}
        for link in self.links:
            for target in link.targets.values():
                seen.setdefault(id(target), target)
        return list(seen.values())
