"""``repro.transform`` — the rule-based model transformation engine.

* :class:`Rule` / :func:`rule` — declarative two-phase rules;
* :class:`Transformation` — the engine (the paper's "model compiler");
* :class:`TraceModel` — first-class transformation traces;
* :class:`TransformationChain` — gated PIM→PSM→... pipelines;
* :func:`check_refinement` — trace-based refinement validation;
* :class:`PlatformParametricTransformation` — one generic engine, many
  platforms;
* library: :func:`clone_transformation` (syntactic identity),
  :func:`flatten_state_machine`, :func:`state_machine_to_table`.
"""

from .chain import (
    ChainResult,
    ChainStep,
    GateVerdict,
    StepRecord,
    TransformationChain,
)
from .engine import (
    FAIL_FAST,
    SKIP,
    FailurePolicy,
    Transformation,
    TransformationContext,
    TransformationResult,
)
from .errors import (
    GateClosedError,
    RuleApplicationError,
    RuleError,
    TransformError,
    UnresolvedTraceError,
)
from .library import (
    CloneRule,
    TransitionRow,
    clone_transformation,
    flatten_state_machine,
    state_machine_to_table,
)
from .platformparam import PlatformParametricTransformation
from .refinement import check_refinement, refinement_completeness_ratio
from .rule import FunctionRule, Rule, rule
from .trace import DEFAULT_ROLE, TraceLink, TraceModel
from .uml2rel import (
    RELATIONAL,
    schema_to_sql,
    uml_to_relational,
)

__all__ = [
    "ChainResult", "ChainStep", "CloneRule", "DEFAULT_ROLE", "FAIL_FAST",
    "FailurePolicy", "FunctionRule",
    "RELATIONAL", "SKIP", "schema_to_sql", "uml_to_relational",
    "GateClosedError", "GateVerdict", "PlatformParametricTransformation",
    "Rule", "RuleApplicationError", "RuleError", "StepRecord", "TraceLink",
    "TraceModel",
    "TransformError", "Transformation", "TransformationChain",
    "TransformationContext", "TransformationResult", "TransitionRow",
    "UnresolvedTraceError", "check_refinement", "clone_transformation",
    "flatten_state_machine", "refinement_completeness_ratio", "rule",
    "state_machine_to_table",
]
