"""Refinement checking between a source model and a transformation result.

A PSM *refines* its PIM when nothing the PIM promised was dropped and the
structure was mapped coherently.  These checks operate purely on the trace
model, which makes them transformation-agnostic:

* **completeness** — every source element of the required metaclasses has
  an image;
* **name preservation** — images keep (or embed) their origin's name;
* **containment coherence** — if two mapped source elements are in a
  container/contained relationship, their images are too (possibly across
  several levels), unless the transformation explicitly restructured them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..mof.kernel import Element, MetaClass
from ..mof.validate import Severity, ValidationReport
from .engine import TransformationResult
from .trace import TraceModel


def _metaclasses(specs: Iterable[Union[MetaClass, type]]) -> List[MetaClass]:
    out: List[MetaClass] = []
    for spec in specs:
        out.append(spec if isinstance(spec, MetaClass) else spec._meta)
    return out


def _name_of(element: Element) -> Optional[str]:
    feature = element.meta.find_feature("name")
    if feature is None or feature.many:
        return None
    value = element.eget("name")
    return value if isinstance(value, str) else None


def _transitively_contains(ancestor: Element, descendant: Element) -> bool:
    current: Optional[Element] = descendant.container
    while current is not None:
        if current is ancestor:
            return True
        current = current.container
    return False


def check_refinement(source_roots: Union[Element, List[Element]],
                     result: TransformationResult, *,
                     required_types: Iterable[Union[MetaClass, type]] = (),
                     name_preserving: bool = True,
                     check_containment: bool = True) -> ValidationReport:
    """Validate that *result* is a refinement of the source model."""
    if isinstance(source_roots, Element):
        source_roots = [source_roots]
    report = ValidationReport()
    trace: TraceModel = result.trace
    required = _metaclasses(required_types)

    # completeness
    for root in source_roots:
        for element in [root] + list(root.all_contents()):
            if required and not any(element.meta.conforms_to(mc)
                                    for mc in required):
                continue
            if required and not trace.is_transformed(element):
                report.add(Severity.ERROR, element,
                           "source element has no image in the target "
                           "model", code="refine-incomplete")

    # name preservation + containment coherence
    for link in trace:
        source_name = _name_of(link.source)
        for role, target in link.targets.items():
            if name_preserving and source_name:
                target_name = _name_of(target)
                if target_name is not None and \
                        source_name.lower() not in target_name.lower():
                    report.add(Severity.WARNING, target,
                               f"image '{target_name}' does not embed "
                               f"origin name '{source_name}'",
                               code="refine-name")
    if check_containment:
        _check_containment_coherence(trace, report)
    return report


def _check_containment_coherence(trace: TraceModel,
                                 report: ValidationReport) -> None:
    for link in trace:
        source = link.source
        container = source.container
        if container is None or not trace.is_transformed(container):
            continue
        source_image = link.target()
        container_image = trace.resolve(container)
        if source_image is None or container_image is None:
            continue
        if source_image is container_image:
            continue    # merged into the same target: coherent
        if not _transitively_contains(container_image, source_image):
            report.add(Severity.WARNING, source_image,
                       f"containment not preserved: origin was inside "
                       f"{container!r} but image is not inside its image",
                       code="refine-containment")


def refinement_completeness_ratio(
        source_roots: Union[Element, List[Element]],
        trace: TraceModel,
        required_types: Iterable[Union[MetaClass, type]] = ()) -> float:
    """Fraction of (required) source elements that have an image —
    a scalar used by the experiment harness."""
    if isinstance(source_roots, Element):
        source_roots = [source_roots]
    required = _metaclasses(required_types)
    total = 0
    mapped = 0
    for root in source_roots:
        for element in [root] + list(root.all_contents()):
            if required and not any(element.meta.conforms_to(mc)
                                    for mc in required):
                continue
            total += 1
            if trace.is_transformed(element):
                mapped += 1
    return mapped / total if total else 1.0
