"""Seeded, reproducible model corpora — the workload engine.

This is the subsystem's front door: :func:`generate_model` builds one
seeded model (random or coverage-directed), optionally repairs it to
zero error diagnostics (:mod:`repro.generate.repair`), scores coverage
(:mod:`repro.generate.coverage`), assigns **stable element ids** (so the
same ``(package, size, seed)`` serializes byte-identically, across
processes *and* within one), and wraps everything in a
:class:`GenerationResult` ready for :class:`~repro.session.Session`,
the benchmarks, or crash-safe persistence.  :func:`generate_corpus`
fans that out over seed/size matrices.

Built-in generation profiles:

``demo``
    the self-contained library metamodel with registered OCL invariants
    (:func:`repro.generate.random.demo_package`) — the default, because
    every check family has real work to do on it;
``uml``
    the curated UML slice (:data:`repro.generate.random.UML_SAFE_CLASSES`)
    rooted at ``UmlModel``.

With the observability layer on, generation runs under ``generate.build``
/ ``generate.repair`` spans and lands in the ``generate.*`` metric
families (elements produced, repair outcomes, coverage gauges).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..mof import Element, MetaPackage
from ..mof.repository import Model
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .coverage import CoverageMap, CoverageReport, DirectedGenerator
from .random import (
    UML_SAFE_CLASSES,
    ModelGenerator,
    demo_package,
)
from .repair import RepairEngine, RepairReport

#: the built-in generation profiles the CLI exposes
PACKAGES = ("demo", "uml")


def make_generator(package: Union[str, MetaPackage] = "demo", *,
                   seed: int = 0, directed: bool = False,
                   violate_lower_bounds: bool = False,
                   **kwargs: Any) -> ModelGenerator:
    """A (possibly coverage-directed) generator for a built-in profile
    or an arbitrary metamodel package.

    Unlike the fuzzer-profile helpers, ``repro.generate`` defaults to
    *satisfying* lower multiplicity bounds — pass
    ``violate_lower_bounds=True`` to get fuzzer-style unsatisfied
    models.
    """
    cls = DirectedGenerator if directed else ModelGenerator
    if isinstance(package, MetaPackage):
        return cls(package, seed=seed,
                   violate_lower_bounds=violate_lower_bounds, **kwargs)
    if package == "demo":
        return cls(demo_package(), seed=seed, root_class="GLibrary",
                   violate_lower_bounds=violate_lower_bounds, **kwargs)
    if package == "uml":
        from ..uml import UML
        return cls(UML, seed=seed, classes=UML_SAFE_CLASSES,
                   root_class="UmlModel",
                   violate_lower_bounds=violate_lower_bounds, **kwargs)
    raise ValueError(f"unknown generation package {package!r}; expected "
                     f"one of {list(PACKAGES)} or a MetaPackage")


class GenerationResult:
    """One generated model plus everything measured along the way."""

    def __init__(self, *, model: Model, root: Element,
                 generator: ModelGenerator,
                 package: str, size: int, seed: int,
                 coverage: CoverageMap,
                 repair: Optional[RepairReport],
                 elapsed_seconds: float):
        self.model = model
        self.root = root
        self.generator = generator
        self.package = package
        self.size = size
        self.seed = seed
        self.coverage = coverage
        self.repair = repair
        self.elapsed_seconds = elapsed_seconds

    @property
    def n_elements(self) -> int:
        return 1 + sum(1 for _ in self.root.all_contents())

    def coverage_report(self) -> CoverageReport:
        return self.coverage.report()

    def session(self, **kwargs: Any) -> "Any":
        """A :class:`~repro.session.Session` over the generated model."""
        from ..session import Session
        return Session(self.model, **kwargs)

    def summary(self) -> str:
        elements = self.n_elements
        rate = elements / self.elapsed_seconds \
            if self.elapsed_seconds > 0 else float("inf")
        lines = [f"generated {elements} element(s) "
                 f"[{self.package}, seed={self.seed}, "
                 f"size={self.size}] in "
                 f"{self.elapsed_seconds * 1e3:.1f} ms "
                 f"({rate:,.0f} elem/s)"]
        if self.repair is not None:
            lines.append(self.repair.render())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<GenerationResult package={self.package!r} "
                f"seed={self.seed} elements={self.n_elements} "
                f"repaired={self.repair is not None}>")


def assign_stable_ids(root: Element, prefix: str = "g") -> int:
    """Give every element in the tree a position-derived id.

    The kernel's lazy ``eid`` counter is process-global, so two
    generations in one process would serialize differently; reseating
    ids from the containment order makes the same ``(package, size,
    seed)`` byte-identical everywhere.  Returns the element count.
    """
    count = 0
    for element in [root] + list(root.all_contents()):
        element.set_eid(f"{prefix}{count}")
        count += 1
    return count


def generate_model(package: Union[str, MetaPackage] = "demo", *,
                   size: int = 1000, seed: int = 0,
                   repair: bool = False, directed: bool = False,
                   violate_lower_bounds: bool = False,
                   max_repair_iterations: int = 10,
                   stable_ids: bool = True,
                   uri: Optional[str] = None,
                   **generator_kwargs: Any) -> GenerationResult:
    """Generate one seeded model; optionally repair it to zero errors.

    The returned :class:`GenerationResult` carries the wrapped
    :class:`~repro.mof.repository.Model`, the coverage map (measured
    post-hoc for plain random generation, live for ``directed=True``)
    and, when ``repair=True``, the :class:`RepairReport` of the
    constraint-guided repair loop.
    """
    package_name = package.name if isinstance(package, MetaPackage) \
        else package
    started = time.perf_counter()
    with (_trace.span("generate.build", package=package_name,
                      size=size, seed=seed, directed=str(directed))
          if _trace.ON else _trace.NULL_SPAN):
        generator = make_generator(
            package, seed=seed, directed=directed,
            violate_lower_bounds=violate_lower_bounds,
            **generator_kwargs)
        root = generator.generate(size)
    if uri is None:
        uri = (f"repro:generated/{package_name}"
               f"/seed{seed}-size{size}")
    model = Model(uri)
    model.add_root(root)
    repair_report: Optional[RepairReport] = None
    if repair:
        engine = RepairEngine(
            model, generator=generator, seed=seed,
            max_iterations=max_repair_iterations)
        repair_report = engine.repair()
    coverage = generator.coverage
    if coverage is None:
        coverage = CoverageMap(generator)
    coverage.measure(root)
    if stable_ids:
        assign_stable_ids(root)
    elapsed = time.perf_counter() - started
    result = GenerationResult(
        model=model, root=root, generator=generator,
        package=package_name, size=size, seed=seed,
        coverage=coverage, repair=repair_report,
        elapsed_seconds=elapsed)
    if _trace.ON:
        _metrics.REGISTRY.counter(
            "generate.models", help="models generated",
            package=package_name,
            mode="directed" if directed else "random").inc()
        _metrics.REGISTRY.counter(
            "generate.elements",
            help="elements produced by the corpus engine",
            package=package_name).inc(result.n_elements)
        report = coverage.report()
        for kind, fraction in (
                ("metaclass", report.metaclass_fraction),
                ("end", report.end_fraction),
                ("branch", report.branch_fraction)):
            _metrics.REGISTRY.gauge(
                "generate.coverage",
                help="coverage fraction of the last generated model",
                package=package_name, kind=kind).set(fraction)
    return result


def generate_corpus(package: Union[str, MetaPackage] = "demo", *,
                    sizes: Iterable[int] = (1000,),
                    seeds: Iterable[int] = (0,),
                    **kwargs: Any) -> Iterator[GenerationResult]:
    """Generate the full ``sizes`` × ``seeds`` matrix, lazily."""
    for size in sizes:
        for seed in seeds:
            yield generate_model(package, size=size, seed=seed, **kwargs)


def corpus_manifest(results: List[GenerationResult]) -> Dict[str, Any]:
    """A JSON-ready summary of a generated corpus (for benchmark and CI
    artifacts)."""
    return {
        "models": [
            {
                "package": r.package,
                "seed": r.seed,
                "size": r.size,
                "elements": r.n_elements,
                "uri": r.model.uri,
                "repair": (r.repair.to_json()
                           if r.repair is not None else None),
                "coverage": r.coverage_report().to_json(),
            }
            for r in results
        ],
    }
