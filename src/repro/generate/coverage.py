"""Coverage instrumentation and coverage-directed generation.

Generated corpora are only as useful as the variety they exercise.  This
module makes that variety *measurable* and then *steerable*:

* :class:`CoverageMap` enumerates, from a generator's metamodel slice,
  every target a corpus could exercise — each concrete **metaclass**,
  each **association end** (non-derived reference feature reachable
  during generation), and each **decision branch** of the registered
  compiled-OCL invariants (``and``/``or``/``implies``/``xor`` operands
  and ``if`` conditions, each with a true and a false outcome).  Branch
  targets are enumerable because every invariant keeps its parsed AST
  and the compiler's node cache makes compiling a decision sub-expression
  against the invariant's context metaclass essentially free.
* :class:`DirectedGenerator` biases the base generator's two choice
  points (which containment slot to grow, which metaclass to
  instantiate) toward still-uncovered targets, and opens its reference
  sprinkling with one deliberate link per uncovered end — reaching full
  metaclass + end coverage in far fewer elements than blind random
  generation (benchmark E19 holds the inequality).

Coverage recording happens inline while the generator runs (the base
:class:`~repro.generate.random.ModelGenerator` calls back into an
attached map); :meth:`CoverageMap.measure` additionally scores any
finished model post-hoc, which is how branch outcomes are collected.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..mof import Attribute, Element, MetaClass, MInteger, MReal, Reference
from ..ocl.ast import BinOp, If, Node
from ..ocl.compile import compile_expression
from ..ocl.evaluator import Environment
from .random import ModelGenerator

#: binary operators whose right operand is conditionally evaluated —
#: each contributes one two-outcome decision (its *left* operand)
_DECISION_OPS = ("and", "or", "implies", "xor")


def _walk(node: Any) -> Iterable[Node]:
    """Pre-order walk over an OCL AST (dataclass field order)."""
    if not isinstance(node, Node):
        return
    yield node
    for name in node.__dataclass_fields__:
        if name == "position":
            continue
        value = getattr(node, name)
        if isinstance(value, Node):
            yield from _walk(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    yield from _walk(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        yield from _walk(sub)


def decision_nodes(ast: Node) -> List[Node]:
    """The decision sub-expressions of *ast*, in pre-order.

    One entry per short-circuit operand / ``if`` condition; evaluating
    the returned sub-expression against an instance tells which branch
    that instance drives the invariant down.
    """
    decisions: List[Node] = []
    for node in _walk(ast):
        if isinstance(node, BinOp) and node.op in _DECISION_OPS:
            decisions.append(node.left)
        elif isinstance(node, If):
            decisions.append(node.condition)
    return decisions


class CoverageMap:
    """Tracks which generation targets a corpus has exercised.

    Built from a :class:`~repro.generate.random.ModelGenerator` so the
    target universe matches exactly what that generator *could* produce:
    its concrete metaclasses, the reference features reachable from
    them, and the decision branches of every invariant registered on
    them (or their superclasses).
    """

    def __init__(self, generator: ModelGenerator):
        self.generator = generator
        self.metaclass_targets: Dict[int, str] = {}
        self.end_targets: Dict[int, str] = {}
        self.branch_targets: Dict[str, Tuple[Any, Node]] = {}
        self._covered_metaclasses: Set[int] = set()
        self._covered_ends: Set[int] = set()
        self._covered_branches: Set[str] = set()
        # per-metaclass invariant decisions: [(branch key stem, closure)]
        self._decisions: Dict[int, List[Tuple[str, Any]]] = {}
        # one base Environment per scored root — building it walks the
        # whole tree, so per-element construction would be O(n^2)
        self._env_root: Optional[Element] = None
        self._env: Optional[Environment] = None
        self._enumerate_targets()

    # -- target enumeration ------------------------------------------------

    def _enumerate_targets(self) -> None:
        generator = self.generator
        allowed = list(generator.classes)
        for metaclass in allowed:
            self.metaclass_targets[id(metaclass)] = metaclass.name
        # containment ends reachable while growing
        for slots in generator.containments.values():
            for feature, _targets in slots:
                self.end_targets.setdefault(
                    id(feature), _end_label(feature))
        # cross-reference ends reachable while sprinkling
        for metaclass in allowed:
            for feature in generator.cross_reference_features(metaclass):
                if any(c.conforms_to(feature.target) for c in allowed):
                    self.end_targets.setdefault(
                        id(feature), _end_label(feature))
        # invariant decision branches, compiled against their context
        seen_invariants: Set[int] = set()
        for metaclass in allowed:
            chain = [metaclass] + metaclass.all_superclasses()
            decisions: List[Tuple[str, Any]] = []
            for owner in chain:
                for invariant in owner.invariants:
                    stem = f"{owner.name}::{invariant.name}"
                    for index, decision in enumerate(
                            decision_nodes(invariant.ast)):
                        key = f"{stem}#{index}"
                        if id(invariant) not in seen_invariants:
                            self.branch_targets[f"{key}:true"] = \
                                (invariant, decision)
                            self.branch_targets[f"{key}:false"] = \
                                (invariant, decision)
                        closure = compile_expression(
                            decision, context=invariant.context)
                        decisions.append((key, closure))
                    seen_invariants.add(id(invariant))
            if decisions:
                self._decisions[id(metaclass)] = decisions

    # -- recording ---------------------------------------------------------

    def record_metaclass(self, metaclass: MetaClass) -> None:
        self._covered_metaclasses.add(id(metaclass))

    def record_end(self, feature: Reference) -> None:
        self._covered_ends.add(id(feature))

    def record_branches(self, element: Element) -> None:
        """Evaluate the element's invariant decisions, marking outcomes.

        Decisions that raise (undefined navigation, null arithmetic)
        cover nothing — only a decided ``true``/``false`` counts.
        """
        decisions = self._decisions.get(id(element.meta))
        if not decisions:
            return
        root = element.root()
        if self._env is None or self._env_root is not root:
            self._env_root = root
            self._env = Environment.for_model(root)
        env = self._env.child()
        env.define("self", element)
        for key, closure in decisions:
            try:
                value = closure(env)
            except Exception:
                continue
            if value is True:
                self._covered_branches.add(f"{key}:true")
            elif value is False:
                self._covered_branches.add(f"{key}:false")

    def measure(self, root: Element) -> "CoverageMap":
        """Score a finished model post-hoc: every element counts toward
        metaclass coverage, every populated reference toward end
        coverage, and every decidable invariant decision toward branch
        coverage.  Returns self for chaining."""
        for element in [root] + list(root.all_contents()):
            if id(element.meta) in self.metaclass_targets:
                self.record_metaclass(element.meta)
            for feature in element.meta.all_features().values():
                if id(feature) not in self.end_targets:
                    continue
                value = element.eget(feature.name)
                count = (len(value) if feature.many
                         else (0 if value is None else 1))
                if count:
                    self.record_end(feature)
            self.record_branches(element)
        return self

    # -- reporting ---------------------------------------------------------

    def uncovered_metaclasses(self) -> List[str]:
        return sorted(name for key, name in self.metaclass_targets.items()
                      if key not in self._covered_metaclasses)

    def uncovered_ends(self) -> List[str]:
        return sorted(label for key, label in self.end_targets.items()
                      if key not in self._covered_ends)

    def uncovered_branches(self) -> List[str]:
        return sorted(key for key in self.branch_targets
                      if key not in self._covered_branches)

    @property
    def structural_complete(self) -> bool:
        """Full metaclass *and* association-end coverage."""
        return (len(self._covered_metaclasses)
                == len(self.metaclass_targets)
                and len(self._covered_ends) == len(self.end_targets))

    def report(self) -> "CoverageReport":
        return CoverageReport(
            metaclasses=(len(self._covered_metaclasses),
                         len(self.metaclass_targets)),
            ends=(len(self._covered_ends), len(self.end_targets)),
            branches=(len(self._covered_branches),
                      len(self.branch_targets)),
            uncovered_metaclasses=self.uncovered_metaclasses(),
            uncovered_ends=self.uncovered_ends(),
            uncovered_branches=self.uncovered_branches())


def _end_label(feature: Reference) -> str:
    owner = getattr(feature, "owner", None)
    owner_name = owner.name if owner is not None else "?"
    return f"{owner_name}.{feature.name}"


class CoverageReport:
    """An immutable snapshot of a :class:`CoverageMap`."""

    def __init__(self, *, metaclasses: Tuple[int, int],
                 ends: Tuple[int, int], branches: Tuple[int, int],
                 uncovered_metaclasses: List[str],
                 uncovered_ends: List[str],
                 uncovered_branches: List[str]):
        self.metaclasses = metaclasses
        self.ends = ends
        self.branches = branches
        self.uncovered_metaclasses = uncovered_metaclasses
        self.uncovered_ends = uncovered_ends
        self.uncovered_branches = uncovered_branches

    @staticmethod
    def _fraction(pair: Tuple[int, int]) -> float:
        covered, total = pair
        return covered / total if total else 1.0

    @property
    def metaclass_fraction(self) -> float:
        return self._fraction(self.metaclasses)

    @property
    def end_fraction(self) -> float:
        return self._fraction(self.ends)

    @property
    def branch_fraction(self) -> float:
        return self._fraction(self.branches)

    @property
    def structural_complete(self) -> bool:
        return (self.metaclasses[0] == self.metaclasses[1]
                and self.ends[0] == self.ends[1])

    def to_json(self) -> Dict[str, Any]:
        return {
            "metaclasses": {"covered": self.metaclasses[0],
                            "total": self.metaclasses[1],
                            "uncovered": self.uncovered_metaclasses},
            "ends": {"covered": self.ends[0], "total": self.ends[1],
                     "uncovered": self.uncovered_ends},
            "branches": {"covered": self.branches[0],
                         "total": self.branches[1],
                         "uncovered": self.uncovered_branches},
            "structural_complete": self.structural_complete,
        }

    def render(self) -> str:
        lines = []
        for kind, pair in (("metaclasses", self.metaclasses),
                           ("association ends", self.ends),
                           ("invariant branches", self.branches)):
            covered, total = pair
            pct = 100.0 * (covered / total if total else 1.0)
            lines.append(f"  {kind:<18} {covered:>4}/{total:<4} "
                         f"({pct:5.1f}%)")
        return "coverage:\n" + "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<CoverageReport metaclasses={self.metaclasses} "
                f"ends={self.ends} branches={self.branches}>")


# ---------------------------------------------------------------------------
# Coverage-directed generation
# ---------------------------------------------------------------------------

class DirectedGenerator(ModelGenerator):
    """A generator that steers toward uncovered coverage targets.

    The two base-class choice points become preference-weighted: slots
    whose feature end or instantiable targets are still uncovered win
    over already-exercised ones, and uncovered metaclasses win within a
    slot.  Reference sprinkling first places one deliberate link per
    still-uncovered cross-reference end, then falls through to the
    random sprinkle.  Attribute values occasionally take boundary
    values, which flips comparison-shaped invariant branches more often
    than the plain distribution does.
    """

    #: chance an attribute draw is replaced by a boundary value
    BOUNDARY_PROBABILITY = 0.25
    _BOUNDARY_INTS = (-1, 0, 1)

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.coverage = CoverageMap(self)

    # -- directed choice points --------------------------------------------

    def _choose_slot(self, parent: Element,
                     slots: List[Tuple[Reference, List[MetaClass]]]
                     ) -> Tuple[Reference, List[MetaClass]]:
        covered_ends = self.coverage._covered_ends
        covered_classes = self.coverage._covered_metaclasses
        preferred = [
            (feature, targets) for feature, targets in slots
            if id(feature) not in covered_ends
            or any(id(t) not in covered_classes for t in targets)]
        return self.rng.choice(preferred or slots)

    def _choose_target(self, feature: Reference,
                       targets: List[MetaClass]) -> MetaClass:
        covered = self.coverage._covered_metaclasses
        preferred = [t for t in targets if id(t) not in covered]
        return self.rng.choice(preferred or targets)

    def attribute_value(self, feature: Attribute) -> Any:
        if (feature.type in (MInteger, MReal)
                and self.rng.random() < self.BOUNDARY_PROBABILITY):
            value = self.rng.choice(self._BOUNDARY_INTS)
            return float(value) if feature.type is MReal else value
        return super().attribute_value(feature)

    # -- directed sprinkling -----------------------------------------------

    def sprinkle_references(self, elements: Any) -> None:
        self._cover_remaining_ends(list(elements))
        super().sprinkle_references(elements)

    def _cover_remaining_ends(self, elements: List[Element]) -> None:
        """One deliberate link per still-uncovered cross-reference end."""
        covered = self.coverage._covered_ends
        by_meta: Dict[int, List[Element]] = {}
        for element in elements:
            by_meta.setdefault(id(element.meta), []).append(element)
        for metaclass in self.classes:
            for feature in self.cross_reference_features(metaclass):
                if (id(feature) in covered
                        or id(feature) not in self.coverage.end_targets):
                    continue
                owners = [e for e in elements
                          if e.meta.conforms_to(metaclass)
                          and feature.name in e.meta.all_features()]
                candidates = [c for c in elements
                              if c.meta.conforms_to(feature.target)]
                if not owners or not candidates:
                    continue
                self._link(self.rng.choice(owners), feature,
                           self.rng.choice(candidates))
