"""``repro.generate`` — constraint-aware model generation.

The test-infrastructure generators grew up: this subsystem produces
seeded, reproducible corpora of *valid* models at 10^4–10^6 elements,
the workload engine behind every benchmark, load test and chaos run.

* :mod:`repro.generate.random` — metamodel-derived random generation
  (:class:`ModelGenerator`) and edit fuzzing (:class:`EditFuzzer`),
  migrated from ``tests/modelgen.py`` (which survives as a deprecated
  shim);
* :mod:`repro.generate.repair` — the constraint-guided repair loop:
  check, map each diagnostic class to a targeted edit (fill / retype /
  prune / rename), repeat until :meth:`repro.session.Session.check`
  reports zero errors;
* :mod:`repro.generate.coverage` — coverage instrumentation over
  metaclasses, association ends and compiled-OCL invariant branches,
  plus :class:`DirectedGenerator` which biases generation toward
  uncovered targets;
* :mod:`repro.generate.corpus` — the high-level
  :func:`generate_model` / :func:`generate_corpus` entry points behind
  ``python -m repro generate`` and :meth:`repro.session.Session.generate`.
"""

from .corpus import (
    PACKAGES,
    GenerationResult,
    assign_stable_ids,
    corpus_manifest,
    generate_corpus,
    generate_model,
    make_generator,
)
from .coverage import CoverageMap, CoverageReport, DirectedGenerator
from .random import (
    UML_SAFE_CLASSES,
    EditFuzzer,
    ModelGenerator,
    demo_generator,
    demo_package,
    uml_generator,
)
from .repair import RepairEdit, RepairEngine, RepairReport

__all__ = [
    "PACKAGES",
    "UML_SAFE_CLASSES",
    "CoverageMap",
    "CoverageReport",
    "DirectedGenerator",
    "EditFuzzer",
    "GenerationResult",
    "ModelGenerator",
    "RepairEdit",
    "RepairEngine",
    "RepairReport",
    "assign_stable_ids",
    "corpus_manifest",
    "demo_generator",
    "demo_package",
    "generate_corpus",
    "generate_model",
    "make_generator",
    "uml_generator",
]
