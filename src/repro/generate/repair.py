"""Constraint-guided repair: edit a model until the checkers accept it.

Random generation respects everything the kernel enforces eagerly (type
conformance, upper bounds, single container) but cannot, by
construction, decide whole-model properties: lower multiplicity bounds,
OCL invariants, well-formedness and cross-diagram consistency.  The
repair loop closes that gap the way the UML-semantics literature frames
well-formedness — as the *generation target*, not an afterthought:

1. run the session's check families (the same compiled-OCL evaluator
   and Fourier–Motzkin-backed consistency rules every other caller
   uses) over the model;
2. map each error-severity diagnostic class to a targeted edit —
   **fill** unsatisfied lower bounds (add missing ends / attribute
   values), **retype** literals mentioned by a violated invariant,
   **prune** infeasible links or irreparable elements;
3. repeat until :meth:`~repro.session.Session.check` reports zero
   errors or the iteration budget is exhausted.

Invariant repair is a seeded bounded hill-climb: the violated
invariant's AST names the features it reads (``Ident``/``Nav`` walks
against the context metaclass), and each try mutates one of them —
re-evaluating ``invariant.holds`` after every edit, so the loop stops at
the first satisfying assignment.  Every edit is recorded, making repair
replayable and explainable.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..mof import Attribute, Element, Reference
from ..mof.validate import Diagnostic, model_path
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..session import Session
from .coverage import _walk
from .random import _MUTATION_ERRORS, ModelGenerator

from ..ocl.ast import Ident, Nav


class RepairEdit:
    """One applied repair action (for replay and reporting)."""

    __slots__ = ("action", "code", "path", "detail")

    def __init__(self, action: str, code: str, path: str, detail: str):
        self.action = action     # fill | retype | prune | rename | resync
        self.code = code         # diagnostic code that triggered it
        self.path = path
        self.detail = detail

    def __repr__(self) -> str:
        return (f"<RepairEdit {self.action} [{self.code}] "
                f"{self.path}: {self.detail}>")


class RepairReport:
    """The outcome of one :meth:`RepairEngine.repair` run."""

    def __init__(self, *, converged: bool, iterations: int,
                 edits: List[RepairEdit],
                 initial_errors: int,
                 remaining: List[Diagnostic]):
        self.converged = converged
        self.iterations = iterations
        self.edits = edits
        self.initial_errors = initial_errors
        self.remaining = remaining

    def to_json(self) -> Dict[str, Any]:
        return {
            "converged": self.converged,
            "iterations": self.iterations,
            "initial_errors": self.initial_errors,
            "remaining_errors": len(self.remaining),
            "edits": [{"action": e.action, "code": e.code,
                       "path": e.path, "detail": e.detail}
                      for e in self.edits],
        }

    def render(self) -> str:
        state = "converged" if self.converged else "budget exhausted"
        return (f"repair: {state} after {self.iterations} iteration(s), "
                f"{len(self.edits)} edit(s), "
                f"{self.initial_errors} -> {len(self.remaining)} error(s)")

    def __repr__(self) -> str:
        return (f"<RepairReport converged={self.converged} "
                f"iterations={self.iterations} edits={len(self.edits)}>")


class RepairEngine:
    """Drives a model to zero error diagnostics under a bounded budget.

    *session* supplies the check families (defaults: the
    :class:`~repro.session.Session` defaults, consistency included);
    *generator* supplies conforming values/children for **fill** edits
    (falling back to feature defaults when absent).  All randomness is
    seeded, so a repair run replays exactly.
    """

    def __init__(self, session: Union[Session, Any], *,
                 generator: Optional[ModelGenerator] = None,
                 seed: int = 0,
                 families: Optional[Tuple[str, ...]] = None,
                 max_iterations: int = 10,
                 invariant_tries: int = 12):
        if not isinstance(session, Session):
            session = Session(session)
        self.session = session
        self.generator = generator
        self.rng = random.Random(seed)
        self.families = families
        self.max_iterations = max_iterations
        self.invariant_tries = invariant_tries
        self.edits: List[RepairEdit] = []
        self._rename_counter = 0

    # -- the loop ----------------------------------------------------------

    def repair(self) -> RepairReport:
        with (_trace.span("generate.repair") if _trace.ON
              else _trace.NULL_SPAN):
            report = self._repair_impl()
        if _trace.ON:
            _metrics.REGISTRY.counter(
                "generate.repair.runs",
                help="repair-loop runs by outcome",
                converged=str(report.converged).lower()).inc()
            _metrics.REGISTRY.counter(
                "generate.repair.edits",
                help="repair edits applied, by action").inc(
                    len(report.edits))
        return report

    def _repair_impl(self) -> RepairReport:
        initial_errors = -1
        iterations = 0
        for iteration in range(self.max_iterations):
            errors = self.session.check(self.families).errors
            if initial_errors < 0:
                initial_errors = len(errors)
            if not errors:
                return RepairReport(
                    converged=True, iterations=iterations,
                    edits=self.edits, initial_errors=initial_errors,
                    remaining=[])
            iterations = iteration + 1
            # one (element, invariant) repair per iteration — several
            # diagnostics may name the same pair
            seen_invariants: Set[Tuple[int, int]] = set()
            applied = 0
            for diagnostic in errors:
                applied += self._dispatch(diagnostic, seen_invariants)
            # pruning deletes subtrees; incoming cross-references from
            # the rest of the model now dangle (the kernel only unlinks
            # the deleted element's *own* features).  Scrub them so the
            # in-memory corpus equals its serialization.
            self._scrub_dangling_references()
            if not applied:
                break                 # no handler made progress; stop
        remaining = self.session.check(self.families).errors
        if initial_errors < 0:
            initial_errors = len(remaining)
        return RepairReport(
            converged=not remaining, iterations=iterations,
            edits=self.edits, initial_errors=initial_errors,
            remaining=remaining)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, diagnostic: Diagnostic,
                  seen_invariants: Set[Tuple[int, int]]) -> int:
        element = diagnostic.element
        if not isinstance(element, Element):
            return 0
        code = diagnostic.code
        if code == "multiplicity":
            return self._fix_multiplicity(element, diagnostic)
        if code in ("invariant", "invariant-error"):
            return self._fix_invariants(element, seen_invariants)
        if code == "opposite" and diagnostic.feature is not None:
            return self._fix_opposite(element, diagnostic)
        return self._fix_generic(element, diagnostic)

    def _record(self, action: str, code: str, element: Element,
                detail: str) -> int:
        self.edits.append(
            RepairEdit(action, code, model_path(element), detail))
        return 1

    # -- multiplicity: fill missing ends ----------------------------------

    def _fix_multiplicity(self, element: Element,
                          diagnostic: Diagnostic) -> int:
        feature = diagnostic.feature
        if feature is None:
            return 0
        value = element.eget(feature.name)
        count = len(value) if feature.many else (0 if value is None else 1)
        lower = feature.multiplicity.lower
        upper = feature.multiplicity.upper
        applied = 0
        if upper is not None and count > upper and feature.many:
            # cannot normally happen (the kernel enforces upper bounds
            # eagerly) but deserializers may hand us anything: prune
            slot = element.eget(feature.name)
            while len(slot) > upper:
                victim = slot[-1]
                try:
                    slot.remove(victim)
                except _MUTATION_ERRORS:
                    break
                applied += self._record(
                    "prune", "multiplicity", element,
                    f"removed excess value from {feature.name}")
            return applied
        while count < lower:
            if not self._fill_feature(element, feature):
                break
            count += 1
            applied += self._record(
                "fill", "multiplicity", element,
                f"added value to {feature.name} "
                f"[{feature.multiplicity}]")
        if not applied and element.container is not None:
            # unfillable bound (no conforming target): prune the element
            element.delete()
            applied = self._record(
                "prune", "multiplicity", element,
                f"deleted element with unfillable {feature.name}")
        return applied

    def _fill_feature(self, element: Element, feature: Any) -> bool:
        if isinstance(feature, Attribute):
            value = (self.generator.attribute_value(feature)
                     if self.generator is not None
                     else feature.default_value())
            if value is None:
                value = _fallback_value(feature)
            try:
                if feature.many:
                    element.eget(feature.name).append(value)
                else:
                    element.eset(feature.name, value)
            except _MUTATION_ERRORS:
                return False
            return True
        if not isinstance(feature, Reference):
            return False
        target = self._find_or_make_target(element, feature)
        if target is None:
            return False
        try:
            if feature.many:
                slot = element.eget(feature.name)
                if target in slot:
                    return False
                slot.append(target)
            else:
                element.eset(feature.name, target)
        except _MUTATION_ERRORS:
            return False
        return True

    def _find_or_make_target(self, element: Element,
                             feature: Reference) -> Optional[Element]:
        if feature.containment:
            if self.generator is not None:
                candidates = [c for c in self.generator.classes
                              if c.conforms_to(feature.target)]
            else:
                candidates = [c for c in [feature.target]
                              + feature.target.all_subclasses()
                              if not c.abstract]
            if not candidates:
                return None
            metaclass = self.rng.choice(candidates)
            return (self.generator.instantiate(metaclass)
                    if self.generator is not None
                    else metaclass.instantiate())
        try:
            opposite = feature.opposite
        except Exception:
            opposite = None
        if opposite is not None and opposite.containment:
            return None               # linking would reparent the target
        pool = [c for c in self.session.model.all_elements()
                if c.meta.conforms_to(feature.target) and c is not element]
        return self.rng.choice(pool) if pool else None

    # -- invariants: retype literals / prune links -------------------------

    def _fix_invariants(self, element: Element,
                        seen: Set[Tuple[int, int]]) -> int:
        applied = 0
        for metaclass in [element.meta] + element.meta.all_superclasses():
            for invariant in metaclass.invariants:
                key = (id(element), id(invariant))
                if key in seen:
                    continue
                seen.add(key)
                if not _holds_quietly(invariant, element):
                    applied += self._fix_one_invariant(element, invariant)
        return applied

    def _fix_one_invariant(self, element: Element, invariant: Any) -> int:
        features = _mentioned_features(invariant, element)
        # try attribute retypes before reference prunes: a satisfying
        # literal keeps the corpus's elements, pruning throws them away
        attributes = [f for f in features if isinstance(f, Attribute)]
        applied = 0
        for attempt in range(self.invariant_tries):
            if _holds_quietly(invariant, element):
                break
            if not features:
                break
            if attempt < 2 and attributes:
                feature = attributes[attempt % len(attributes)]
            else:
                feature = self.rng.choice(features)
            if isinstance(feature, Attribute):
                applied += self._retype_attribute(
                    element, feature, invariant, attempt)
            else:
                applied += self._prune_reference(
                    element, feature, invariant)
        if applied and _holds_quietly(invariant, element):
            return applied
        if applied:
            return applied            # partial progress still counts
        # nothing mentioned was editable: prune the element itself
        if element.container is not None:
            element.delete()
            return self._record(
                "prune", "invariant", element,
                f"deleted element violating '{invariant.name}'")
        return 0

    def _retype_attribute(self, element: Element, feature: Attribute,
                          invariant: Any, attempt: int) -> int:
        # first try an *informed* value (numeric bounds against mentioned
        # collections — e.g. a capacity checked with ``->size() <=``
        # becomes the collection's actual size), then the declared
        # default (metamodels pick satisfying defaults), then seeded
        # random draws
        value = None
        if attempt == 0:
            value = self._informed_value(element, feature, invariant)
        if value is None and attempt <= 1 \
                and feature.default_value() is not None:
            value = feature.default_value()
        if value is None and self.generator is not None:
            value = self.generator.attribute_value(feature)
        if value is None:
            value = _fallback_value(feature)
        try:
            if feature.many:
                slot = element.eget(feature.name)
                if len(slot):
                    slot.remove(slot[-1])
                else:
                    slot.append(value)
            else:
                element.eset(feature.name, value)
        except _MUTATION_ERRORS:
            return 0
        return self._record(
            "retype", "invariant", element,
            f"set {feature.name}={value!r} for '{invariant.name}'")

    def _informed_value(self, element: Element, feature: Attribute,
                        invariant: Any) -> Optional[int]:
        """A candidate for a numeric attribute derived from the violated
        invariant: the largest size among the many-valued features the
        same invariant reads (``x->size() <= self.cap`` ⇒ cap = size)."""
        from ..mof import MInteger, MReal
        if feature.type is not MInteger and feature.type is not MReal:
            return None
        sizes = []
        for other in _mentioned_features(invariant, element):
            if other is feature or not other.many:
                continue
            try:
                sizes.append(len(element.eget(other.name)))
            except Exception:
                continue
        if not sizes:
            return None
        value = max(sizes)
        return float(value) if feature.type is MReal else value

    def _prune_reference(self, element: Element, feature: Reference,
                         invariant: Any) -> int:
        try:
            value = element.eget(feature.name)
            if feature.many:
                # a collection bound (e.g. ``->size() <= cap``) may be
                # exceeded by far more than one: keep pruning until the
                # invariant holds, not one link per repair iteration
                removed = 0
                while len(value) and not _holds_quietly(invariant, element):
                    victim = value[-1]
                    if feature.containment:
                        victim.delete()
                    else:
                        value.remove(victim)
                    removed += 1
                if not removed:
                    return 0
                return self._record(
                    "prune", "invariant", element,
                    f"removed {removed} link(s) from {feature.name} "
                    f"for '{invariant.name}'")
            if value is None:
                return 0
            element.eset(feature.name, None)
        except _MUTATION_ERRORS:
            return 0
        return self._record(
            "prune", "invariant", element,
            f"removed link {feature.name} for '{invariant.name}'")

    # -- dangling cross-references after deletes ---------------------------

    def _scrub_dangling_references(self) -> int:
        applied = 0
        trees = []
        in_tree = set()
        for root in self.session.model.roots:
            tree = [root] + list(root.all_contents())
            trees.append(tree)
            in_tree.update(id(element) for element in tree)
        for tree in trees:
            for element in tree:
                for feature in element.meta.all_features().values():
                    if (not isinstance(feature, Reference)
                            or feature.containment or feature.derived):
                        continue
                    try:
                        value = element.eget(feature.name)
                        if feature.many:
                            stale = [t for t in list(value)
                                     if id(t) not in in_tree]
                            for target in stale:
                                value.remove(target)
                                applied += self._record(
                                    "prune", "dangling", element,
                                    f"unlinked deleted target from "
                                    f"{feature.name}")
                        elif (value is not None
                              and id(value) not in in_tree):
                            element.eset(feature.name, None)
                            applied += self._record(
                                "prune", "dangling", element,
                                f"unlinked deleted target from "
                                f"{feature.name}")
                    except _MUTATION_ERRORS:
                        continue
        return applied

    # -- opposites ---------------------------------------------------------

    def _fix_opposite(self, element: Element,
                      diagnostic: Diagnostic) -> int:
        # desynchronized inverse bookkeeping: drop the forward link(s)
        feature = diagnostic.feature
        try:
            if feature.many:
                slot = element.eget(feature.name)
                while len(slot):
                    slot.remove(slot[-1])
            else:
                element.eset(feature.name, None)
        except _MUTATION_ERRORS:
            return 0
        return self._record(
            "resync", "opposite", element,
            f"cleared {feature.name} to restore inverse integrity")

    # -- everything else: rename duplicates, else prune --------------------

    def _fix_generic(self, element: Element,
                     diagnostic: Diagnostic) -> int:
        message = diagnostic.message.lower()
        name_feature = element.meta.find_feature("name")
        if ("name" in message and "duplicate" in message
                and isinstance(name_feature, Attribute)
                and not name_feature.many):
            self._rename_counter += 1
            fresh = (f"{element.eget('name') or element.meta.name}"
                     f"_r{self._rename_counter}")
            try:
                element.eset("name", fresh)
            except _MUTATION_ERRORS:
                return 0
            return self._record(
                "rename", diagnostic.code, element,
                f"renamed to {fresh!r}")
        if element.container is not None:
            element.delete()
            return self._record(
                "prune", diagnostic.code, element,
                f"deleted element flagged by {diagnostic.code or 'rule'}")
        if diagnostic.feature is not None:
            try:
                element.eunset(diagnostic.feature.name)
            except Exception:
                return 0
            return self._record(
                "prune", diagnostic.code, element,
                f"unset {diagnostic.feature.name}")
        return 0


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _holds_quietly(invariant: Any, element: Element) -> bool:
    try:
        return invariant.holds(element)
    except Exception:
        return False


def _mentioned_features(invariant: Any, element: Element) -> List[Any]:
    """The non-derived features of *element* the invariant's AST reads."""
    names: Set[str] = set()
    for node in _walk(invariant.ast):
        if isinstance(node, (Ident, Nav)) and node.name:
            names.add(node.name)
    features = []
    for name in sorted(names):
        feature = element.meta.find_feature(name)
        if feature is not None and not feature.derived:
            features.append(feature)
    return features


def _fallback_value(feature: Attribute) -> Any:
    from ..mof import MBoolean, MInteger, MReal, MetaEnum
    ftype = feature.type
    if isinstance(ftype, MetaEnum):
        return ftype.literals[0]
    if ftype is MBoolean:
        return True
    if ftype is MInteger:
        return 0
    if ftype is MReal:
        return 0.0
    return f"{feature.name}_repaired"
