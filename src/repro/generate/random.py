"""Metamodel-driven random model generation — the corpus engine core.

Following the metamodel-instance-generation literature (Wu, Monahan &
Power's systematic review), generators here are *derived from the
metamodel itself*: :class:`ModelGenerator` introspects a
:class:`~repro.mof.kernel.MetaPackage` for concrete metaclasses, their
containment features and attribute types, then grows a random
containment tree that respects multiplicity upper bounds and the
single-container discipline.  :class:`EditFuzzer` produces random *edit
sequences* over a generated model: attribute set/unset, reference
add/remove, reorder, reparent, delete and create.

Lower multiplicity bounds are governed by ``violate_lower_bounds``:

* ``violate_lower_bounds=True`` (the constructor default, and what the
  fuzzer-profile helpers :func:`demo_generator`/:func:`uml_generator`
  use) leaves lower bounds to chance — validators need unsatisfied
  models too, and every property suite seeded before this flag existed
  replays byte-identically;
* ``violate_lower_bounds=False`` (what :mod:`repro.generate.corpus` and
  the ``python -m repro generate`` verb pass) runs a post-growth pass
  that fills every unsatisfied lower bound — attributes get values,
  containments get freshly instantiated children, cross-references get
  in-tree targets — so generated corpora start structurally valid and
  the repair loop only has invariants left to chase.

Everything is seeded — the same ``(seed, size)`` always produces the
same model and the same edits — so property-test failures replay
exactly.  Any suite can import this module as a fixture library (the
historic ``tests/modelgen.py`` import path survives as a deprecated
shim); the incremental-engine property suite was the first consumer.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..mof import (
    Attribute,
    CompositionError,
    Element,
    MBoolean,
    MInteger,
    MReal,
    MString,
    M_01,
    M_0N,
    MetaClass,
    MetaEnum,
    MetaPackage,
    MultiplicityError,
    Reference,
    TypeConformanceError,
    add_attribute,
    add_reference,
    define_class,
    define_enum,
    define_package,
)

if TYPE_CHECKING:
    from .coverage import CoverageMap

#: The *typed kernel errors* a random mutation may legitimately provoke
#: (the kernel rejecting an edit for composition, multiplicity or type
#: reasons).  Deliberately narrow: a bare ``ValueError`` (or any other
#: exception) escaping a mutation is a real bug in the kernel or the
#: generator and must surface, not be absorbed as "mutation rejected".
_MUTATION_ERRORS = (CompositionError, MultiplicityError,
                    TypeConformanceError)


def _resolve_metaclass(package: MetaPackage,
                       spec: Union[str, MetaClass, type]) -> MetaClass:
    if isinstance(spec, MetaClass):
        return spec
    if isinstance(spec, type) and hasattr(spec, "_meta"):
        return spec._meta
    for pkg in package.all_packages():
        classifier = pkg.classifiers.get(spec)
        if isinstance(classifier, MetaClass):
            return classifier
    raise KeyError(f"no metaclass {spec!r} in package '{package.name}'")


class ModelGenerator:
    """Grows random instance trees of an arbitrary metamodel.

    ``classes`` restricts generation to a subset of metaclass names
    (useful to keep clear of helper classifiers a metamodel exposes but
    a test does not want populated); ``root_class`` picks the tree root
    (defaulting to the concrete class with the most containment
    features).  ``attr_probability`` is the chance a non-required
    attribute gets an explicit value.  ``violate_lower_bounds`` keeps
    the historic leave-lower-bounds-to-chance behaviour when true (the
    default, relied on by the fuzzer profiles); when false,
    :meth:`generate` finishes with :meth:`satisfy_lower_bounds`.
    """

    def __init__(self, package: MetaPackage, *, seed: int = 0,
                 classes: Optional[Sequence[Union[str, MetaClass]]] = None,
                 root_class: Union[str, MetaClass, type, None] = None,
                 attr_probability: float = 0.8,
                 reference_probability: float = 0.4,
                 violate_lower_bounds: bool = True):
        self.package = package
        self.rng = random.Random(seed)
        self.attr_probability = attr_probability
        self.reference_probability = reference_probability
        self.violate_lower_bounds = violate_lower_bounds
        #: when attached (see :mod:`repro.generate.coverage`), every
        #: instantiation and reference link is recorded as it happens
        self.coverage: Optional["CoverageMap"] = None

        if classes is not None:
            allowed = [_resolve_metaclass(package, c) for c in classes]
        else:
            allowed = [mc for pkg in package.all_packages()
                       for mc in pkg.metaclasses()]
        self.classes: List[MetaClass] = [mc for mc in allowed
                                         if not mc.abstract]
        if not self.classes:
            raise ValueError(f"package '{package.name}' offers no "
                             f"concrete metaclasses")

        # containment index: metaclass -> [(feature, instantiable targets)]
        self.containments: Dict[MetaClass,
                                List[Tuple[Reference, List[MetaClass]]]] = {}
        for metaclass in self.classes:
            slots = []
            for feature in metaclass.all_features().values():
                if not (isinstance(feature, Reference)
                        and feature.containment and not feature.derived):
                    continue
                targets = [c for c in self.classes
                           if c.conforms_to(feature.target)]
                if targets:
                    slots.append((feature, targets))
            if slots:
                self.containments[metaclass] = slots

        if root_class is not None:
            self.root_class = _resolve_metaclass(package, root_class)
        else:
            self.root_class = max(
                self.classes,
                key=lambda mc: len(self.containments.get(mc, [])))

    # -- generation --------------------------------------------------------

    def generate(self, n_elements: int) -> Element:
        """A random containment tree of roughly *n_elements* elements."""
        root = self.instantiate(self.root_class)
        elements = [root]
        parents = [root] if root.meta in self.containments else []
        attempts = 0
        while (len(elements) < n_elements and parents
               and attempts < n_elements * 25):
            attempts += 1
            parent = self.rng.choice(parents)
            child = self.grow_child(parent)
            if child is None:
                continue
            elements.append(child)
            if child.meta in self.containments:
                parents.append(child)
        self.sprinkle_references(elements)
        if not self.violate_lower_bounds:
            self.satisfy_lower_bounds(elements)
        return root

    # The two choice points coverage-directed generation overrides; the
    # base implementations consume the rng exactly as the historic
    # generator did, keeping every seeded suite replayable.

    def _choose_slot(self, parent: Element,
                     slots: List[Tuple[Reference, List[MetaClass]]]
                     ) -> Tuple[Reference, List[MetaClass]]:
        return self.rng.choice(slots)

    def _choose_target(self, feature: Reference,
                       targets: List[MetaClass]) -> MetaClass:
        return self.rng.choice(targets)

    def grow_child(self, parent: Element) -> Optional[Element]:
        """Attach one new random child under *parent* (None if full)."""
        slots = self.containments.get(parent.meta)
        if not slots:
            return None
        feature, targets = self._choose_slot(parent, slots)
        if feature.many:
            upper = feature.multiplicity.upper
            if upper is not None and len(parent.eget(feature.name)) >= upper:
                return None
        elif parent.eget(feature.name) is not None:
            return None
        child = self.instantiate(self._choose_target(feature, targets))
        try:
            if feature.many:
                parent.eget(feature.name).append(child)
            else:
                parent.eset(feature.name, child)
        except _MUTATION_ERRORS:
            return None
        if self.coverage is not None:
            self.coverage.record_end(feature)
        return child

    def instantiate(self, metaclass: MetaClass) -> Element:
        element = metaclass.instantiate()
        if self.coverage is not None:
            self.coverage.record_metaclass(metaclass)
        for feature in metaclass.all_features().values():
            if not isinstance(feature, Attribute) or feature.derived:
                continue
            if feature.many:
                for _ in range(self.rng.randint(0, 2)):
                    try:
                        element.eget(feature.name).append(
                            self.attribute_value(feature))
                    except _MUTATION_ERRORS:
                        break
            elif (feature.required
                  or self.rng.random() < self.attr_probability):
                element.eset(feature.name, self.attribute_value(feature))
        return element

    def attribute_value(self, feature: Attribute) -> Any:
        rng = self.rng
        ftype = feature.type
        if isinstance(ftype, MetaEnum):
            return rng.choice(ftype.literals)
        if ftype is MBoolean:
            return rng.random() < 0.5
        if ftype is MInteger:
            return rng.randint(-5, 40)
        if ftype is MReal:
            return round(rng.uniform(-5.0, 40.0), 3)
        return f"{feature.name}_{rng.randrange(1000)}"

    def _link(self, element: Element, feature: Reference,
              target: Element) -> bool:
        """Add one cross-reference link, recording coverage on success."""
        try:
            if feature.many:
                slot = element.eget(feature.name)
                if target in slot:
                    return False
                slot.append(target)
            else:
                element.eset(feature.name, target)
        except _MUTATION_ERRORS:
            return False
        if self.coverage is not None:
            self.coverage.record_end(feature)
        return True

    def cross_reference_features(self, metaclass: MetaClass
                                 ) -> List[Reference]:
        """The non-derived, non-containment references of *metaclass*
        whose inverse is not a containment (linking those reparents)."""
        out = []
        for feature in metaclass.all_features().values():
            if (not isinstance(feature, Reference) or feature.derived
                    or feature.containment):
                continue
            try:
                opposite = feature.opposite
            except Exception:
                continue
            if opposite is not None and opposite.containment:
                continue
            out.append(feature)
        return out

    def sprinkle_references(self, elements: Sequence[Element]) -> None:
        """Fill non-containment references between the given elements."""
        # candidate pools depend only on the feature's target metaclass,
        # so memoise them — rebuilding per element is O(n^2) at corpus
        # sizes.  rng consumption is untouched (same pools, same order).
        pools: Dict[int, List[Element]] = {}
        features_of: Dict[MetaClass, List[Reference]] = {}
        for element in elements:
            features = features_of.get(element.meta)
            if features is None:
                features = self.cross_reference_features(element.meta)
                features_of[element.meta] = features
            for feature in features:
                candidates = pools.get(id(feature.target))
                if candidates is None:
                    candidates = [c for c in elements
                                  if c.meta.conforms_to(feature.target)]
                    pools[id(feature.target)] = candidates
                if not candidates:
                    continue
                if feature.many:
                    for _ in range(self.rng.randint(0, 2)):
                        try:
                            element.eget(feature.name).append(
                                self.rng.choice(candidates))
                        except _MUTATION_ERRORS:
                            break
                        if self.coverage is not None:
                            self.coverage.record_end(feature)
                elif (feature.required
                      or self.rng.random() < self.reference_probability):
                    try:
                        element.eset(feature.name,
                                     self.rng.choice(candidates))
                    except _MUTATION_ERRORS:
                        pass
                    else:
                        if self.coverage is not None:
                            self.coverage.record_end(feature)

    def satisfy_lower_bounds(self, elements: Sequence[Element]) -> None:
        """Fill every unsatisfied lower multiplicity bound in place.

        Attributes get generated values, containment features get fresh
        conforming children (which join the worklist so their own lower
        bounds are filled too), cross-references get existing in-tree
        targets.  Bounds that cannot be filled (no conforming target
        anywhere) are left for the repair loop to prune.
        """
        worklist = list(elements)
        index = 0
        while index < len(worklist):
            element = worklist[index]
            index += 1
            for feature in element.meta.all_features().values():
                if feature.derived or feature.multiplicity.lower < 1:
                    continue
                value = element.eget(feature.name)
                count = (len(value) if feature.many
                         else (0 if value is None else 1))
                needed = feature.multiplicity.lower - count
                if needed <= 0:
                    continue
                for _ in range(needed):
                    if not self._fill_one(element, feature, worklist):
                        break

    def _fill_one(self, element: Element, feature: Any,
                  worklist: List[Element]) -> bool:
        """Add one value to *feature* of *element*; True on success."""
        if isinstance(feature, Attribute):
            value = self.attribute_value(feature)
            try:
                if feature.many:
                    element.eget(feature.name).append(value)
                else:
                    element.eset(feature.name, value)
            except _MUTATION_ERRORS:
                return False
            return True
        if feature.containment:
            targets = [c for c in self.classes
                       if c.conforms_to(feature.target)]
            if not targets:
                return False
            child = self.instantiate(self._choose_target(feature, targets))
            try:
                if feature.many:
                    element.eget(feature.name).append(child)
                else:
                    element.eset(feature.name, child)
            except _MUTATION_ERRORS:
                return False
            if self.coverage is not None:
                self.coverage.record_end(feature)
            worklist.append(child)
            return True
        try:
            opposite = feature.opposite
        except Exception:
            opposite = None
        if opposite is not None and opposite.containment:
            return False              # linking would reparent the target
        candidates = [c for c in worklist
                      if c.meta.conforms_to(feature.target)
                      and c is not element]
        if not candidates:
            return False
        return self._link(element, feature, self.rng.choice(candidates))


# ---------------------------------------------------------------------------
# Random edits
# ---------------------------------------------------------------------------

class EditFuzzer:
    """Applies random, always-legal edits to a generated model.

    Edits touch only elements currently inside the tree rooted at
    ``root`` (the membership any scoped checker agrees on).  Every op
    returns a human-readable description (for failure replay) or None
    when it could not find an applicable target; :meth:`random_edit`
    retries across ops until one applies.
    """

    #: op weights: mutation-heavy, with enough structure churn to stress
    #: membership sync, but growing slightly more than deleting
    OPS = (("set_attr", 5), ("unset_attr", 2), ("add_ref", 3),
           ("remove_ref", 2), ("move", 1), ("reparent", 2),
           ("create", 2), ("delete", 1))

    #: named weight tables.  "destructive" leans on the operations whose
    #: inverses are hardest to replay (subtree deletes, removals from the
    #: middle of ordered lists); "shuffle" churns ordering and ownership
    #: without net growth.  Both exist to stress transaction rollback.
    PROFILES: Dict[str, Tuple[Tuple[str, int], ...]] = {
        "default": OPS,
        "destructive": (("set_attr", 1), ("unset_attr", 2),
                        ("add_ref", 1), ("remove_ref", 4), ("move", 3),
                        ("reparent", 3), ("create", 1), ("delete", 5)),
        "shuffle": (("set_attr", 1), ("unset_attr", 1), ("add_ref", 2),
                    ("remove_ref", 2), ("move", 6), ("reparent", 5),
                    ("create", 1), ("delete", 1)),
    }

    def __init__(self, root: Element, *, seed: int = 0,
                 generator: Optional[ModelGenerator] = None,
                 profile: str = "default"):
        self.root = root
        self.rng = random.Random(seed)
        self.generator = generator
        if profile not in self.PROFILES:
            raise KeyError(f"unknown fuzz profile {profile!r}; expected "
                           f"one of {sorted(self.PROFILES)}")
        self.profile = profile
        self._ops = [name for name, weight in self.PROFILES[profile]
                     for _ in range(weight)]

    def elements(self) -> List[Element]:
        return [self.root] + list(self.root.all_contents())

    def apply_random_edits(self, count: int) -> List[str]:
        done = []
        for _ in range(count):
            description = self.random_edit()
            if description is not None:
                done.append(description)
        return done

    def random_edit(self) -> Optional[str]:
        for _ in range(40):
            op = self.rng.choice(self._ops)
            description = getattr(self, f"_op_{op}")()
            if description is not None:
                return description
        return None

    # -- individual ops ----------------------------------------------------

    def _pick(self, items: Sequence[Any]) -> Any:
        return self.rng.choice(list(items))

    def _attributes(self, element: Element) -> List[Attribute]:
        return [f for f in element.meta.all_features().values()
                if isinstance(f, Attribute) and not f.derived]

    def _op_set_attr(self) -> Optional[str]:
        element = self._pick(self.elements())
        attributes = self._attributes(element)
        if not attributes or self.generator is None:
            return None
        feature = self._pick(attributes)
        value = self.generator.attribute_value(feature)
        try:
            if feature.many:
                slot = element.eget(feature.name)
                if value in slot:
                    slot.remove(value)
                else:
                    slot.append(value)
            else:
                element.eset(feature.name, value)
        except _MUTATION_ERRORS:
            return None
        return f"set {element.meta.name}.{feature.name}={value!r}"

    def _op_unset_attr(self) -> Optional[str]:
        element = self._pick(self.elements())
        attributes = [f for f in self._attributes(element)
                      if element.eis_set(f.name)]
        if not attributes:
            return None
        feature = self._pick(attributes)
        element.eunset(feature.name)
        return f"unset {element.meta.name}.{feature.name}"

    def _cross_references(self, element: Element) -> List[Reference]:
        out = []
        for feature in element.meta.all_features().values():
            if (not isinstance(feature, Reference) or feature.derived
                    or feature.containment):
                continue
            try:
                opposite = feature.opposite
            except Exception:
                continue
            if opposite is not None and opposite.containment:
                continue
            out.append(feature)
        return out

    def _op_add_ref(self) -> Optional[str]:
        everything = self.elements()
        element = self._pick(everything)
        references = self._cross_references(element)
        if not references:
            return None
        feature = self._pick(references)
        candidates = [c for c in everything
                      if c.meta.conforms_to(feature.target)]
        if not candidates:
            return None
        target = self._pick(candidates)
        try:
            if feature.many:
                if target in element.eget(feature.name):
                    return None
                element.eget(feature.name).append(target)
            else:
                if element.eget(feature.name) is target:
                    return None
                element.eset(feature.name, target)
        except _MUTATION_ERRORS:
            return None
        return (f"link {element.meta.name}.{feature.name} -> "
                f"{target.meta.name}")

    def _op_remove_ref(self) -> Optional[str]:
        element = self._pick(self.elements())
        settable = []
        for feature in self._cross_references(element):
            value = element.eget(feature.name)
            if feature.many:
                if len(value):
                    settable.append(feature)
            elif value is not None:
                settable.append(feature)
        if not settable:
            return None
        feature = self._pick(settable)
        try:
            if feature.many:
                slot = element.eget(feature.name)
                slot.remove(self._pick(list(slot)))
            else:
                element.eset(feature.name, None)
        except _MUTATION_ERRORS:
            return None
        return f"unlink {element.meta.name}.{feature.name}"

    def _op_move(self) -> Optional[str]:
        for element in self.rng.sample(self.elements(),
                                       min(8, len(self.elements()))):
            for feature in element.meta.all_features().values():
                if not (feature.many and feature.ordered):
                    continue
                slot = element.eget(feature.name)
                if len(slot) >= 2:
                    value = self._pick(list(slot))
                    index = self.rng.randrange(len(slot))
                    try:
                        slot.move(index, value)
                    except _MUTATION_ERRORS:
                        continue
                    return (f"move {element.meta.name}."
                            f"{feature.name}[{index}]")
        return None

    def _op_reparent(self) -> Optional[str]:
        if self.generator is None:
            return None
        everything = self.elements()
        movable = [e for e in everything if e.container is not None]
        if not movable:
            return None
        child = self._pick(movable)
        subtree = {id(child)} | {id(e) for e in child.all_contents()}
        for parent in self.rng.sample(everything, min(10, len(everything))):
            if id(parent) in subtree:
                continue
            for feature, targets in \
                    self.generator.containments.get(parent.meta, []):
                if not child.meta.conforms_to(feature.target):
                    continue
                try:
                    if feature.many:
                        parent.eget(feature.name).append(child)
                    else:
                        parent.eset(feature.name, child)
                except _MUTATION_ERRORS:
                    continue
                return (f"reparent {child.meta.name} under "
                        f"{parent.meta.name}.{feature.name}")
        return None

    def _op_create(self) -> Optional[str]:
        if self.generator is None:
            return None
        # grow with the *fuzzer's* rng so edit sequences stay independent
        # of how many elements generation itself consumed
        self.generator.rng = self.rng
        for parent in self.rng.sample(self.elements(),
                                      min(10, len(self.elements()))):
            child = self.generator.grow_child(parent)
            if child is not None:
                return (f"create {child.meta.name} under "
                        f"{parent.meta.name}")
        return None

    def _op_delete(self) -> Optional[str]:
        deletable = [e for e in self.elements() if e.container is not None]
        if not deletable:
            return None
        element = self._pick(deletable)
        name = element.meta.name
        element.delete()
        return f"delete {name}"


# ---------------------------------------------------------------------------
# A self-contained demo metamodel (library domain) with OCL invariants
# ---------------------------------------------------------------------------

_DEMO: Optional[MetaPackage] = None


def demo_package() -> MetaPackage:
    """A small dynamic metamodel with registered invariants, built once.

    Shaped so random instances actually exercise every checker: default
    attribute values, enums, multi-valued attributes, cross-references,
    an opposite pair and invariants that flip between holding, violated
    and *raising* (``null`` arithmetic) as the fuzzer edits.
    """
    global _DEMO
    if _DEMO is not None:
        return _DEMO
    from ..ocl.invariants import Invariant

    pkg = define_package("genlib", "urn:test:genlib")
    define_enum(pkg, "Color", ["red", "green", "blue"])
    color = pkg.classifier("Color")

    named = define_class(pkg, "GNamed", abstract=True)
    add_attribute(named, "name", MString)

    library = define_class(pkg, "GLibrary", superclasses=[named])
    shelf = define_class(pkg, "GShelf", superclasses=[named])
    book = define_class(pkg, "GBook", superclasses=[named])
    author = define_class(pkg, "GAuthor", superclasses=[named])

    add_reference(library, "shelves", shelf, containment=True,
                  multiplicity=M_0N, opposite="library")
    add_reference(shelf, "library", library)
    add_reference(library, "staff", author, containment=True,
                  multiplicity=M_0N)
    add_reference(library, "featured", book, multiplicity=M_01)
    add_attribute(shelf, "capacity", MInteger, 3)
    add_reference(shelf, "books", book, containment=True,
                  multiplicity=M_0N, opposite="shelf")
    add_reference(book, "shelf", shelf)
    add_attribute(book, "pages", MInteger, 100)
    add_attribute(book, "color", color)
    add_attribute(book, "tags", MString, multiplicity=M_0N)
    add_reference(book, "authors", author, multiplicity=M_0N)
    add_reference(book, "sequel", book)

    Invariant(book, "positive-pages", "self.pages >= 0",
              message="page counts are natural numbers").register()
    Invariant(shelf, "within-capacity",
              "self.books->size() <= self.capacity",
              message="shelf holds more books than it fits").register()
    Invariant(book, "sequel-not-self",
              "self.sequel.oclIsUndefined() or self.sequel <> self"
              ).register()
    Invariant(author, "staff-named",
              "not self.name.oclIsUndefined()").register()

    _DEMO = pkg
    return pkg


def demo_generator(seed: int = 0, **kwargs: Any) -> ModelGenerator:
    """A generator over the demo metamodel, rooted at ``GLibrary``.

    A *fuzzer profile*: lower-bound violation stays on unless the caller
    opts out (``violate_lower_bounds=False``).
    """
    return ModelGenerator(demo_package(), seed=seed, root_class="GLibrary",
                          **kwargs)


# ---------------------------------------------------------------------------
# A curated slice of the UML metamodel
# ---------------------------------------------------------------------------

#: Classes safe for blind random generation: structural and behavioural
#: UML without the relationship classifiers whose cycles the checkers
#: themselves chase (Generalization) and without interactions (their
#: rules need hand-shaped pairings to be interesting).
UML_SAFE_CLASSES = (
    "UmlModel", "Package", "Clazz", "Interface", "Property", "Operation",
    "Parameter", "Comment", "UseCase",
    "StateMachine", "Region", "State", "FinalState", "Pseudostate",
    "Transition",
    "Activity", "ActionNode", "InitialNode", "ActivityFinalNode",
    "DecisionNode", "MergeNode", "ForkNode", "JoinNode", "ActivityEdge",
)


def uml_generator(seed: int = 0, **kwargs: Any) -> ModelGenerator:
    """A generator over the (curated) UML metamodel, rooted at UmlModel.

    A *fuzzer profile*: lower-bound violation stays on unless the caller
    opts out (``violate_lower_bounds=False``).
    """
    from ..uml import UML
    return ModelGenerator(UML, seed=seed, classes=UML_SAFE_CLASSES,
                          root_class="UmlModel", **kwargs)
