"""The incremental change-driven revalidation engine.

The paper's workflow is a cycle: edit the model, re-check the model.
Batch checking pays for the whole model on every edit; this engine pays
only for what the edit touched.  It decomposes validation into *check
units* — one structural check per element, one (invariant, element)
pair, one (well-formedness rule, root) pair, one (lint rule, target)
pair — runs each unit under the kernel's read instrumentation
(:mod:`repro.incremental.tracking`), and memoises both the unit's
diagnostics and its exact read set.  A change notification then
invalidates precisely the units whose last run read the changed slot;
everything else is served from cache.

Containment edits additionally mark the membership index dirty: the next
:meth:`IncrementalEngine.revalidate` re-walks the containment tree (a
cheap traversal compared to checking), creates units for elements that
entered the scope and drops units for elements that left.

The unit decomposition mirrors the batch checkers exactly —
``validate_tree`` (structure + registered invariants),
``uml.wellformed.check_model`` and ``analysis.ModelLinter`` — so that an
engine's merged report is diagnostic-for-diagnostic equal to a
from-scratch run; the property suite in
``tests/test_incremental_properties.py`` holds that equality over
thousands of random edits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .. import faults as _faults
from ..analysis.registry import DEFAULT_REGISTRY, LintConfig, LintRule, RuleRegistry
from ..analysis.runner import LintContext
from ..mof.kernel import Element, MetaClass, Reference
from ..mof.notify import Notification
from ..mof.repository import Model
from ..mof.validate import (
    Diagnostic,
    Severity,
    ValidationReport,
    validate_element,
)
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .tracking import CONTAINER_KEY, DependencyGraph, ReadKey, collect_reads


# ---------------------------------------------------------------------------
# Check units
# ---------------------------------------------------------------------------

class _Unit:
    """One independently re-runnable check with memoised diagnostics."""

    __slots__ = ()
    kind = "?"

    def run(self) -> List[Diagnostic]:
        raise NotImplementedError


class StructuralUnit(_Unit):
    """``validate_element`` (multiplicities, opposites, containment) for
    one element; invariants are carried by :class:`InvariantUnit`."""

    __slots__ = ("element",)
    kind = "structural"

    def __init__(self, element: Element):
        self.element = element

    def run(self) -> List[Diagnostic]:
        return validate_element(self.element,
                                check_invariants=False).diagnostics


class InvariantUnit(_Unit):
    """One (invariant, element) pair, reproducing the diagnostics of
    ``repro.mof.validate._check_invariants`` verbatim."""

    __slots__ = ("invariant", "element")
    kind = "invariant"

    def __init__(self, invariant: Any, element: Element):
        self.invariant = invariant
        self.element = element

    def run(self) -> List[Diagnostic]:
        report = ValidationReport()
        invariant = self.invariant
        try:
            passed = invariant.holds(self.element)
        except Exception as exc:  # invariant itself is broken
            report.add(Severity.ERROR, self.element,
                       f"invariant '{invariant.name}' raised: {exc}",
                       code="invariant-error")
            return report.diagnostics
        if not passed:
            report.add(invariant.severity, self.element,
                       f"invariant '{invariant.name}' violated"
                       + (f": {invariant.message}" if invariant.message
                          else ""),
                       code="invariant")
        return report.diagnostics


class WellformedUnit(_Unit):
    """One (well-formedness rule, root) pair."""

    __slots__ = ("rule", "root")
    kind = "wellformed"

    def __init__(self, rule: Any, root: Element):
        self.rule = rule
        self.root = root

    def run(self) -> List[Diagnostic]:
        report = ValidationReport()
        self.rule(self.root, report)
        return report.diagnostics


class LintUnit(_Unit):
    """One (lint rule, target) pair, applying the same config filtering
    as ``ModelLinter._emit``.

    Each run gets a fresh :class:`LintContext`; rules only use the
    context cache for per-target memoisation, so isolating them changes
    nothing but the sharing.
    """

    __slots__ = ("rule", "target", "config", "registry")
    kind = "lint"

    def __init__(self, rule: LintRule, target: Any, config: LintConfig,
                 registry: RuleRegistry):
        self.rule = rule
        self.target = target
        self.config = config
        self.registry = registry

    def run(self) -> List[Diagnostic]:
        root = self.target.root() if isinstance(self.target, Element) \
            else None
        context = LintContext(root, self.config, self.registry)
        context.current_rule = self.rule
        out: List[Diagnostic] = []
        for diagnostic in self.rule.check(self.target, context):
            if not self.config.allows(diagnostic):
                continue
            effective = self.config.effective_severity(diagnostic)
            if effective is not diagnostic.severity:
                diagnostic = replace(diagnostic, severity=effective)
            out.append(diagnostic)
        return out


class ConsistencyUnit(LintUnit):
    """One (cross-diagram ``XD`` rule, target) pair — a lint unit whose
    diagnostics report under the ``consistency`` family."""

    __slots__ = ()
    kind = "consistency"


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

@dataclass
class EngineStats:
    """Counters for observability (CLI ``watch`` prints these)."""

    notifications: int = 0     # change notifications received
    invalidations: int = 0     # units marked dirty by notifications
    unit_runs: int = 0         # units (re-)executed, lifetime
    syncs: int = 0             # membership re-walks
    revalidations: int = 0     # revalidate() calls
    last_rerun: int = 0        # units re-executed by the last revalidate()
    last_skipped: int = 0      # units served from cache by it
    checker_failures: int = 0  # unit runs that raised (quarantine events)

    def summary(self) -> str:
        out = (f"units rerun/cached {self.last_rerun}/{self.last_skipped}, "
               f"lifetime runs {self.unit_runs}, "
               f"notifications {self.notifications}, "
               f"invalidations {self.invalidations}, "
               f"syncs {self.syncs}")
        if self.checker_failures:
            out += f", checker failures {self.checker_failures}"
        return out


@dataclass
class QuarantineEntry:
    """Failure isolation record for one crashing (check, element) unit.

    A unit whose ``run()`` raises does not kill the engine: the exception
    becomes an ERROR diagnostic (code ``checker-crashed``) and the unit is
    quarantined — skipped by subsequent revalidations until ``retry_at``
    (exponential backoff in revalidation passes: 1, 2, 4, ... capped at
    64).  A retry that succeeds lifts the quarantine; one that raises
    doubles the backoff.
    """

    failures: int = 0          # consecutive raising runs
    retry_at: int = 0          # stats.revalidations value when due again
    error: str = ""            # str() of the last exception

    def due(self, revalidations: int) -> bool:
        return revalidations >= self.retry_at


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

Scope = Union[Model, Element, Sequence[Element]]


class IncrementalEngine:
    """Dependency-tracked, notification-driven revalidation of one model.

    ``scope`` may be a :class:`~repro.mof.repository.Model`, a single root
    element, or a sequence of roots (the latter two are wrapped in a
    private model so that element notifications reach the engine).

    Checker families are opt-out: structural validation, registered
    metaclass invariants, extra :class:`~repro.ocl.invariants.ConstraintSet`
    groups, UML well-formedness rules (skipped for roots that are not UML
    packages) and the lint registry.  When both well-formedness and lint
    are active, the default lint config disables the ``uml-wellformed``
    meta-rule — same de-duplication as ``validation.report.quality_report``.
    The cross-diagram ``consistency`` family (the ``XD`` rules) is opt-in
    via ``consistency=True`` and runs as its own unit kind, so
    :meth:`report_by_kind` keeps the families separate.
    """

    def __init__(self, scope: Scope, *,
                 structural: bool = True,
                 invariants: bool = True,
                 constraint_sets: Iterable[Any] = (),
                 wellformed: bool = True,
                 wellformed_rules: Optional[Iterable[Any]] = None,
                 lint: bool = True,
                 consistency: bool = False,
                 registry: Optional[RuleRegistry] = None,
                 config: Optional[LintConfig] = None):
        self.model = self._resolve_scope(scope)
        self.structural = structural
        self.invariants = invariants
        self.constraint_sets = list(constraint_sets)
        if wellformed_rules is not None:
            self.wellformed_rules = list(wellformed_rules)
        elif wellformed:
            from ..uml.wellformed import ALL_RULES
            self.wellformed_rules = list(ALL_RULES)
        else:
            self.wellformed_rules = []
        self.lint = lint
        self.consistency = consistency
        self.registry = registry or DEFAULT_REGISTRY
        if config is None:
            config = LintConfig(disabled={"uml-wellformed"}
                                if self.wellformed_rules else set())
        self.config = config

        self._units: Dict[tuple, _Unit] = {}
        self._results: Dict[tuple, Tuple[Diagnostic, ...]] = {}
        self._deps = DependencyGraph()
        self._dirty: Set[tuple] = set()
        self._elements: Dict[int, Element] = {}
        self._element_keys: Dict[int, List[tuple]] = {}
        self._root_keys: Dict[int, List[tuple]] = {}
        self._mc_counts: Dict[MetaClass, int] = {}
        self._mc_keys: Dict[MetaClass, List[tuple]] = {}
        self._external: Dict[int, Element] = {}
        self._roots_snapshot: Tuple[Element, ...] = ()
        self._structure_dirty = True
        self._quarantine: Dict[tuple, QuarantineEntry] = {}
        self._txn_listener = None
        self.stats = EngineStats()
        self.model.observe(self._on_change)
        self._attached = True

    # -- lifecycle ---------------------------------------------------------

    @staticmethod
    def _resolve_scope(scope: Scope) -> Model:
        if isinstance(scope, Model):
            return scope
        if isinstance(scope, Element):
            roots = [scope]
        else:
            roots = list(scope)
            if not roots:
                raise ValueError("incremental scope needs at least one root")
        shared = getattr(roots[0], "_model", None)
        if shared is not None and all(
                getattr(root, "_model", None) is shared for root in roots):
            return shared
        model = Model(f"urn:incremental:{roots[0].eid}")
        for root in roots:
            model.add_root(root)
        return model

    def detach(self) -> None:
        """Stop observing; the caches stay readable but go stale silently."""
        if self._attached:
            self.model.unobserve(self._on_change)
            for element in self._external.values():
                element.unobserve(self._on_external_change)
            self._external.clear()
            self._attached = False
        self.unbind_transactions()

    def bind_transactions(self) -> None:
        """Revalidate once per committed outermost transaction.

        Notifications still mark units dirty as they stream in; binding
        adds a commit listener so a whole edit burst is re-checked in one
        pass when its transaction commits, instead of the caller polling.
        Rollbacks need no special casing — replayed inverses are ordinary
        notifications, so the dirty set unwinds with the model.
        """
        if self._txn_listener is not None:
            return
        from ..mof import txn as _txn

        def on_txn_commit(txn: Any, _engine=self) -> None:
            if _engine._attached and txn.op_count:
                _engine.revalidate()

        self._txn_listener = on_txn_commit
        _txn.on_commit(on_txn_commit)

    def unbind_transactions(self) -> None:
        if self._txn_listener is not None:
            from ..mof import txn as _txn
            _txn.remove_listener(self._txn_listener)
            self._txn_listener = None

    def __enter__(self) -> "IncrementalEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    # -- unit management ---------------------------------------------------

    def _add_unit(self, key: tuple, unit: _Unit,
                  keys: List[tuple]) -> None:
        self._units[key] = unit
        self._dirty.add(key)
        keys.append(key)

    def _drop_unit(self, key: tuple) -> None:
        self._units.pop(key, None)
        self._results.pop(key, None)
        self._deps.drop(key)
        self._dirty.discard(key)
        self._quarantine.pop(key, None)

    def _element_invariants(self, element: Element) -> List[Any]:
        seen: Set[int] = set()
        found: List[Any] = []
        if self.invariants:
            for metaclass in [element.meta] + element.meta.all_superclasses():
                for invariant in metaclass.invariants:
                    if id(invariant) not in seen:
                        seen.add(id(invariant))
                        found.append(invariant)
        for constraint_set in self.constraint_sets:
            for invariant in constraint_set.invariants:
                if element.meta.conforms_to(invariant.context) \
                        and id(invariant) not in seen:
                    seen.add(id(invariant))
                    found.append(invariant)
        return found

    def _target_rules(self, target_kind: str) -> List[Tuple[LintRule, type]]:
        """(rule, unit class) pairs for the enabled rule families."""
        specs: List[Tuple[LintRule, type]] = []
        if self.lint:
            for rule in self.registry.rules(target_kind, self.config,
                                            families=("lint",)):
                specs.append((rule, LintUnit))
        if self.consistency:
            for rule in self.registry.rules(target_kind, self.config,
                                            families=("consistency",)):
                specs.append((rule, ConsistencyUnit))
        return specs

    def _add_element(self, element: Element) -> None:
        keys: List[tuple] = []
        if self.structural:
            self._add_unit(("struct", element), StructuralUnit(element), keys)
        for invariant in self._element_invariants(element):
            self._add_unit(("inv", invariant, element),
                           InvariantUnit(invariant, element), keys)
        if self.lint or self.consistency:
            from ..uml.activities import Activity
            from ..uml.interactions import Interaction
            from ..uml.statemachines import StateMachine
            target_kind = None
            if isinstance(element, StateMachine):
                target_kind = "statemachine"
            elif isinstance(element, Activity):
                target_kind = "activity"
            elif isinstance(element, Interaction):
                target_kind = "interaction"
            if target_kind is not None:
                for rule, unit_cls in self._target_rules(target_kind):
                    self._add_unit(
                        ("lint", rule.name, element),
                        unit_cls(rule, element, self.config, self.registry),
                        keys)
        for metaclass in [element.meta] + element.meta.all_superclasses():
            count = self._mc_counts.get(metaclass, 0)
            self._mc_counts[metaclass] = count + 1
            if count == 0 and (self.lint or self.consistency):
                mc_keys: List[tuple] = []
                for rule, unit_cls in self._target_rules("metaclass"):
                    self._add_unit(
                        ("lint", rule.name, metaclass),
                        unit_cls(rule, metaclass, self.config, self.registry),
                        mc_keys)
                if mc_keys:
                    self._mc_keys[metaclass] = mc_keys
        self._element_keys[id(element)] = keys

    def _remove_element(self, element_id: int, element: Element) -> None:
        for key in self._element_keys.pop(element_id, ()):
            self._drop_unit(key)
        for metaclass in [element.meta] + element.meta.all_superclasses():
            count = self._mc_counts.get(metaclass, 0) - 1
            if count <= 0:
                self._mc_counts.pop(metaclass, None)
                for key in self._mc_keys.pop(metaclass, ()):
                    self._drop_unit(key)
            else:
                self._mc_counts[metaclass] = count

    def _add_root_units(self, root: Element) -> None:
        keys: List[tuple] = []
        if self.wellformed_rules and self._is_uml_package(root):
            for rule in self.wellformed_rules:
                self._add_unit(("wf", rule, root),
                               WellformedUnit(rule, root), keys)
        for rule, unit_cls in self._target_rules("model"):
            self._add_unit(
                ("lint", rule.name, root),
                unit_cls(rule, root, self.config, self.registry), keys)
        self._root_keys[id(root)] = keys

    @staticmethod
    def _is_uml_package(root: Element) -> bool:
        from ..uml.package import Package
        return isinstance(root, Package)

    # -- membership sync ---------------------------------------------------

    def _sync_structure(self) -> None:
        self.stats.syncs += 1
        current: Dict[int, Element] = {}
        for root in self.model.roots:
            current[id(root)] = root
            for element in root.all_contents():
                current.setdefault(id(element), element)
        for element_id in [i for i in self._elements if i not in current]:
            self._remove_element(element_id, self._elements[element_id])
        for element_id, element in current.items():
            if element_id not in self._elements:
                self._add_element(element)
        self._elements = current

        old_root_ids = {id(root) for root in self._roots_snapshot}
        new_root_ids = {id(root) for root in self.model.roots}
        for root in self._roots_snapshot:
            if id(root) not in new_root_ids:
                for key in self._root_keys.pop(id(root), ()):
                    self._drop_unit(key)
        for root in self.model.roots:
            if id(root) not in old_root_ids:
                self._add_root_units(root)
        self._roots_snapshot = tuple(self.model.roots)

        # elements observed individually while outside the scope are now
        # covered by the model-level observer
        for element_id in [i for i in self._external if i in current]:
            self._external.pop(element_id).unobserve(self._on_external_change)
        self._structure_dirty = False

    def _roots_changed(self) -> bool:
        roots = self.model.roots
        if len(roots) != len(self._roots_snapshot):
            return True
        return any(a is not b
                   for a, b in zip(roots, self._roots_snapshot))

    # -- change intake -----------------------------------------------------

    def _on_change(self, notification: Notification) -> None:
        self.stats.notifications += 1
        feature = notification.feature
        element = notification.element
        self._invalidate((element, feature.name))
        if getattr(feature, "containment", False):
            for value in (notification.old, notification.new):
                if isinstance(value, Element):
                    self._invalidate((value, CONTAINER_KEY))
            self._structure_dirty = True
        opposite = feature.opposite if isinstance(feature, Reference) \
            else None
        if opposite is not None and opposite.containment:
            self._invalidate((element, CONTAINER_KEY))
            self._structure_dirty = True

    def _on_external_change(self, notification: Notification) -> None:
        # same handling; delivered directly by an element outside the
        # containment tree (its notifications never reach our model)
        self._on_change(notification)

    def _invalidate(self, key: ReadKey) -> None:
        for unit_key in self._deps.readers(key):
            if unit_key in self._units and unit_key not in self._dirty:
                self._dirty.add(unit_key)
                self.stats.invalidations += 1

    def _note_external_reads(self, reads: Set[ReadKey]) -> None:
        for obj, _name in reads:
            if isinstance(obj, Element):
                obj_id = id(obj)
                if obj_id not in self._elements \
                        and obj_id not in self._external:
                    obj.observe(self._on_external_change)
                    self._external[obj_id] = obj

    # -- execution ---------------------------------------------------------

    #: consecutive-failure backoff cap: 2**6 = 64 revalidation passes
    _BACKOFF_CAP = 6

    def _run_unit(self, key: tuple, unit: _Unit) -> None:
        reads: Set[ReadKey] = set()
        try:
            with collect_reads(reads):
                if _faults.ACTIVE is not None:
                    _faults.probe("checker.run")
                diagnostics = unit.run()
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            self._quarantine_unit(key, unit, exc, reads)
            return
        self._results[key] = tuple(diagnostics)
        self._deps.set_reads(key, reads)
        self._note_external_reads(reads)
        self.stats.unit_runs += 1
        if key in self._quarantine:
            del self._quarantine[key]

    def _quarantine_unit(self, key: tuple, unit: _Unit, exc: Exception,
                         reads: Set[ReadKey]) -> None:
        entry = self._quarantine.get(key)
        if entry is None:
            entry = self._quarantine[key] = QuarantineEntry()
        entry.failures += 1
        entry.error = f"{type(exc).__name__}: {exc}"
        entry.retry_at = self.stats.revalidations + \
            2 ** min(entry.failures - 1, self._BACKOFF_CAP)
        element = getattr(unit, "element", None) \
            or getattr(unit, "target", None) or getattr(unit, "root", None)
        self._results[key] = (Diagnostic(
            Severity.ERROR,
            element if isinstance(element, Element) else None,
            f"{unit.kind} checker raised and was quarantined "
            f"(failure {entry.failures}, retrying after revalidation "
            f"{entry.retry_at}): {entry.error}",
            code="checker-crashed"),)
        # keep whatever reads happened before the crash so a relevant edit
        # can re-dirty the unit even before the backoff expires
        self._deps.set_reads(key, reads)
        self._note_external_reads(reads)
        self.stats.unit_runs += 1
        self.stats.checker_failures += 1
        self._dirty.add(key)        # retried once the backoff expires
        if _trace.ON:
            _metrics.REGISTRY.counter(
                "incremental.checker.crashes",
                help="check unit runs that raised (quarantine events)",
                kind=unit.kind).inc()
            _metrics.REGISTRY.gauge(
                "incremental.quarantine.size",
                help="units currently quarantined").set(
                    len(self._quarantine))

    def quarantined(self) -> Dict[tuple, QuarantineEntry]:
        """The currently quarantined units (unit key -> entry), live."""
        return dict(self._quarantine)

    def quarantine_report(self) -> List[str]:
        """Human-readable one-liners for each quarantined unit."""
        out = []
        for key, entry in sorted(self._quarantine.items(),
                                 key=lambda item: -item[1].failures):
            unit = self._units.get(key)
            kind = unit.kind if unit is not None else "?"
            out.append(f"[{kind}] {key[-1] if key else '?'}: "
                       f"{entry.error} (failures {entry.failures}, "
                       f"retry at pass {entry.retry_at})")
        return out

    def revalidate(self) -> ValidationReport:
        """Bring every cached result up to date; return the merged report.

        When the observability layer is on, each pass is wrapped in an
        ``incremental.revalidate`` span and the cache hit/miss balance
        feeds the ``incremental.units.*`` counters.
        """
        if not _trace.ON:
            return self._revalidate_impl()
        with _trace.span("incremental.revalidate") as sp:
            report = self._revalidate_impl()
        sp.tag(rerun=self.stats.last_rerun, cached=self.stats.last_skipped)
        registry = _metrics.REGISTRY
        registry.counter(
            "incremental.revalidations",
            help="revalidation passes").inc()
        registry.counter(
            "incremental.units.rerun",
            help="check units re-run (cache misses)").inc(
                self.stats.last_rerun)
        registry.counter(
            "incremental.units.cached",
            help="check units served from cache (hits)").inc(
                self.stats.last_skipped)
        return report

    def _revalidate_impl(self) -> ValidationReport:
        self.stats.revalidations += 1
        if self._structure_dirty or self._roots_changed():
            self._sync_structure()
        dirty, self._dirty = self._dirty, set()
        rerun = 0
        for key in dirty:
            unit = self._units.get(key)
            if unit is None:
                continue
            entry = self._quarantine.get(key)
            if entry is not None and not entry.due(self.stats.revalidations):
                # backing off: stays pending without re-running
                self._dirty.add(key)
                continue
            self._run_unit(key, unit)
            rerun += 1
        self.stats.last_rerun = rerun
        self.stats.last_skipped = len(self._units) - rerun
        return self.report()

    def recompute_from_scratch(self) -> ValidationReport:
        """Run every unit afresh, ignoring and not touching the caches.

        This is the engine's own from-scratch baseline: identical unit
        decomposition, zero memoisation — what a benchmark should compare
        :meth:`revalidate` against.
        """
        if self._structure_dirty or self._roots_changed():
            self._sync_structure()
        report = ValidationReport()
        for unit in self._units.values():
            report.diagnostics.extend(unit.run())
        return report

    # -- results -----------------------------------------------------------

    def report(self) -> ValidationReport:
        """The merged cached diagnostics of every unit (no recomputation)."""
        report = ValidationReport()
        for key in self._units:
            report.diagnostics.extend(self._results.get(key, ()))
        return report

    def report_by_kind(self) -> Dict[str, ValidationReport]:
        """Cached diagnostics split per checker family (unit ``kind``)."""
        out: Dict[str, ValidationReport] = {}
        for key, unit in self._units.items():
            out.setdefault(unit.kind, ValidationReport()) \
                .diagnostics.extend(self._results.get(key, ()))
        return out

    def check_result(self):
        """Cached diagnostics as a :class:`repro.session.CheckResult`.

        Unit kinds map one-to-one onto the session's checker families
        (extra :class:`~repro.ocl.invariants.ConstraintSet` invariants
        run as ``invariant`` units and report there), so a watching
        client renders server-pushed documents with the same renderer a
        batch ``Session.check`` uses.
        """
        from ..session import FAMILIES, CheckResult
        kinds = self.report_by_kind()
        return CheckResult({
            family: list(kinds[family].diagnostics)
            for family in FAMILIES if family in kinds})

    def unit_count(self) -> int:
        return len(self._units)

    def __repr__(self) -> str:
        return (f"<IncrementalEngine model={self.model.uri!r} "
                f"units={len(self._units)} dirty={len(self._dirty)}>")


# ---------------------------------------------------------------------------
# Comparison helpers (the property suite's oracle interface)
# ---------------------------------------------------------------------------

def diagnostic_key(diagnostic: Diagnostic) -> tuple:
    """A hashable identity for one diagnostic: everything observable except
    object addresses — plus the element's identity, because two elements
    may legitimately yield identical text."""
    feature = diagnostic.feature
    return (diagnostic.code,
            diagnostic.severity.value,
            id(diagnostic.element),
            diagnostic.message,
            diagnostic.path,
            feature.name if feature is not None else None,
            diagnostic.hint,
            id(diagnostic.related) if diagnostic.related is not None
            else None,
            diagnostic.related_path)


def report_signature(report: ValidationReport) -> Counter:
    """Order-insensitive multiset signature of a report's diagnostics."""
    return Counter(diagnostic_key(d) for d in report.diagnostics)


def watch(scope: Scope, **kwargs: Any) -> IncrementalEngine:
    """Create an engine over *scope* and prime its caches."""
    engine = IncrementalEngine(scope, **kwargs)
    engine.revalidate()
    return engine
