"""Read tracking and the dependency index for incremental revalidation.

The kernel funnels every feature read through ``_get_value`` (descriptor
access, ``eget``, dynamic attribute lookup, ``contents()``) and reports
container walks under the pseudo-feature
:data:`~repro.mof.kernel.CONTAINER_KEY`.  :func:`collect_reads` taps that
stream for the duration of one check, giving the engine the exact read
set — ``(element, feature_name)`` pairs — of every invariant,
well-formedness rule and lint rule it runs.  :class:`DependencyGraph`
inverts those read sets into a ``read key -> reader units`` index so a
change notification maps to the units it invalidates in O(readers).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, FrozenSet, Iterator, Set, Tuple

from ..mof import kernel
from ..mof.kernel import CONTAINER_KEY  # noqa: F401  (re-exported)

#: One observed read: ``(object, feature_name)``.  Objects are compared by
#: identity (elements and metaclasses define neither ``__eq__`` nor
#: ``__hash__``), and keeping the object itself in the key pins it against
#: garbage collection so ids cannot be recycled under a live index.
ReadKey = Tuple[Any, str]

_EMPTY: FrozenSet[Any] = frozenset()


@contextmanager
def collect_reads(into: Set[ReadKey]) -> Iterator[Set[ReadKey]]:
    """Route kernel read events into *into* for the duration of the block.

    Nestable: a previously installed hook keeps seeing every read, so an
    engine revalidating inside another engine's tracked run does not
    blind it.
    """
    previous = kernel.set_read_hook(None)
    if previous is None:
        def hook(obj: Any, name: str) -> None:
            into.add((obj, name))
    else:
        def hook(obj: Any, name: str) -> None:
            into.add((obj, name))
            previous(obj, name)
    kernel.set_read_hook(hook)
    try:
        yield into
    finally:
        kernel.set_read_hook(previous)


class DependencyGraph:
    """A bipartite index between check units and the read keys they touch."""

    def __init__(self) -> None:
        self._reads: Dict[Any, Set[ReadKey]] = {}
        self._readers: Dict[ReadKey, Set[Any]] = {}

    def set_reads(self, unit: Any, keys: Set[ReadKey]) -> None:
        """Replace *unit*'s recorded read set with *keys*."""
        old = self._reads.get(unit, _EMPTY)
        for key in old - keys:
            readers = self._readers.get(key)
            if readers is not None:
                readers.discard(unit)
                if not readers:
                    # drop the empty entry so the key's object can be
                    # garbage-collected once nothing else reads it
                    del self._readers[key]
        for key in keys - old:
            self._readers.setdefault(key, set()).add(unit)
        if keys:
            self._reads[unit] = set(keys)
        else:
            self._reads.pop(unit, None)

    def drop(self, unit: Any) -> None:
        """Forget *unit* entirely."""
        self.set_reads(unit, set())

    def readers(self, key: ReadKey):
        """The units whose last run read *key* (possibly empty)."""
        return self._readers.get(key, _EMPTY)

    def reads(self, unit: Any) -> FrozenSet[ReadKey]:
        return frozenset(self._reads.get(unit, _EMPTY))

    def __len__(self) -> int:
        return len(self._reads)

    def key_count(self) -> int:
        return len(self._readers)

    def __repr__(self) -> str:
        return (f"<DependencyGraph units={len(self._reads)} "
                f"keys={len(self._readers)}>")
