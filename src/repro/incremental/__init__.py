"""``repro.incremental`` — change-driven incremental revalidation.

The engine subscribes to :mod:`repro.mof.notify` change notifications,
records what each check actually reads (through the kernel read hook),
and on every edit re-runs only the affected (check, element) pairs; see
:mod:`repro.incremental.engine` for the full story.

Public surface:

* :class:`IncrementalEngine` — the engine; :func:`watch` builds one and
  primes its caches;
* :class:`DependencyGraph` / :func:`collect_reads` — the read-tracking
  substrate, reusable by other caching layers;
* :func:`diagnostic_key` / :func:`report_signature` — order-insensitive
  report comparison, the oracle interface of the property suite.
"""

from .engine import (
    EngineStats,
    IncrementalEngine,
    QuarantineEntry,
    diagnostic_key,
    report_signature,
    watch,
)
from .tracking import CONTAINER_KEY, DependencyGraph, ReadKey, collect_reads

__all__ = [
    "CONTAINER_KEY",
    "DependencyGraph",
    "EngineStats",
    "IncrementalEngine",
    "QuarantineEntry",
    "ReadKey",
    "collect_reads",
    "diagnostic_key",
    "report_signature",
    "watch",
]
