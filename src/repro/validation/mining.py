"""Interaction mining: observed traces back into interaction models.

Closes the loop the paper draws between emergent behaviour and the
scenarios that specify it: after a collaboration run, the *observed*
message flow is reverse-engineered into a proper
:class:`~repro.uml.interactions.Interaction` — lifelines backed by the
participating classifiers (so it is well-formed by construction, unlike
the "floating lifeline" anti-pattern) — ready to be reviewed, serialized
next to the model, or promoted into a use case's regression scenario.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..uml import Interaction, Lifeline, UseCase
from .collaboration import Collaboration
from .scenarios import Scenario


def interaction_from_trace(collaboration: Collaboration,
                           name: Optional[str] = None) -> Interaction:
    """Build an interaction from the messages a run actually produced.

    Lifelines are named after the collaboration's objects and represent
    their classes; one message per observed (sender, receiver, event),
    in order, tagged asynchSignal (the simulator's semantics).
    """
    interaction = Interaction(
        name=name or f"{collaboration.name}_observed")
    lifelines: Dict[str, Lifeline] = {}

    def lifeline_for(object_name: str) -> Optional[Lifeline]:
        if object_name in lifelines:
            return lifelines[object_name]
        instance = collaboration.objects.get(object_name)
        if instance is None:
            return None
        lifeline = interaction.add_lifeline(object_name, instance.clazz)
        lifelines[object_name] = lifeline
        return lifeline

    for sender, receiver, event in collaboration.messages():
        sender_line = lifeline_for(sender)
        receiver_line = lifeline_for(receiver)
        if sender_line is None or receiver_line is None:
            continue
        interaction.add_message(sender_line, receiver_line, event,
                                sort="asynchSignal")
    return interaction


def promote_to_regression(usecase: UseCase,
                          collaboration: Collaboration,
                          name: Optional[str] = None) -> Interaction:
    """Record a run as a realising scenario of *usecase* — today's
    observed behaviour becomes tomorrow's regression test."""
    interaction = interaction_from_trace(
        collaboration, name or f"{usecase.name}_regression")
    usecase.scenarios.append(interaction)
    return interaction


def scenario_from_interaction(interaction: Interaction) -> Scenario:
    """The mined interaction as a replayable scenario (all messages
    expected, no external stimuli — callers add those)."""
    return Scenario.from_interaction(interaction)
