"""Model-based test generation from state machines.

The paper points at Model Based Testing as the right role for behavioural
specifications.  This module derives executable test sequences from a
class's state machine by *searching the machine's own semantic state
space* (driving the real interpreter), so every generated sequence is
feasible by construction — guards, effects and attribute state included.

Coverage target: all transitions (triggered and completion) reachable
within a depth bound.  Each uncovered transition contributes the shortest
event sequence that fires it, together with the expected final state and
attribute values — ready to run against the model now and against the
generated code later.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..transform.library import flatten_state_machine
from ..uml import Clazz, State, StateMachine
from .statemachine_sim import (
    Event,
    ObjectInstance,
    SimulationError,
    StateMachineInterpreter,
)


@dataclass
class GeneratedTest:
    """One derived test: events in, expected observable state out."""

    name: str
    events: List[str]
    covers: List[str] = field(default_factory=list)
    expected_state: Optional[str] = None
    expected_attributes: Dict[str, Any] = field(default_factory=dict)
    expected_completed: bool = False

    def __str__(self) -> str:
        sequence = " -> ".join(self.events) or "(no events)"
        return (f"{self.name}: {sequence} ==> state={self.expected_state} "
                f"{self.expected_attributes}")


@dataclass
class TestGenerationResult:
    tests: List[GeneratedTest] = field(default_factory=list)
    transitions_total: int = 0
    transitions_covered: int = 0
    states_explored: int = 0

    @property
    def coverage(self) -> float:
        if not self.transitions_total:
            return 1.0
        return self.transitions_covered / self.transitions_total

    def summary(self) -> str:
        return (f"generated {len(self.tests)} tests covering "
                f"{self.transitions_covered}/{self.transitions_total} "
                f"transitions ({self.coverage:.0%})")


def _transition_key(transition) -> str:
    source = transition.source.name if transition.source else "?"
    target = transition.target.name if transition.target else "?"
    label = transition.trigger or "ε"
    if transition.guard:
        label += f"[{transition.guard}]"
    return f"{source} --{label}--> {target}"


def _run_sequence(cls: Clazz, machine: StateMachine,
                  events: Sequence[str],
                  overrides: Optional[Dict[str, Any]] = None,
                  covered: Optional[Set[str]] = None) -> ObjectInstance:
    """Replay *events* on a fresh instance, recording covered
    transitions."""
    instance = ObjectInstance("sut", cls, overrides)
    fired: List[str] = []

    def hook(kind: str, _instance, detail: Dict[str, Any]) -> None:
        if kind in ("transition", "internal") and "key" in detail:
            fired.append(detail["key"])
    interpreter = _TracingInterpreter(instance, machine, trace_hook=hook)
    interpreter.start()
    for event_name in events:
        interpreter.dispatch(Event(event_name))
    if covered is not None:
        covered.update(fired)
    return instance


class _TracingInterpreter(StateMachineInterpreter):
    """Interpreter that tags each fired transition with a stable key."""

    def _take(self, transition, event: Event) -> None:
        if self.trace_hook is not None:
            kind = "internal" if getattr(transition, "is_internal",
                                         False) else "transition"
            self.trace_hook(kind, self.instance,
                            {"key": _transition_key(transition)})
        super()._take(transition, event)


def generate_transition_tests(cls: Clazz, *,
                              machine: Optional[StateMachine] = None,
                              overrides: Optional[Dict[str, Any]] = None,
                              max_depth: int = 12,
                              max_states: int = 20_000
                              ) -> TestGenerationResult:
    """Derive a transition-coverage test suite for *cls*.

    Breadth-first search over the machine's reachable semantic states
    (state + attribute values); the first event sequence that fires each
    transition becomes a test, with expected final state and attributes
    captured from the run itself.
    """
    source_machine = machine or cls.state_machine()
    if source_machine is None:
        raise SimulationError(f"class '{cls.name}' has no state machine")
    if any(isinstance(v, State) and v.is_composite
           for v in source_machine.all_vertices()):
        source_machine = flatten_state_machine(source_machine)
    events = source_machine.events()
    all_transitions = {
        _transition_key(t) for t in source_machine.all_transitions()
        if not (t.source is not None
                and t.source.meta.name == "Pseudostate"
                and t.source.eget("kind") == "initial")}

    result = TestGenerationResult(transitions_total=len(all_transitions))
    covered: Set[str] = set()
    tests: List[GeneratedTest] = []

    # BFS over event sequences; semantic dedup via instance snapshots
    seen: Set[tuple] = set()
    queue: deque = deque([[]])
    while queue and result.states_explored < max_states:
        prefix = queue.popleft()
        if len(prefix) > max_depth:
            continue
        fired_here: Set[str] = set()
        instance = _run_sequence(cls, source_machine, prefix, overrides,
                                 fired_here)
        result.states_explored += 1
        # record coverage FIRST: a self-loop returns to a seen semantic
        # state but still covers its transition
        fresh = fired_here - covered
        if fresh:
            covered |= fresh
            tests.append(GeneratedTest(
                name=f"t{len(tests) + 1}",
                events=list(prefix),
                covers=sorted(fresh),
                expected_state=instance.state_name,
                expected_attributes=dict(instance.attributes),
                expected_completed=instance.completed))
        if covered >= all_transitions:
            break
        snapshot = instance.snapshot()
        if snapshot in seen and prefix:
            continue                      # expand each semantic state once
        seen.add(snapshot)
        if not instance.completed:
            for event_name in events:
                queue.append(prefix + [event_name])

    result.tests = tests
    result.transitions_covered = len(covered & all_transitions)
    return result


def run_generated_tests(cls: Clazz, result: TestGenerationResult, *,
                        machine: Optional[StateMachine] = None,
                        overrides: Optional[Dict[str, Any]] = None
                        ) -> List[Tuple[GeneratedTest, bool]]:
    """Re-execute every generated test against the model; returns
    (test, passed) pairs.  All must pass on the unmodified model; a
    mutated model fails some — regression detection for free."""
    source_machine = machine or cls.state_machine()
    outcomes: List[Tuple[GeneratedTest, bool]] = []
    for test in result.tests:
        try:
            instance = _run_sequence(cls, flatten_if_needed(source_machine),
                                     test.events, overrides)
        except SimulationError:
            outcomes.append((test, False))
            continue
        passed = (instance.state_name == test.expected_state
                  and instance.completed == test.expected_completed
                  and instance.attributes == test.expected_attributes)
        outcomes.append((test, passed))
    return outcomes


def flatten_if_needed(machine: StateMachine) -> StateMachine:
    if any(isinstance(v, State) and v.is_composite
           for v in machine.all_vertices()):
        return flatten_state_machine(machine)
    return machine
