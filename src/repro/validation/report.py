"""The model quality dashboard: one report per model, all test kinds.

The paper's closing complaint is "documentation oriented methods in which
the documentation is more important than the actual product".  The
antidote is a single, regenerable answer to "is this model any good?" —
structure, well-formedness, metrics, purity and (optionally) requirement
traceability folded into one text report with an overall verdict.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis import LintConfig, ModelLinter
from ..method.concerns import check_domain_purity
from ..mof.validate import ValidationReport, validate_tree
from ..platforms.base import PlatformModel
from ..profiles.sysml import traceability_matrix
from ..uml import Package
from ..uml.wellformed import run_wellformed_rules
from .metrics import compute_model_metrics


@dataclass
class SectionResult:
    title: str
    passed: bool
    lines: List[str] = field(default_factory=list)


@dataclass
class QualityReport:
    model_name: str
    sections: List[SectionResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(section.passed for section in self.sections)

    def section(self, title: str) -> SectionResult:
        for section in self.sections:
            if section.title == title:
                return section
        raise KeyError(title)

    def render(self) -> str:
        width = 64
        out = [f"{' model quality report: ' + self.model_name + ' ':=^{width}}"]
        for section in self.sections:
            status = "PASS" if section.passed else "FAIL"
            out.append(f"-- {section.title} [{status}]")
            out.extend(f"   {line}" for line in section.lines)
        verdict = "PASS" if self.passed else "FAIL"
        out.append(f"{' overall: ' + verdict + ' ':=^{width}}")
        return "\n".join(out)

    def to_json(self) -> dict:
        """The report as a JSON-ready document (``repro report
        --format json``)."""
        return {
            "model": self.model_name,
            "passed": self.passed,
            "sections": [{"title": section.title,
                          "passed": section.passed,
                          "lines": list(section.lines)}
                         for section in self.sections],
        }


#: severity floor ranks for the ``severity`` parameter below
_SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}


def _at_or_above(diagnostics, floor: int):
    return [d for d in diagnostics
            if _SEVERITY_RANK.get(
                getattr(d.severity, "value", "error"), 2) >= floor]


def build_quality_report(root: Package, *,
                         platforms: Sequence[PlatformModel] = (),
                         include_traceability: bool = False,
                         max_coupling_density: float = 0.75,
                         max_single_operation_ratio: float = 0.5,
                         incremental=None,
                         severity: Optional[str] = None,
                         workers: Optional[int] = None) -> QualityReport:
    """Run every applicable model test over *root* and fold the results.

    When *incremental* is a primed
    :class:`repro.incremental.IncrementalEngine` over *root*, the
    structural, well-formedness and lint sections are served from its
    (freshly revalidated) caches instead of full re-walks — the metrics,
    purity and traceability sections are cheap and always recomputed.

    *severity* is the shared CLI floor (``info``/``warning``/``error``):
    diagnostic lines below it are omitted from the diagnostic sections.
    Section verdicts are always computed from the unfiltered reports —
    the floor hides lines, it never flips PASS/FAIL.

    ``workers=N`` (N > 1, full-pass runs only) shards the structural
    section's tree validation across N forked worker processes
    (:func:`repro.parallel.parallel_validate_tree`); ignored when
    *incremental* serves the sections from its caches.

    This is the building block behind
    :meth:`repro.session.Session.quality_report`.
    """
    floor = _SEVERITY_RANK[getattr(severity, "value", severity)] \
        if severity else 0
    report = QualityReport(root.name or "(unnamed)")

    if incremental is not None:
        incremental.revalidate()
        kinds = incremental.report_by_kind()
        structural = kinds.get("structural", ValidationReport())
        structural.extend(kinds.get("invariant", ValidationReport()))
        wellformed = kinds.get("wellformed", ValidationReport())
        lint = kinds.get("lint", ValidationReport())
        consistency = kinds.get("consistency", ValidationReport())
    else:
        structural = None
        if workers is not None and workers > 1:
            from ..parallel import parallel_validate_tree
            structural = parallel_validate_tree(root, workers=workers)
        if structural is None:
            structural = validate_tree(root)
        wellformed = run_wellformed_rules(root)
        lint = ModelLinter(config=LintConfig(
            disabled={"uml-wellformed"})).lint(root)
        consistency = ModelLinter(
            families=("consistency",)).lint(root)

    report.sections.append(SectionResult(
        "structural validity", structural.ok,
        [str(d) for d in _at_or_above(structural.errors, floor)]
        or ["no errors"]))

    lines = [str(d) for d in _at_or_above(wellformed.errors, floor)]
    lines += [str(d) for d in _at_or_above(wellformed.warnings, floor)]
    report.sections.append(SectionResult(
        "uml well-formedness", wellformed.ok, lines or ["no findings"]))

    # the well-formedness section above already reports the uml-* rules;
    # the lint section covers the behavioural/OCL analyses on top
    lines = [d.render() for d in _at_or_above(lint.errors, floor)]
    lines += [d.render() for d in _at_or_above(lint.warnings, floor)]
    report.sections.append(SectionResult(
        "static analysis (lint)", lint.ok,
        lines or [lint.summary() if hasattr(lint, "summary")
                  else "no findings"]))

    # cross-diagram consistency: interactions vs class model vs state
    # machines (the XD rule family)
    lines = [d.render() for d in _at_or_above(consistency.errors, floor)]
    lines += [d.render() for d in
              _at_or_above(consistency.warnings, floor)]
    report.sections.append(SectionResult(
        "cross-diagram consistency", consistency.ok,
        lines or ["no findings"]))

    metrics = compute_model_metrics(root)
    metric_ok = (metrics.coupling_density <= max_coupling_density
                 and metrics.single_operation_ratio
                 <= max_single_operation_ratio)
    report.sections.append(SectionResult(
        "design metrics", metric_ok,
        [metrics.summary(),
         f"thresholds: coupling<= {max_coupling_density} "
         f"single-op<= {max_single_operation_ratio}"]))

    purity = check_domain_purity(root, platforms)
    report.sections.append(SectionResult(
        "domain purity", purity.clean,
        [str(f) for f in purity.findings]
        or [f"clean ({purity.elements_scanned} elements scanned)"]))

    if include_traceability:
        matrix = traceability_matrix(root)
        trace_ok = (matrix.satisfaction_coverage == 1.0
                    and matrix.verification_coverage == 1.0)
        lines = [matrix.summary()]
        lines += [f"unsatisfied: {row.req_id} {row.name}"
                  for row in matrix.unsatisfied()]
        lines += [f"unverified: {row.req_id} {row.name}"
                  for row in matrix.unverified()]
        report.sections.append(SectionResult(
            "requirement traceability", trace_ok, lines))

    return report


def quality_report(root: Package, **kwargs) -> QualityReport:
    """Deprecated alias of :func:`build_quality_report`.

    .. deprecated::
        Use :meth:`repro.session.Session.quality_report` (or
        :func:`build_quality_report`); same keyword arguments.
    """
    warnings.warn(
        "quality_report() is deprecated; use repro.session.Session(root)."
        "quality_report(...) or build_quality_report()",
        DeprecationWarning, stacklevel=2)
    return build_quality_report(root, **kwargs)
