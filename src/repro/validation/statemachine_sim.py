"""State-machine interpretation — "validations (simulation, animation)".

Executes UML state machines with run-to-completion semantics over M0
object instances.  Guards are OCL-like expressions over the instance's
attributes; effects/entry/exit are action-language programs (assignment,
``send``, ``call``) shared with the code generator, so what the simulator
executes is exactly what the generated code will do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..codegen.actions import parse_actions
from ..codegen.ir import AssignStmt, CallStmt, CommentStmt, SendStmt
from ..ocl import Environment, evaluate
from ..ocl.errors import OclError
from ..transform.library import flatten_state_machine
from ..uml import (Clazz, FinalState, Property, Pseudostate, State,
                   StateMachine)

MAX_COMPLETION_CHAIN = 32


class SimulationError(Exception):
    """Raised when a model cannot be executed."""


def _default_for(prop: Property) -> Any:
    """Initial attribute value from the property's type and default."""
    text = prop.default_value or ""
    type_name = prop.type.name if prop.type is not None else ""
    if text:
        lowered = text.strip().lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
        return text
    if type_name in ("Integer",):
        return 0
    if type_name in ("Real",):
        return 0.0
    if type_name in ("Boolean",):
        return False
    if type_name in ("String",):
        return ""
    return 0


@dataclass
class Event:
    """An event instance in flight."""

    name: str
    arguments: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.arguments)
        return f"{self.name}({args})"


class ObjectInstance:
    """An M0 instance of a class: attribute slots, links, a state, a
    queue."""

    def __init__(self, name: str, clazz: Clazz,
                 overrides: Optional[Dict[str, Any]] = None):
        self.name = name
        self.clazz = clazz
        self.attributes: Dict[str, Any] = {}
        self.links: Dict[str, "ObjectInstance"] = {}
        self.queue: Deque[Event] = deque()
        self.current_state: Optional[State] = None
        self.completed = False
        for prop in clazz.all_attributes():
            if isinstance(prop.type, Clazz):
                continue    # object-valued ends become links, not attributes
            self.attributes[prop.name] = _default_for(prop)
        for key, value in (overrides or {}).items():
            self.attributes[key] = value

    @property
    def state_name(self) -> Optional[str]:
        return self.current_state.name if self.current_state else None

    def link(self, end_name: str, other: "ObjectInstance") -> None:
        self.links[end_name] = other

    def snapshot(self) -> tuple:
        return (self.state_name, tuple(sorted(self.attributes.items())),
                tuple(e.name for e in self.queue), self.completed)

    def __repr__(self) -> str:
        return (f"<obj {self.name}:{self.clazz.name} "
                f"@{self.state_name} {self.attributes}>")


TraceHook = Callable[[str, "ObjectInstance", Dict[str, Any]], None]


class StateMachineInterpreter:
    """Executes one object's state machine.

    ``send_hook(target_instance, event)`` lets a surrounding collaboration
    deliver cross-object events; standalone interpreters loop sends back to
    their own queue when the target link is missing.
    """

    def __init__(self, instance: ObjectInstance,
                 machine: Optional[StateMachine] = None, *,
                 send_hook: Optional[Callable[[ObjectInstance, Event],
                                              None]] = None,
                 trace_hook: Optional[TraceHook] = None):
        self.instance = instance
        source_machine = machine or instance.clazz.state_machine()
        if source_machine is None or not source_machine.regions:
            raise SimulationError(
                f"class '{instance.clazz.name}' has no state machine")
        if any(isinstance(v, State) and v.is_composite
               for v in source_machine.all_vertices()):
            source_machine = flatten_state_machine(source_machine)
        self.machine = source_machine
        self.region = source_machine.main_region()
        self.send_hook = send_hook
        self.trace_hook = trace_hook

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Enter the initial configuration."""
        initial = self.region.initial_pseudostate()
        if initial is None:
            raise SimulationError(
                f"machine '{self.machine.name}' has no initial pseudostate")
        transition = initial.outgoing()[0]
        self._execute_actions(transition.effect)
        self._enter(transition.target)
        self._fire_completions()

    def dispatch(self, event: Event) -> bool:
        """One run-to-completion step; returns True when a transition
        fired."""
        if self.instance.completed or self.instance.current_state is None:
            return False
        fired = False
        for transition in self.instance.current_state.outgoing():
            if transition.trigger != event.name:
                continue
            if not self._guard_holds(transition.guard, event):
                continue
            self._take(transition, event)
            fired = True
            break
        if not fired:
            self._trace("drop", {"event": event.name})
            return False
        self._fire_completions()
        return True

    def step(self) -> bool:
        """Dispatch the next queued event, if any."""
        if not self.instance.queue:
            return False
        return self.dispatch(self.instance.queue.popleft())

    def run_to_quiescence(self, max_steps: int = 1000) -> int:
        steps = 0
        while self.instance.queue and steps < max_steps:
            self.step()
            steps += 1
        return steps

    # -- internals ---------------------------------------------------------

    def _take(self, transition, event: Event) -> None:
        source = self.instance.current_state
        if getattr(transition, "is_internal", False):
            self._execute_actions(transition.effect, event)
            self._trace("internal", {"state": source.name if source
                                     else None,
                                     "event": event.name if event else ""})
            return
        if isinstance(source, State) and source.exit:
            self._execute_actions(source.exit)
        self._execute_actions(transition.effect, event)
        self._trace("transition", {
            "from": source.name if source else None,
            "to": transition.target.name if transition.target else None,
            "event": event.name if event else "",
        })
        self._enter(transition.target)

    def _enter(self, vertex, _choice_depth: int = 0) -> None:
        if isinstance(vertex, FinalState):
            self.instance.current_state = None
            self.instance.completed = True
            self._trace("final", {})
            return
        if isinstance(vertex, Pseudostate) and vertex.kind == "choice":
            # dynamic choice: guards are evaluated AFTER the incoming
            # transition's effect ran; 'else' (or guardless) is default.
            if _choice_depth > 8:
                raise SimulationError(
                    f"choice chain too deep at '{vertex.name}'")
            chosen = None
            default = None
            for candidate in vertex.outgoing():
                guard = (candidate.guard or "").strip()
                if guard in ("", "else"):
                    default = default or candidate
                elif self._guard_holds(guard, None):
                    chosen = candidate
                    break
            chosen = chosen or default
            if chosen is None:
                raise SimulationError(
                    f"choice '{vertex.name}' on '{self.instance.name}': "
                    f"no branch enabled and no else branch")
            self._execute_actions(chosen.effect)
            self._trace("choice", {"at": vertex.name,
                                   "taken": chosen.guard or "else"})
            self._enter(chosen.target, _choice_depth + 1)
            return
        if not isinstance(vertex, State):
            raise SimulationError(
                f"cannot enter vertex {vertex!r} (unsupported kind)")
        self.instance.current_state = vertex
        if vertex.entry:
            self._execute_actions(vertex.entry)
        self._trace("state", {"state": vertex.name})

    def _fire_completions(self) -> None:
        for _ in range(MAX_COMPLETION_CHAIN):
            state = self.instance.current_state
            if state is None:
                return
            candidates = [t for t in state.outgoing()
                          if t.is_completion
                          and self._guard_holds(t.guard, None)]
            if not candidates:
                return
            self._take(candidates[0], Event(""))
        raise SimulationError(
            f"completion-transition livelock in state "
            f"'{self.instance.state_name}' of '{self.instance.name}'")

    def _guard_holds(self, guard: str, event: Optional[Event]) -> bool:
        if not guard:
            return True
        env = self._environment(event)
        try:
            return evaluate(guard, env) is True
        except OclError as exc:
            raise SimulationError(
                f"guard {guard!r} on '{self.instance.name}' failed: {exc}"
            ) from exc

    def _environment(self, event: Optional[Event] = None) -> Environment:
        env = Environment()
        env.define("self", self.instance.attributes)
        for key, value in self.instance.attributes.items():
            env.define(key, value)
        if event is not None and event.arguments:
            for index, argument in enumerate(event.arguments):
                env.define(f"arg{index}", argument)
        return env

    def _execute_actions(self, program: str,
                         event: Optional[Event] = None) -> None:
        for stmt in parse_actions(program):
            if isinstance(stmt, AssignStmt):
                value = self._eval(stmt.rhs, event)
                target = stmt.lhs.replace("self.", "")
                self.instance.attributes[target] = value
                self._trace("assign", {"attr": target, "value": value})
            elif isinstance(stmt, SendStmt):
                arguments = tuple(self._eval(a, event)
                                  for a in stmt.arguments)
                self._emit(stmt.target, Event(stmt.event, arguments))
            elif isinstance(stmt, CallStmt):
                self._call(stmt, event)
            elif isinstance(stmt, CommentStmt):
                self._trace("note", {"text": stmt.text})

    def _eval(self, expression: str, event: Optional[Event] = None) -> Any:
        env = self._environment(event)
        try:
            return evaluate(expression, env)
        except OclError as exc:
            raise SimulationError(
                f"expression {expression!r} on '{self.instance.name}' "
                f"failed: {exc}") from exc

    def _emit(self, target_path: str, event: Event) -> None:
        target_name = target_path.split(".")[-1]
        if target_name in ("self", self.instance.name):
            self.instance.queue.append(event)
            self._trace("send", {"to": self.instance.name,
                                 "event": event.name})
            return
        target = self.instance.links.get(target_name)
        if target is None:
            self._trace("send-lost", {"to": target_name,
                                      "event": event.name})
            return
        if self.send_hook is not None:
            self.send_hook(target, event)
        else:
            target.queue.append(event)
        self._trace("send", {"to": target.name, "event": event.name})

    def _call(self, stmt: CallStmt, event: Optional[Event]) -> None:
        """Synchronous operation call: execute the operation's action-body
        against the receiver's attributes."""
        receiver = self.instance
        if stmt.receiver and stmt.receiver not in ("self",
                                                   self.instance.name):
            linked = self.instance.links.get(stmt.receiver.split(".")[-1])
            if linked is None:
                self._trace("call-lost", {"op": stmt.operation})
                return
            receiver = linked
        operation = None
        for candidate in receiver.clazz.all_operations():
            if candidate.name == stmt.operation:
                operation = candidate
                break
        if operation is None or not operation.body:
            self._trace("call-noop", {"op": stmt.operation,
                                      "on": receiver.name})
            return
        arguments = [self._eval(a, event) for a in stmt.arguments]
        env = Environment()
        env.define("self", receiver.attributes)
        for key, value in receiver.attributes.items():
            env.define(key, value)
        for parameter, value in zip(operation.in_parameters(), arguments):
            env.define(parameter.name, value)
        for inner in parse_actions(operation.body):
            if isinstance(inner, AssignStmt):
                target = inner.lhs.replace("self.", "")
                receiver.attributes[target] = evaluate(inner.rhs, env)
                env.define(target, receiver.attributes[target])
        self._trace("call", {"op": stmt.operation, "on": receiver.name})

    def _trace(self, kind: str, detail: Dict[str, Any]) -> None:
        if self.trace_hook is not None:
            self.trace_hook(kind, self.instance, detail)
