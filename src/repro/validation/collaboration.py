"""Object collaboration simulation — emergent behaviour made executable.

The paper: "the global behaviour or functionality is **emergent** from the
particular collaborations and configurations of objects and their
relationships rather than being specified explicitly for the whole
system."  A :class:`Collaboration` is exactly that configuration: a set of
object instances wired by links; running it produces global behaviour that
no single machine specifies.

The run is deterministic (round-robin over objects in creation order), so
scenario tests and the model checker agree on semantics.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..uml import Association, Clazz, Package
from ..mof import instances_of
from .statemachine_sim import (
    Event,
    ObjectInstance,
    SimulationError,
    StateMachineInterpreter,
)


@dataclass
class TraceEntry:
    """One observed simulation occurrence."""

    step: int
    kind: str                 # state/transition/send/assign/drop/...
    object_name: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.step:4d}] {self.object_name:<12} {self.kind:<10} {detail}"


class Collaboration:
    """A configuration of linked object instances, executable as a whole."""

    def __init__(self, name: str = "collaboration"):
        self.name = name
        self.objects: Dict[str, ObjectInstance] = {}
        self.interpreters: Dict[str, StateMachineInterpreter] = {}
        self.trace: List[TraceEntry] = []
        self._step = 0
        self._started = False

    # -- construction ------------------------------------------------------

    def create_object(self, name: str, clazz: Clazz,
                      **attribute_overrides: Any) -> ObjectInstance:
        if name in self.objects:
            raise SimulationError(f"object '{name}' already exists")
        instance = ObjectInstance(name, clazz, attribute_overrides)
        self.objects[name] = instance
        if clazz.state_machine() is not None:
            self.interpreters[name] = StateMachineInterpreter(
                instance,
                send_hook=self._deliver,
                trace_hook=self._record)
        return instance

    def link(self, source: str, end_name: str, target: str, *,
             both_ways: bool = False,
             reverse_end: Optional[str] = None) -> None:
        """Wire ``source.end_name -> target`` (optionally the reverse too)."""
        self.objects[source].link(end_name, self.objects[target])
        if both_ways:
            self.objects[target].link(reverse_end or source,
                                      self.objects[source])

    def wire_from_model(self, assignments: Dict[str, str],
                        root: Package) -> None:
        """Auto-link objects according to the model's associations.

        *assignments* maps object names to class names; for every
        association end typed by a class with exactly one instance here,
        the link is created using the end name.
        """
        by_class: Dict[str, List[str]] = {}
        for object_name, class_name in assignments.items():
            by_class.setdefault(class_name, []).append(object_name)
        for association in instances_of(root, Association):
            ends = list(association.member_ends)
            if len(ends) != 2:
                continue
            for end, other_end in ((ends[0], ends[1]), (ends[1], ends[0])):
                # end is reachable FROM other_end's type via 'end.name'
                if end.type is None or other_end.type is None:
                    continue
                source_names = by_class.get(other_end.type.name, [])
                target_names = by_class.get(end.type.name, [])
                if len(source_names) == 1 and len(target_names) == 1:
                    self.link(source_names[0], end.name, target_names[0])

    # -- execution ---------------------------------------------------------

    def start(self) -> None:
        """Enter every machine's initial configuration."""
        for name, interpreter in self.interpreters.items():
            interpreter.start()
        self._started = True

    def send(self, object_name: str, event_name: str,
             *arguments: Any) -> None:
        """Inject an external stimulus."""
        instance = self.objects[object_name]
        instance.queue.append(Event(event_name, tuple(arguments)))
        self._record("inject", instance, {"event": event_name})

    def run(self, max_steps: int = 10_000) -> int:
        """Round-robin dispatch until quiescence (or the step bound).

        Returns the number of dispatch steps performed.
        """
        if not self._started:
            self.start()
        steps = 0
        while steps < max_steps:
            progressed = False
            for name in self.objects:
                interpreter = self.interpreters.get(name)
                if interpreter is None:
                    continue
                if self.objects[name].queue:
                    self._step += 1
                    interpreter.step()
                    steps += 1
                    progressed = True
                    if steps >= max_steps:
                        return steps
            if not progressed:
                break
        return steps

    @property
    def quiescent(self) -> bool:
        return all(not obj.queue for obj in self.objects.values())

    # -- observation -------------------------------------------------------

    def _deliver(self, target: ObjectInstance, event: Event) -> None:
        target.queue.append(event)

    def _record(self, kind: str, instance: ObjectInstance,
                detail: Dict[str, Any]) -> None:
        self.trace.append(TraceEntry(self._step, kind, instance.name,
                                     dict(detail)))

    def messages(self) -> List[Tuple[str, str, str]]:
        """(sender, receiver, event) triples observed, in order."""
        out: List[Tuple[str, str, str]] = []
        for entry in self.trace:
            if entry.kind == "send":
                out.append((entry.object_name, entry.detail.get("to", "?"),
                            entry.detail.get("event", "?")))
        return out

    def configuration(self) -> Dict[str, Optional[str]]:
        """Current state name of every object."""
        return {name: obj.state_name for name, obj in self.objects.items()}

    def attribute(self, object_name: str, attribute_name: str) -> Any:
        return self.objects[object_name].attributes[attribute_name]

    # -- snapshot/restore (used by the model checker) -----------------------

    def snapshot(self) -> tuple:
        return tuple(sorted(
            (name, obj.snapshot()) for name, obj in self.objects.items()))

    def save_state(self) -> Dict[str, Any]:
        return {
            name: {
                "attributes": dict(obj.attributes),
                "queue": list(obj.queue),
                "state": obj.current_state,
                "completed": obj.completed,
            }
            for name, obj in self.objects.items()
        }

    def load_state(self, saved: Dict[str, Any]) -> None:
        for name, data in saved.items():
            obj = self.objects[name]
            obj.attributes = dict(data["attributes"])
            obj.queue.clear()
            obj.queue.extend(data["queue"])
            obj.current_state = data["state"]
            obj.completed = data["completed"]
