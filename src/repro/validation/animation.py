"""Textual animation of simulation traces — "validations (simulation,
animation etc)".

Two renderings of a collaboration trace:

* :func:`timeline` — one line per occurrence, chronological;
* :func:`sequence_diagram` — an ASCII sequence diagram of the observed
  messages, which makes the *emergent* interaction directly comparable
  with the interaction diagrams that specified the scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .collaboration import Collaboration, TraceEntry


def timeline(collaboration: Collaboration, *,
             kinds: Optional[Sequence[str]] = None) -> str:
    """Chronological one-line-per-event rendering of the trace."""
    wanted = set(kinds) if kinds else None
    lines: List[str] = []
    for entry in collaboration.trace:
        if wanted is not None and entry.kind not in wanted:
            continue
        lines.append(str(entry))
    return "\n".join(lines)


def state_history(collaboration: Collaboration,
                  object_name: str) -> List[str]:
    """The sequence of states one object passed through."""
    return [entry.detail["state"] for entry in collaboration.trace
            if entry.kind == "state" and entry.object_name == object_name]


def sequence_diagram(collaboration: Collaboration, *,
                     width: int = 16) -> str:
    """ASCII sequence diagram of observed messages.

    Columns are object lifelines in creation order; each message is an
    arrow row.  Example::

        driver          car             engine
          |--start------->|               |
          |               |--ignite------>|
    """
    names = list(collaboration.objects)
    if not names:
        return "(no objects)"
    column: Dict[str, int] = {name: i for i, name in enumerate(names)}
    header = "".join(name.ljust(width) for name in names)
    lines = [header]

    def lifeline_row() -> List[str]:
        return [("|" + " " * (width - 1)) for _ in names]

    for sender, receiver, event in collaboration.messages():
        if sender not in column or receiver not in column:
            continue
        src = column[sender]
        dst = column[receiver]
        if src == dst:
            row = lifeline_row()
            row[src] = f"|<self:{event}".ljust(width)[:width]
            lines.append("".join(row).rstrip())
            continue
        left, right = min(src, dst), max(src, dst)
        span = (right - left) * width - 1
        label = event[: max(0, span - 3)]
        if src < dst:
            arrow = ("--" + label).ljust(span - 1, "-") + ">"
        else:
            arrow = "<" + (label + "--").rjust(span - 1, "-")
        cells = lifeline_row()
        row_text = "".join(cells[:left]) + "|" + arrow + "|"
        # pad out the remaining lifelines to the right of the arrow
        suffix = "".join(cells[right + 1:])
        padding = " " * max(0, (right + 1) * width - len(row_text))
        lines.append((row_text + padding + suffix).rstrip())
    return "\n".join(lines)


def attribute_series(collaboration: Collaboration, object_name: str,
                     attribute_name: str) -> List[Tuple[int, object]]:
    """(step, value) samples of one attribute over the run."""
    series: List[Tuple[int, object]] = []
    for entry in collaboration.trace:
        if (entry.kind == "assign"
                and entry.object_name == object_name
                and entry.detail.get("attr") == attribute_name):
            series.append((entry.step, entry.detail.get("value")))
    return series
