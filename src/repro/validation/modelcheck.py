"""Explicit-state model checking of object collaborations —
"verification (proof, model checking)".

The checker explores every interleaving of event dispatches over a
:class:`~repro.validation.collaboration.Collaboration` (breadth-first),
checking safety invariants in every reachable global state, detecting
quiescent states that fail the progress predicate (deadlocks), bounding
queue growth, and answering reachability queries.  The execution semantics
are the simulator's own — the checker literally drives the same
interpreters, so "what is checked is what runs".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .collaboration import Collaboration

Predicate = Callable[[Collaboration], bool]


@dataclass
class Violation:
    """An invariant failure, deadlock or queue overflow, with its trace."""

    kind: str                    # invariant / deadlock / queue-overflow
    property_name: str
    trace: List[str] = field(default_factory=list)
    configuration: Dict[str, Optional[str]] = field(default_factory=dict)

    def __str__(self) -> str:
        steps = " -> ".join(self.trace) if self.trace else "(initial)"
        return (f"{self.kind} '{self.property_name}' at "
                f"{self.configuration}; trace: {steps}")


@dataclass
class ModelCheckResult:
    states_explored: int = 0
    transitions_explored: int = 0
    max_depth: int = 0
    violations: List[Violation] = field(default_factory=list)
    goals_reached: Dict[str, bool] = field(default_factory=dict)
    truncated: bool = False      # hit the state bound

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (f"states={self.states_explored} "
                f"transitions={self.transitions_explored} "
                f"depth={self.max_depth} "
                f"violations={len(self.violations)} "
                f"{'(truncated)' if self.truncated else ''}").strip()


class ModelChecker:
    """BFS over the global state space of a collaboration."""

    def __init__(self, collaboration: Collaboration, *,
                 max_states: int = 100_000,
                 queue_bound: int = 4):
        self.collaboration = collaboration
        self.max_states = max_states
        self.queue_bound = queue_bound
        self.invariants: List[Tuple[str, Predicate]] = []
        self.goals: List[Tuple[str, Predicate]] = []
        self.done_predicate: Optional[Predicate] = None

    # -- property registration --------------------------------------------

    def invariant(self, name: str, predicate: Predicate) -> "ModelChecker":
        """A condition that must hold in *every* reachable state."""
        self.invariants.append((name, predicate))
        return self

    def goal(self, name: str, predicate: Predicate) -> "ModelChecker":
        """A condition whose reachability is reported."""
        self.goals.append((name, predicate))
        return self

    def done(self, predicate: Predicate) -> "ModelChecker":
        """Progress predicate: a quiescent state failing it is a
        deadlock."""
        self.done_predicate = predicate
        return self

    # -- exploration -------------------------------------------------------

    def check(self, initial_stimuli: List[Tuple[str, str]] = ()
              ) -> ModelCheckResult:
        """Explore all interleavings from the started collaboration plus
        the given external stimuli ``(object, event)``."""
        collab = self.collaboration
        if not collab._started:
            collab.start()
        for object_name, event_name in initial_stimuli:
            collab.send(object_name, event_name)

        result = ModelCheckResult()
        initial_saved = collab.save_state()
        initial_key = collab.snapshot()
        # key -> (saved_state, trace, depth)
        seen: Dict[tuple, None] = {initial_key: None}
        frontier = deque([(initial_saved, [], 0)])

        while frontier:
            if result.states_explored >= self.max_states:
                result.truncated = True
                break
            saved, trace, depth = frontier.popleft()
            result.states_explored += 1
            result.max_depth = max(result.max_depth, depth)
            collab.load_state(saved)
            self._check_state(collab, trace, result)

            # successors: each object with a pending event dispatches one
            ready = [name for name, obj in collab.objects.items()
                     if obj.queue and name in collab.interpreters]
            for name in ready:
                collab.load_state(saved)
                event = collab.objects[name].queue[0]
                label = f"{name}!{event.name}"
                collab.objects[name].queue.popleft()
                collab.interpreters[name].dispatch(event)
                result.transitions_explored += 1
                key = collab.snapshot()
                if key in seen:
                    continue
                seen[key] = None
                if self._queues_overflow(collab):
                    result.violations.append(Violation(
                        "queue-overflow", f"bound={self.queue_bound}",
                        trace + [label], collab.configuration()))
                    continue    # do not expand past an overflow
                frontier.append((collab.save_state(),
                                 trace + [label], depth + 1))
        return result

    def _check_state(self, collab: Collaboration, trace: List[str],
                     result: ModelCheckResult) -> None:
        for name, predicate in self.invariants:
            if not predicate(collab):
                result.violations.append(Violation(
                    "invariant", name, list(trace),
                    collab.configuration()))
        for name, predicate in self.goals:
            if not result.goals_reached.get(name) and predicate(collab):
                result.goals_reached[name] = True
        for name, _pred in self.goals:
            result.goals_reached.setdefault(name, False)
        if collab.quiescent and self.done_predicate is not None:
            if not self.done_predicate(collab):
                result.violations.append(Violation(
                    "deadlock", "progress", list(trace),
                    collab.configuration()))

    def _queues_overflow(self, collab: Collaboration) -> bool:
        return any(len(obj.queue) > self.queue_bound
                   for obj in collab.objects.values())


def check_collaboration(collaboration: Collaboration,
                        stimuli: List[Tuple[str, str]] = (), *,
                        invariants: Optional[Dict[str, Predicate]] = None,
                        done: Optional[Predicate] = None,
                        max_states: int = 100_000,
                        queue_bound: int = 4) -> ModelCheckResult:
    """One-call convenience wrapper around :class:`ModelChecker`."""
    checker = ModelChecker(collaboration, max_states=max_states,
                           queue_bound=queue_bound)
    for name, predicate in (invariants or {}).items():
        checker.invariant(name, predicate)
    if done is not None:
        checker.done(done)
    return checker.check(list(stimuli))
