"""OO design metrics over UML models — "testing here can mean metrics".

Implements the classic Chidamber–Kemerer suite plus the specific
diagnostics the paper derives from mis-applied use-case-driven
development (§1):

* *coupling tends to be very high if not total* → CBO per class and a
  whole-model coupling density;
* *most classes contain a single function* → single-operation-class ratio;
* *very deep inheritance hierarchies* (inheritance as a development
  mechanism) → DIT distribution and deep-inheritance ratio.

These numbers are what experiment E1 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..mof import instances_of
from ..uml import (
    Association,
    Behavior,
    Classifier,
    Clazz,
    Interface,
    Package,
    Property,
    StructuredClassifier,
)


@dataclass
class ClassMetrics:
    """Per-class metric record."""

    name: str
    cbo: int = 0                 # coupling between objects
    dit: int = 0                 # depth of inheritance tree
    noc: int = 0                 # number of children
    wmc: int = 0                 # weighted methods per class (unit weights)
    rfc: int = 0                 # response for a class (methods + sends)
    lcom: int = 0                # lack of cohesion in methods (LCOM1)
    nof: int = 0                 # number of fields (own attributes)
    fan_out: int = 0             # types this class depends on
    fan_in: int = 0              # types depending on this class


@dataclass
class ModelMetrics:
    """Whole-model aggregates plus the per-class table."""

    classes: Dict[str, ClassMetrics] = field(default_factory=dict)
    class_count: int = 0
    coupling_density: float = 0.0     # realised / possible coupling edges
    avg_cbo: float = 0.0
    max_dit: int = 0
    avg_dit: float = 0.0
    single_operation_ratio: float = 0.0
    deep_inheritance_ratio: float = 0.0   # DIT >= 4
    avg_lcom: float = 0.0

    def summary(self) -> str:
        return (f"classes={self.class_count} "
                f"coupling_density={self.coupling_density:.3f} "
                f"avg_cbo={self.avg_cbo:.2f} max_dit={self.max_dit} "
                f"single_op_ratio={self.single_operation_ratio:.2f} "
                f"deep_inh_ratio={self.deep_inheritance_ratio:.2f}")


def _classes_of(root: Package) -> List[Clazz]:
    return [c for c in instances_of(root, Clazz)
            if not isinstance(c, Behavior)]


def _coupled_types(cls: Clazz) -> Set[Classifier]:
    """Classifiers *cls* depends on through attributes, operations,
    associations and generalizations (excluding primitives and itself)."""
    out: Set[Classifier] = set()
    for prop in cls.owned_attributes:
        if isinstance(prop.type, Clazz) and prop.type is not cls:
            out.add(prop.type)
    for operation in cls.owned_operations:
        for parameter in operation.parameters:
            if isinstance(parameter.type, Clazz) \
                    and parameter.type is not cls:
                out.add(parameter.type)
    for sup in cls.supers():
        if isinstance(sup, Clazz):
            out.add(sup)
    return out


def _operation_attr_usage(cls: Clazz) -> List[Set[str]]:
    """For LCOM: the set of own-attribute names each operation's body
    mentions."""
    attr_names = {p.name for p in cls.owned_attributes}
    usages: List[Set[str]] = []
    for operation in cls.owned_operations:
        body = operation.body or ""
        usages.append({name for name in attr_names if name in body})
    return usages


def _lcom1(usages: List[Set[str]]) -> int:
    """LCOM1: #method pairs sharing no attribute − #pairs sharing one,
    floored at zero."""
    disjoint = 0
    sharing = 0
    for i in range(len(usages)):
        for j in range(i + 1, len(usages)):
            if usages[i] & usages[j]:
                sharing += 1
            else:
                disjoint += 1
    return max(0, disjoint - sharing)


def _sends_in_behaviour(cls: Clazz) -> int:
    machine = cls.state_machine()
    if machine is None:
        return 0
    sends = 0
    for transition in machine.all_transitions():
        sends += (transition.effect or "").count("send ")
    return sends


def compute_class_metrics(cls: Clazz) -> ClassMetrics:
    """All metrics for one class."""
    coupled = _coupled_types(cls)
    usages = _operation_attr_usage(cls)
    return ClassMetrics(
        name=cls.name,
        cbo=len(coupled),
        dit=cls.inheritance_depth(),
        noc=len(cls.eget("incoming_generalizations")),
        wmc=len(cls.owned_operations),
        rfc=len(cls.owned_operations) + _sends_in_behaviour(cls),
        lcom=_lcom1(usages),
        nof=len(cls.owned_attributes),
        fan_out=len(coupled),
    )


def compute_model_metrics(root: Package, *,
                          deep_dit_threshold: int = 4) -> ModelMetrics:
    """All metrics for every class under *root*, plus aggregates."""
    classes = _classes_of(root)
    metrics = ModelMetrics()
    fan_in: Dict[int, int] = {}
    coupling_edges = 0
    for cls in classes:
        record = compute_class_metrics(cls)
        metrics.classes[cls.name] = record
        coupled = _coupled_types(cls)
        coupling_edges += len(coupled)
        for other in coupled:
            fan_in[id(other)] = fan_in.get(id(other), 0) + 1
    for cls in classes:
        metrics.classes[cls.name].fan_in = fan_in.get(id(cls), 0)

    n = len(classes)
    metrics.class_count = n
    if n > 1:
        metrics.coupling_density = coupling_edges / (n * (n - 1))
    if n:
        records = list(metrics.classes.values())
        metrics.avg_cbo = sum(r.cbo for r in records) / n
        metrics.max_dit = max(r.dit for r in records)
        metrics.avg_dit = sum(r.dit for r in records) / n
        metrics.avg_lcom = sum(r.lcom for r in records) / n
        metrics.single_operation_ratio = sum(
            1 for r in records if r.wmc == 1) / n
        metrics.deep_inheritance_ratio = sum(
            1 for r in records if r.dit >= deep_dit_threshold) / n
    return metrics


def coupling_matrix(root: Package) -> Dict[str, Set[str]]:
    """Adjacency view of class coupling (names only), for reports."""
    return {cls.name: {other.name for other in _coupled_types(cls)}
            for cls in _classes_of(root)}
