"""``repro.validation`` — model testing: "metrics, validations
(simulation, animation etc), verification (proof, model checking)".

* :mod:`repro.validation.metrics` — Chidamber–Kemerer metrics plus the
  paper's decomposition diagnostics;
* :mod:`repro.validation.statemachine_sim` — state-machine interpreter;
* :mod:`repro.validation.collaboration` — multi-object simulation
  (emergent behaviour);
* :mod:`repro.validation.scenarios` — use cases as conformance tests;
* :mod:`repro.validation.modelcheck` — explicit-state model checker;
* :mod:`repro.validation.animation` — textual trace animation.
"""

from .activity_sim import ActivityInterpreter, ActivityRun, run_activity
from .report import (
    QualityReport,
    SectionResult,
    build_quality_report,
    quality_report,
)
from .animation import (
    attribute_series,
    sequence_diagram,
    state_history,
    timeline,
)
from .collaboration import Collaboration, TraceEntry
from .metrics import (
    ClassMetrics,
    ModelMetrics,
    compute_class_metrics,
    compute_model_metrics,
    coupling_matrix,
)
from .mining import (
    interaction_from_trace,
    promote_to_regression,
    scenario_from_interaction,
)
from .modelcheck import (
    ModelCheckResult,
    ModelChecker,
    Violation,
    check_collaboration,
)
from .scenarios import (
    Scenario,
    ScenarioResult,
    run_use_case_tests,
)
from .testgen import (
    GeneratedTest,
    TestGenerationResult,
    generate_transition_tests,
    run_generated_tests,
)
from .timedsim import (
    MessageTiming,
    TimedCollaboration,
    measure_offered_latency,
)
from .statemachine_sim import (
    Event,
    ObjectInstance,
    SimulationError,
    StateMachineInterpreter,
)

__all__ = [
    "ActivityInterpreter", "ActivityRun", "ClassMetrics", "QualityReport",
    "GeneratedTest", "MessageTiming", "TestGenerationResult",
    "TimedCollaboration", "generate_transition_tests",
    "measure_offered_latency", "run_generated_tests",
    "interaction_from_trace", "promote_to_regression",
    "scenario_from_interaction",
    "SectionResult", "build_quality_report", "quality_report",
    "run_activity", "Collaboration", "Event", "ModelCheckResult",
    "ModelChecker", "ModelMetrics", "ObjectInstance", "Scenario",
    "ScenarioResult", "SimulationError", "StateMachineInterpreter",
    "TraceEntry", "Violation", "attribute_series", "check_collaboration",
    "compute_class_metrics", "compute_model_metrics", "coupling_matrix",
    "run_use_case_tests", "sequence_diagram", "state_history", "timeline",
]
