"""Timed (discrete-event) collaboration simulation.

The untimed simulator answers *what* happens; platform engineering also
needs *when*.  A :class:`TimedCollaboration` runs the same state machines
under a discrete-event scheduler: every sent event is stamped with a
delivery time = now + channel latency (+ per-hop processing), and the
run advances a virtual clock event by event.  The result carries
per-message latencies, so offered QoS can be *measured* against a
platform instead of only estimated — the dynamic counterpart of
:func:`repro.profiles.qos.estimate_path_latency_ms`.

Latencies come from the platform model: the communication mechanism the
PIM→PSM mapping would pick for each link (or an explicit per-link
override).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..platforms.base import CommunicationMechanism, PlatformModel
from ..uml import Clazz
from .collaboration import Collaboration, TraceEntry
from .statemachine_sim import Event, ObjectInstance, SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time_ms: float
    sequence: int
    target_name: str = field(compare=False)
    event: Event = field(compare=False)
    sent_at_ms: float = field(compare=False, default=0.0)
    sender_name: str = field(compare=False, default="")


@dataclass
class MessageTiming:
    sender: str
    receiver: str
    event: str
    sent_ms: float
    delivered_ms: float

    @property
    def latency_ms(self) -> float:
        return self.delivered_ms - self.sent_ms


class TimedCollaboration(Collaboration):
    """A collaboration with a virtual clock and latency-stamped delivery.

    ``default_comm_kinds`` selects which platform mechanism prices each
    link (same preference order as the PIM→PSM mapping); per-link
    overrides via :meth:`set_link_latency`.
    """

    def __init__(self, name: str = "timed", *,
                 platform: Optional[PlatformModel] = None,
                 processing_ms: float = 0.0,
                 default_comm_kinds: Tuple[str, ...] =
                 ("queue", "topic", "signal", "bus")):
        super().__init__(name)
        self.platform = platform
        self.processing_ms = processing_ms
        self.now_ms = 0.0
        self.timings: List[MessageTiming] = []
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._link_latency: Dict[Tuple[str, str], float] = {}
        self._default_latency = self._platform_latency(default_comm_kinds)

    def _platform_latency(self, kinds: Tuple[str, ...]) -> float:
        if self.platform is None:
            return 0.0
        comm = self.platform.comm_for(*kinds)
        return (comm.latency_us / 1000.0) if comm is not None else 0.0

    # -- configuration ------------------------------------------------------

    def set_link_latency(self, sender: str, receiver: str,
                         latency_ms: float) -> None:
        """Override the latency of one directed object pair."""
        self._link_latency[(sender, receiver)] = latency_ms

    def latency_between(self, sender: str, receiver: str) -> float:
        return self._link_latency.get(
            (sender, receiver),
            self._default_latency) + self.processing_ms

    # -- event plumbing -----------------------------------------------------

    def _deliver(self, target: ObjectInstance, event: Event) -> None:
        """Intercept sends from the interpreters: schedule instead of
        enqueueing immediately."""
        sender_name = self._current_sender or ""
        latency = self.latency_between(sender_name, target.name)
        heapq.heappush(self._heap, _ScheduledEvent(
            time_ms=self.now_ms + latency,
            sequence=next(self._sequence),
            target_name=target.name,
            event=event,
            sent_at_ms=self.now_ms,
            sender_name=sender_name))

    _current_sender: Optional[str] = None

    def send_at(self, time_ms: float, object_name: str, event_name: str,
                *arguments: Any) -> None:
        """Schedule an external stimulus at an absolute virtual time."""
        heapq.heappush(self._heap, _ScheduledEvent(
            time_ms=time_ms,
            sequence=next(self._sequence),
            target_name=object_name,
            event=Event(event_name, tuple(arguments)),
            sent_at_ms=time_ms,
            sender_name="env"))

    def send(self, object_name: str, event_name: str,
             *arguments: Any) -> None:
        """External stimulus at the current virtual time."""
        self.send_at(self.now_ms, object_name, event_name, *arguments)

    def run(self, max_steps: int = 100_000, *,
            until_ms: Optional[float] = None) -> int:
        """Process scheduled events in timestamp order."""
        if not self._started:
            self.start()
        steps = 0
        while self._heap and steps < max_steps:
            if until_ms is not None and self._heap[0].time_ms > until_ms:
                break
            scheduled = heapq.heappop(self._heap)
            self.now_ms = max(self.now_ms, scheduled.time_ms)
            interpreter = self.interpreters.get(scheduled.target_name)
            if interpreter is None:
                continue
            if scheduled.sender_name not in ("", "env"):
                self.timings.append(MessageTiming(
                    scheduled.sender_name, scheduled.target_name,
                    scheduled.event.name, scheduled.sent_at_ms,
                    scheduled.time_ms))
            self._step += 1
            self._current_sender = scheduled.target_name
            try:
                interpreter.dispatch(scheduled.event)
            finally:
                self._current_sender = None
            steps += 1
        return steps

    # -- measurement -------------------------------------------------------

    def latency_stats(self) -> Dict[str, float]:
        """min/avg/max over all inter-object deliveries."""
        if not self.timings:
            return {"count": 0, "min_ms": 0.0, "avg_ms": 0.0,
                    "max_ms": 0.0}
        latencies = [t.latency_ms for t in self.timings]
        return {
            "count": len(latencies),
            "min_ms": min(latencies),
            "avg_ms": sum(latencies) / len(latencies),
            "max_ms": max(latencies),
        }

    def path_latency_ms(self, first_event: str,
                        last_event: str) -> Optional[float]:
        """Virtual time from the first send of *first_event* to the last
        delivery of *last_event* (end-to-end through the collaboration)."""
        starts = [t.sent_ms for t in self.timings
                  if t.event == first_event]
        ends = [t.delivered_ms for t in self.timings
                if t.event == last_event]
        if not starts or not ends:
            return None
        return max(ends) - min(starts)


def measure_offered_latency(collaboration: TimedCollaboration,
                            stimulus: Tuple[str, str],
                            first_event: str, last_event: str
                            ) -> Optional[float]:
    """Drive one stimulus through a fresh timed run and measure the
    end-to-end latency between two message kinds."""
    collaboration.start()
    collaboration.send(*stimulus)
    collaboration.run()
    return collaboration.path_latency_ms(first_event, last_event)
