"""Use cases as tests: scenario conformance checking.

The paper's position: use cases must be "used as (high level) tests to the
model rather than first-class development artifacts ... scripts or
constraints in the model checking sense.  There is almost never a
one-to-one mapping between the use cases and the functionality of the
system ... just that the system is capable of providing the services or
functionality required to enact the described scenario."

Accordingly a :class:`Scenario` is derived from an interaction (which
realises a use case) and *checked against* a running collaboration: the
expected message sequence must occur as a subsequence of the observed
messages.  Nothing here constructs functionality from use cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..uml import Interaction, UseCase
from .collaboration import Collaboration

ExpectedMessage = Tuple[str, str, str]   # (sender, receiver, event)


@dataclass
class ScenarioResult:
    """The verdict of replaying one scenario."""

    scenario_name: str
    passed: bool
    expected: List[ExpectedMessage] = field(default_factory=list)
    observed: List[ExpectedMessage] = field(default_factory=list)
    matched: List[ExpectedMessage] = field(default_factory=list)
    missing: List[ExpectedMessage] = field(default_factory=list)

    def explain(self) -> str:
        lines = [f"scenario '{self.scenario_name}': "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        if self.missing:
            lines.append("  missing (in order):")
            lines.extend(f"    {s} -> {r}: {e}" for s, r, e in self.missing)
        return "\n".join(lines)


class Scenario:
    """An executable test derived from a use-case realisation.

    ``binding`` maps lifeline names to collaboration object names (default:
    identical names).  ``stimuli`` are external events injected before the
    run — the actor's prodding.
    """

    def __init__(self, name: str,
                 expected: Sequence[ExpectedMessage], *,
                 binding: Optional[Dict[str, str]] = None,
                 stimuli: Sequence[Tuple[str, str]] = ()):
        self.name = name
        self.expected = list(expected)
        self.binding = dict(binding or {})
        self.stimuli = list(stimuli)

    @classmethod
    def from_interaction(cls, interaction: Interaction, *,
                         binding: Optional[Dict[str, str]] = None,
                         actor_lifelines: Sequence[str] = ()) -> "Scenario":
        """Build a scenario from an interaction's message sequence.

        Messages *sent by* actor lifelines become external stimuli to their
        receivers; the rest become expected inter-object messages.
        """
        actors = set(actor_lifelines)
        expected: List[ExpectedMessage] = []
        stimuli: List[Tuple[str, str]] = []
        for message in interaction.messages:
            sender = (message.send_lifeline.name
                      if message.send_lifeline else "?")
            receiver = (message.receive_lifeline.name
                        if message.receive_lifeline else "?")
            if sender in actors:
                stimuli.append((receiver, message.name))
            else:
                expected.append((sender, receiver, message.name))
        return cls(interaction.name or "scenario", expected,
                   binding=binding, stimuli=stimuli)

    @classmethod
    def from_use_case(cls, usecase: UseCase, *,
                      binding: Optional[Dict[str, str]] = None
                      ) -> List["Scenario"]:
        """One scenario per realising interaction of the use case."""
        actor_names = {a.name for a in usecase.actors}
        out: List[Scenario] = []
        for interaction in usecase.scenarios:
            lifeline_actor_names = [
                l.name for l in interaction.lifelines
                if l.represents is not None
                and l.represents.name in actor_names]
            out.append(cls.from_interaction(
                interaction, binding=binding,
                actor_lifelines=lifeline_actor_names))
        return out

    # -- execution ---------------------------------------------------------

    def _bound(self, name: str) -> str:
        return self.binding.get(name, name)

    def run(self, collaboration: Collaboration, *,
            max_steps: int = 10_000) -> ScenarioResult:
        """Inject the stimuli, run to quiescence, check conformance."""
        collaboration.start()
        for receiver, event in self.stimuli:
            collaboration.send(self._bound(receiver), event)
        collaboration.run(max_steps=max_steps)
        observed = collaboration.messages()
        return self.check(observed)

    def check(self, observed: Sequence[ExpectedMessage]) -> ScenarioResult:
        """Subsequence conformance: expected messages must appear in order
        within the observed stream (other traffic may interleave)."""
        expected = [(self._bound(s), self._bound(r), e)
                    for s, r, e in self.expected]
        matched: List[ExpectedMessage] = []
        cursor = 0
        for message in observed:
            if cursor < len(expected) and message == expected[cursor]:
                matched.append(message)
                cursor += 1
        missing = expected[cursor:]
        return ScenarioResult(
            scenario_name=self.name,
            passed=not missing,
            expected=expected,
            observed=list(observed),
            matched=matched,
            missing=missing,
        )


def run_use_case_tests(usecase: UseCase,
                       collaboration_factory, *,
                       binding: Optional[Dict[str, str]] = None
                       ) -> List[ScenarioResult]:
    """Run every scenario of *usecase* against fresh collaborations.

    ``collaboration_factory()`` must return a newly built collaboration
    each time (scenarios must not share state).
    """
    results: List[ScenarioResult] = []
    for scenario in Scenario.from_use_case(usecase, binding=binding):
        results.append(scenario.run(collaboration_factory()))
    return results
