"""Token-flow interpretation of UML activities.

Deterministic small-step semantics: a multiset of control tokens sits on
nodes; each step picks the first ready node in the activity's node order
and fires it (executing action bodies, evaluating decision guards,
duplicating at forks, synchronising at joins).  The run ends when an
:class:`~repro.uml.activities.ActivityFinalNode` fires, or when no node is
ready (quiescence — reported as ``deadlocked`` if tokens remain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..codegen.actions import parse_actions
from ..codegen.ir import AssignStmt, CallStmt, CommentStmt, SendStmt
from ..ocl import Environment, evaluate
from ..ocl.errors import OclError
from ..uml.activities import (
    ActionNode,
    Activity,
    ActivityFinalNode,
    ActivityNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    MergeNode,
)
from .statemachine_sim import SimulationError


@dataclass
class ActivityRun:
    """Outcome of one activity execution."""

    completed: bool = False           # a final node fired
    deadlocked: bool = False          # tokens stuck (e.g. waiting join)
    steps: int = 0
    visited: List[str] = field(default_factory=list)
    variables: Dict[str, Any] = field(default_factory=dict)

    def visited_actions(self) -> List[str]:
        return self.visited


class ActivityInterpreter:
    """Executes one activity over a mutable variable context."""

    def __init__(self, activity: Activity,
                 variables: Optional[Dict[str, Any]] = None):
        self.activity = activity
        self.variables: Dict[str, Any] = dict(variables or {})
        self.tokens: Dict[int, int] = {}        # node id -> token count
        self._join_arrivals: Dict[int, set] = {}

    # -- public API -------------------------------------------------------

    def run(self, max_steps: int = 10_000) -> ActivityRun:
        initial = self.activity.initial_node()
        if initial is None:
            raise SimulationError(
                f"activity '{self.activity.name}' has no initial node")
        run = ActivityRun(variables=self.variables)
        self.tokens = {id(initial): 1}
        self._join_arrivals.clear()
        while run.steps < max_steps:
            node = self._ready_node()
            if node is None:
                break
            run.steps += 1
            if self._fire(node, run):
                run.completed = True
                run.variables = self.variables
                return run
        run.deadlocked = any(count > 0 for count in self.tokens.values())
        run.variables = self.variables
        return run

    # -- stepping ----------------------------------------------------------

    def _ready_node(self) -> Optional[ActivityNode]:
        for node in self.activity.nodes:
            count = self.tokens.get(id(node), 0)
            if count <= 0:
                continue
            if isinstance(node, JoinNode):
                needed = len(node.incoming())
                if len(self._join_arrivals.get(id(node), ())) < needed:
                    continue
            return node
        return None

    def _fire(self, node: ActivityNode, run: ActivityRun) -> bool:
        """Fire *node*; returns True when the activity completed."""
        self.tokens[id(node)] -= 1
        if isinstance(node, ActivityFinalNode):
            run.visited.append(node.name)
            return True
        if isinstance(node, FlowFinalNode):
            run.visited.append(node.name)
            return False
        if isinstance(node, ActionNode):
            run.visited.append(node.name)
            self._execute(node.body)
            self._offer_all(node)
            return False
        if isinstance(node, (InitialNode, MergeNode)):
            self._offer_all(node)
            return False
        if isinstance(node, DecisionNode):
            self._offer_decision(node)
            return False
        if isinstance(node, ForkNode):
            for edge in node.outgoing():
                self._deliver(node, edge.target)
            return False
        if isinstance(node, JoinNode):
            self.tokens[id(node)] = 0
            self._join_arrivals.pop(id(node), None)
            self._offer_all(node)
            return False
        raise SimulationError(f"cannot fire node {node!r}")

    def _offer_all(self, node: ActivityNode) -> None:
        outgoing = node.outgoing()
        if not outgoing:
            return          # token dies silently at a sink action
        if len(outgoing) > 1:
            raise SimulationError(
                f"node '{node.name}' has {len(outgoing)} outgoing edges; "
                f"use a decision or fork node")
        self._deliver(node, outgoing[0].target)

    def _offer_decision(self, node: DecisionNode) -> None:
        default = None
        for edge in node.outgoing():
            guard = (edge.guard or "").strip()
            if guard in ("", "else"):
                default = default or edge
                continue
            if self._guard(guard):
                self._deliver(node, edge.target)
                return
        if default is None:
            raise SimulationError(
                f"decision '{node.name}': no branch enabled and no "
                f"else edge")
        self._deliver(node, default.target)

    def _deliver(self, source: ActivityNode,
                 target: Optional[ActivityNode]) -> None:
        if target is None:
            raise SimulationError(
                f"edge from '{source.name}' has no target")
        if isinstance(target, JoinNode):
            self._join_arrivals.setdefault(id(target), set()).add(
                id(source))
            self.tokens[id(target)] = 1
            return
        self.tokens[id(target)] = self.tokens.get(id(target), 0) + 1

    # -- expressions -------------------------------------------------------

    def _environment(self) -> Environment:
        env = Environment()
        env.define("self", self.variables)
        for key, value in self.variables.items():
            env.define(key, value)
        return env

    def _guard(self, guard: str) -> bool:
        try:
            return evaluate(guard, self._environment()) is True
        except OclError as exc:
            raise SimulationError(
                f"guard {guard!r} in activity "
                f"'{self.activity.name}' failed: {exc}") from exc

    def _execute(self, body: str) -> None:
        for stmt in parse_actions(body):
            if isinstance(stmt, AssignStmt):
                target = stmt.lhs.replace("self.", "")
                try:
                    self.variables[target] = evaluate(
                        stmt.rhs, self._environment())
                except OclError as exc:
                    raise SimulationError(
                        f"action {stmt.rhs!r} failed: {exc}") from exc
            # sends/calls are no-ops for standalone activities


def run_activity(activity: Activity,
                 variables: Optional[Dict[str, Any]] = None,
                 max_steps: int = 10_000) -> ActivityRun:
    """One-call convenience: execute *activity* over *variables*."""
    return ActivityInterpreter(activity, variables).run(max_steps)
