"""XMI-style XML serialization of models.

Layout (an XMI-shaped dialect, self-contained rather than OMG-schema
exact):

* one ``<xmi>`` document element carrying the model URI;
* each root element as a ``<root>`` child with ``type`` (``pkg:Class``),
  ``id``, primitive attributes as XML attributes;
* containment children as nested elements named by the containing feature;
* non-containment references as attributes holding space-separated ids;
* many-valued primitive attributes as ``<item feature="...">`` children.

Features that are derived, and references whose opposite is a containment
(i.e. pure back-pointers to the container), are not serialized — they are
reconstructed by the kernel on load.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterable, List, Optional, Union

from ..mof.kernel import Attribute, Element, Feature, Reference
from ..mof.repository import Model
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ids import assign_ids

DOC_TAG = "xmi"
ROOT_TAG = "root"
ITEM_TAG = "item"
STEREOTYPE_TAG = "stereotype"


def _observe_io(sp, name: str, fmt: str, source, size: int) -> None:
    """Tag an ``xmi.read``/``xmi.write`` span and bump the element and
    byte counters.  Only called when the observability layer is on."""
    if isinstance(source, Model):
        roots = list(source.roots)
    elif isinstance(source, Element):
        roots = [source]
    else:
        roots = list(source)
    elements = sum(1 + sum(1 for _ in root.all_contents()) for root in roots)
    sp.tag(elements=elements, chars=size)
    _metrics.REGISTRY.counter(
        name + ".elements", help="model elements (de)serialized",
        format=fmt).inc(elements)
    _metrics.REGISTRY.counter(
        name + ".chars", help="document size in characters",
        format=fmt).inc(size)


def _should_serialize(feature: Feature) -> bool:
    if feature.derived:
        return False
    if isinstance(feature, Reference) and not feature.containment:
        opposite = feature.opposite
        if opposite is not None and opposite.containment:
            return False    # container back-pointer, reconstructed on load
    return True


def _type_label(element: Element) -> str:
    meta = element.meta
    package = meta.package.name if meta.package else "?"
    return f"{package}:{meta.name}"


class XmiWriter:
    def __init__(self) -> None:
        self._ids: Dict[int, str] = {}

    def write_model(self, model: Model) -> str:
        return self._write(model.roots, uri=model.uri, name=model.name)

    def write_roots(self, roots: Iterable[Element], *,
                    uri: str = "urn:model", name: str = "model") -> str:
        return self._write(list(roots), uri=uri, name=name)

    def _write(self, roots: List[Element], *, uri: str, name: str) -> str:
        self._ids = assign_ids(roots)
        doc = ET.Element(DOC_TAG, {"uri": uri, "name": name,
                                   "version": "1.0"})
        for root in roots:
            doc.append(self._element_node(root, ROOT_TAG))
        _indent(doc)
        return ET.tostring(doc, encoding="unicode")

    def _element_node(self, element: Element, tag: str) -> ET.Element:
        node = ET.Element(tag, {
            "type": _type_label(element),
            "id": self._ids[id(element)],
        })
        for feature in element.meta.all_features().values():
            if not _should_serialize(feature):
                continue
            if isinstance(feature, Attribute):
                self._write_attribute(node, element, feature)
            else:
                self._write_reference(node, element, feature)
        self._write_stereotypes(node, element)
        return node

    @staticmethod
    def _write_stereotypes(node: ET.Element, element: Element) -> None:
        from ..profiles.base import applications_of
        for application in applications_of(element):
            stereotype = application.stereotype
            profile_name = (stereotype.profile.name
                            if stereotype.profile else "")
            sub = ET.SubElement(node, STEREOTYPE_TAG,
                                {"profile": profile_name,
                                 "name": stereotype.name})
            for tag_name, value in application.values.items():
                if isinstance(value, bool):
                    sub.set(tag_name, "true" if value else "false")
                elif value is not None:
                    sub.set(tag_name, str(value))

    def _write_attribute(self, node: ET.Element, element: Element,
                         feature: Attribute) -> None:
        if feature.many:
            for value in element.eget(feature.name):
                item = ET.SubElement(node, ITEM_TAG,
                                     {"feature": feature.name})
                item.text = str(value)
            return
        if not element.eis_set(feature.name):
            return
        value = element.eget(feature.name)
        if value is None:
            return
        if isinstance(value, bool):
            node.set(feature.name, "true" if value else "false")
        else:
            node.set(feature.name, str(value))

    def _write_reference(self, node: ET.Element, element: Element,
                         feature: Reference) -> None:
        if feature.containment:
            value = element.eget(feature.name)
            children = list(value) if feature.many else (
                [value] if value is not None else [])
            for child in children:
                node.append(self._element_node(child, feature.name))
            return
        value = element.eget(feature.name)
        targets = list(value) if feature.many else (
            [value] if value is not None else [])
        if not targets:
            return
        refs = " ".join(self._ids[id(t)] for t in targets
                        if id(t) in self._ids)
        if refs:
            node.set(f"ref.{feature.name}", refs)


def _indent(node: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(node):
        if not node.text or not node.text.strip():
            node.text = pad + "  "
        for child in node:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        last = node[-1]
        if not last.tail or not last.tail.strip():
            last.tail = pad
    elif level and (not node.tail or not node.tail.strip()):
        node.tail = pad


def write_xml(source: Union[Model, Element, Iterable[Element]], *,
              uri: str = "urn:model", name: str = "model") -> str:
    """Serialize a model, a single root, or several roots to XML text."""
    def _write() -> str:
        writer = XmiWriter()
        if isinstance(source, Model):
            return writer.write_model(source)
        if isinstance(source, Element):
            return writer.write_roots([source], uri=uri, name=name)
        return writer.write_roots(source, uri=uri, name=name)

    if _trace.ON:
        if not isinstance(source, (Model, Element)):
            source = list(source)        # may be a one-shot iterable
        with _trace.span("xmi.write", format="xml") as sp:
            text = _write()
        _observe_io(sp, "xmi.write", "xml", source, len(text))
        return text
    return _write()
