"""Identifier management for model interchange.

Serialization needs every element to carry a document-unique id.  Elements
already have a lazy per-process ``eid``; :func:`assign_ids` walks a tree and
returns a stable element→id mapping (reusing ``eid`` so ids survive
round-trips within a process).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..mof.kernel import Element


def assign_ids(roots: Iterable[Element]) -> Dict[int, str]:
    """Map ``id(element)`` → document id for every element in the trees."""
    mapping: Dict[int, str] = {}
    seen_ids: set = set()
    for root in roots:
        for element in _tree(root):
            doc_id = element.eid
            if doc_id in seen_ids:
                # eid collision across separately built trees; disambiguate
                suffix = 1
                while f"{doc_id}.{suffix}" in seen_ids:
                    suffix += 1
                doc_id = f"{doc_id}.{suffix}"
                element.set_eid(doc_id)
            seen_ids.add(doc_id)
            mapping[id(element)] = doc_id
    return mapping


def _tree(root: Element) -> List[Element]:
    return [root] + list(root.all_contents())
