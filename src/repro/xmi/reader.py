"""XMI-style XML deserialization.

Two-phase: first the containment tree is rebuilt (instantiating metaclasses
resolved through a type registry and coercing primitive attribute values),
then all cross-references are resolved by id.  Opposites and container
back-pointers come back automatically through the kernel's link protocol.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterable, List, Optional, Union

from ..mof.errors import RepositoryError
from ..mof.kernel import (
    Attribute,
    DynamicElement,
    Element,
    MetaClass,
    MetaPackage,
    Reference,
)
from ..mof.repository import Model, Repository
from ..obs import trace as _trace
from .writer import DOC_TAG, ITEM_TAG, ROOT_TAG, STEREOTYPE_TAG, _observe_io


class TypeRegistry:
    """Resolves ``pkg:Class`` labels to metaclasses."""

    def __init__(self, packages: Iterable[MetaPackage]):
        self._by_label: Dict[str, MetaClass] = {}
        for package in packages:
            self.add_package(package)

    def add_package(self, package: MetaPackage) -> None:
        for pkg in package.all_packages():
            for name, classifier in pkg.classifiers.items():
                if isinstance(classifier, MetaClass):
                    self._by_label[f"{pkg.name}:{name}"] = classifier

    def resolve(self, label: str) -> MetaClass:
        metaclass = self._by_label.get(label)
        if metaclass is None:
            raise RepositoryError(f"unknown metaclass label {label!r}")
        return metaclass


class XmiReader:
    def __init__(self, packages: Iterable[MetaPackage],
                 profiles: Iterable = ()):
        self.registry = TypeRegistry(packages)
        self._stereotypes = _stereotype_registry(profiles)
        self._by_id: Dict[str, Element] = {}
        self._pending_refs: List[tuple] = []

    def read(self, text: str) -> Model:
        doc = ET.fromstring(text)
        if doc.tag != DOC_TAG:
            raise RepositoryError(f"not an xmi document (root tag "
                                  f"{doc.tag!r})")
        model = Model(doc.get("uri", "urn:model"), doc.get("name"))
        self._by_id.clear()
        self._pending_refs.clear()
        for node in doc:
            if node.tag == ROOT_TAG:
                model.add_root(self._build_element(node))
        self._resolve_references()
        return model

    # -- phase 1: containment tree ---------------------------------------

    def _build_element(self, node: ET.Element) -> Element:
        metaclass = self.registry.resolve(node.get("type", ""))
        element = metaclass.instantiate()
        doc_id = node.get("id")
        if doc_id:
            element.set_eid(doc_id)
            self._by_id[doc_id] = element
        for key, raw in node.attrib.items():
            if key in ("type", "id"):
                continue
            if key.startswith("ref."):
                self._pending_refs.append((element, key[4:], raw))
                continue
            feature = metaclass.find_feature(key)
            if isinstance(feature, Attribute):
                element.eset(key, feature.type.coerce(raw))
        for child in node:
            if child.tag == STEREOTYPE_TAG:
                self._apply_stereotype(element, child)
                continue
            if child.tag == ITEM_TAG:
                feature_name = child.get("feature", "")
                feature = metaclass.find_feature(feature_name)
                if isinstance(feature, Attribute):
                    value = feature.type.coerce(child.text or "")
                    element.eget(feature_name).append(value)
                continue
            feature = metaclass.find_feature(child.tag)
            if not isinstance(feature, Reference) or not feature.containment:
                raise RepositoryError(
                    f"'{metaclass.name}' has no containment feature "
                    f"{child.tag!r}")
            child_element = self._build_element(child)
            if feature.many:
                element.eget(child.tag).append(child_element)
            else:
                element.eset(child.tag, child_element)
        return element

    def _apply_stereotype(self, element: Element,
                          node: ET.Element) -> None:
        label = f"{node.get('profile', '')}:{node.get('name', '')}"
        stereotype = self._stereotypes.get(label)
        if stereotype is None:
            raise RepositoryError(
                f"unknown stereotype {label!r}; pass its profile to the "
                f"reader")
        values = {}
        for key, raw in node.attrib.items():
            if key in ("profile", "name"):
                continue
            definition = stereotype.tags.get(key)
            values[key] = (definition.type.coerce(raw)
                           if definition is not None else raw)
        stereotype.apply(element, **values)

    # -- phase 2: cross references ------------------------------------------

    def _resolve_references(self) -> None:
        for element, feature_name, raw in self._pending_refs:
            feature = element.meta.find_feature(feature_name)
            if not isinstance(feature, Reference):
                raise RepositoryError(
                    f"'{element.meta.name}' has no reference "
                    f"{feature_name!r}")
            targets = []
            for ref_id in raw.split():
                target = self._by_id.get(ref_id)
                if target is None:
                    raise RepositoryError(
                        f"dangling reference {ref_id!r} in feature "
                        f"'{feature_name}'")
                targets.append(target)
            if feature.many:
                collection = element.eget(feature_name)
                for target in targets:
                    if target not in collection:
                        collection.append(target)
                # restore the serialized order (opposites may have
                # pre-populated the collection in document order)
                for position, target in enumerate(targets):
                    if collection[position] is not target:
                        collection.move(position, target)
            elif targets:
                if element.eget(feature_name) is not targets[0]:
                    element.eset(feature_name, targets[0])


def _stereotype_registry(profiles: Iterable) -> Dict[str, object]:
    registry: Dict[str, object] = {}
    for profile in profiles:
        for stereotype in profile.stereotypes.values():
            registry[f"{profile.name}:{stereotype.name}"] = stereotype
    return registry


def read_xml(text: str, packages: Iterable[MetaPackage], *,
             profiles: Iterable = (),
             repository: Optional[Repository] = None) -> Model:
    """Parse XML text into a fresh :class:`Model`.

    *packages* supplies the metamodels whose instances the document holds
    (e.g. ``[UML]``); *profiles* the profiles whose stereotype
    applications it may carry (e.g. ``[SPT]``).  If *repository* is
    given, the model is registered.
    """
    if _trace.ON:
        with _trace.span("xmi.read", format="xml") as sp:
            model = XmiReader(packages, profiles).read(text)
        _observe_io(sp, "xmi.read", "xml", model, len(text))
    else:
        model = XmiReader(packages, profiles).read(text)
    if repository is not None:
        repository.add_model(model)
    return model
